//! # soc-cli
//!
//! Command-line front-end for the `standout` workspace. The command
//! logic lives in this library (with file access injected) so that every
//! path is unit-testable; `src/main.rs` is a thin binary shim.
//!
//! ```text
//! soc solve    --log FILE --tuple BITS -m N [--algo NAME] [--dedup] [--project] [--workers N]
//!              [--stats] [--metrics[=table|json]] [--trace-out PATH]
//! soc dominate --db FILE  --tuple BITS -m N [--algo NAME]
//! soc per-attr --log FILE --tuple BITS [--algo NAME]
//! soc stats    --log FILE
//! soc generate real|synthetic|cars [--queries N] [--attrs M] [--cars N] [--seed S]
//! soc serve    [--port N] [--host H] [--threads N] [--max-conns N]
//! ```
//!
//! Query logs and databases use the text format of [`soc_data::io`].

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::fmt;

use soc_core::variants::data_variant::solve_soc_cb_d;
use soc_core::variants::per_attribute::solve_per_attribute;
use soc_core::{
    BruteForce, ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, IlpSolver, LocalSearch, MfiSolver,
    Projected, SocAlgorithm, SocInstance,
};
use soc_data::{io as socio, AttrId, QueryLog, Schema, Tuple};
use soc_workload::{
    generate_cars, generate_real_workload, generate_synthetic_workload, CarsConfig,
    RealWorkloadConfig, SyntheticConfig,
};

/// A CLI failure: human-readable message plus suggested exit code.
#[derive(Debug)]
pub struct CliError {
    /// Message for stderr.
    pub message: String,
    /// Process exit code (2 = usage, 1 = runtime).
    pub code: i32,
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CliError {}

fn usage(message: impl Into<String>) -> CliError {
    CliError {
        message: format!("{}\n\n{USAGE}", message.into()),
        code: 2,
    }
}

fn runtime(message: impl Into<String>) -> CliError {
    CliError {
        message: message.into(),
        code: 1,
    }
}

/// Usage text shown on argument errors.
pub const USAGE: &str = "\
usage:
  soc solve    --log FILE --tuple BITS -m N [--algo NAME] [--dedup] [--project] [--workers N]
               [--stats] [--metrics[=table|json]] [--trace-out PATH]
  soc dominate --db FILE  --tuple BITS -m N [--algo NAME]
  soc per-attr --log FILE --tuple BITS [--algo NAME]
  soc stats    --log FILE
  soc generate real|synthetic|cars [--queries N] [--attrs M] [--cars N] [--seed S]
  soc serve    [--port N] [--host H] [--threads N] [--max-conns N]

algorithms: brute ilp mfi mfi-det attr cumul queries local (default: mfi)
--project solves on the tuple-projected instance; --workers N mines MFIs
with N threads (mfi only; defaults to the host's available parallelism,
and the solver degrades to serial mining when the host or the log is too
small for threads to pay — pass --workers 1 to force serial); --stats
prints branch-and-bound counters (nodes, LP pivots, warm-start hit rate —
ilp only); --metrics prints the process metric registry after solving
(any algorithm); --trace-out writes tracing spans as JSON lines to PATH

serve runs the JSON-lines TCP service (see PROTOCOL.md); --port 0 (the
default) binds an ephemeral port, announced on stdout; --threads defaults
to the host's available parallelism";

/// Abstraction over the filesystem so tests can inject content.
pub trait FileSource {
    /// Reads the entire file as UTF-8 text.
    fn read(&self, path: &str) -> Result<String, String>;
}

/// Reads from the real filesystem.
pub struct FsSource;

impl FileSource for FsSource {
    fn read(&self, path: &str) -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

/// Simple flag/value argument cursor.
struct Args<'a> {
    items: &'a [String],
    used: Vec<bool>,
}

impl<'a> Args<'a> {
    fn new(items: &'a [String]) -> Self {
        Self {
            used: vec![false; items.len()],
            items,
        }
    }

    /// The value following `flag`, if present.
    fn value(&mut self, flag: &str) -> Result<Option<&'a str>, CliError> {
        for i in 0..self.items.len() {
            if self.items[i] == flag {
                self.used[i] = true;
                let v = self
                    .items
                    .get(i + 1)
                    .ok_or_else(|| usage(format!("{flag} needs a value")))?;
                self.used[i + 1] = true;
                return Ok(Some(v));
            }
        }
        Ok(None)
    }

    fn required(&mut self, flag: &str) -> Result<&'a str, CliError> {
        self.value(flag)?
            .ok_or_else(|| usage(format!("missing required {flag}")))
    }

    /// A flag with an optional inline value: `None` when absent,
    /// `Some(None)` for the bare `--flag` form, `Some(Some(v))` for
    /// `--flag=v`.
    fn flag_opt_value(&mut self, flag: &str) -> Option<Option<&'a str>> {
        for i in 0..self.items.len() {
            let item = &self.items[i];
            if item == flag {
                self.used[i] = true;
                return Some(None);
            }
            if let Some(v) = item.strip_prefix(flag).and_then(|r| r.strip_prefix('=')) {
                self.used[i] = true;
                return Some(Some(v));
            }
        }
        None
    }

    /// A bare boolean flag.
    fn flag(&mut self, flag: &str) -> bool {
        for i in 0..self.items.len() {
            if self.items[i] == flag {
                self.used[i] = true;
                return true;
            }
        }
        false
    }

    /// Errors if any argument was never consumed.
    fn finish(self) -> Result<(), CliError> {
        for (item, used) in self.items.iter().zip(&self.used) {
            if !used {
                return Err(usage(format!("unrecognized argument {item:?}")));
            }
        }
        Ok(())
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, CliError> {
    s.parse()
        .map_err(|_| usage(format!("{what} must be an integer, got {s:?}")))
}

fn algorithm(name: &str) -> Result<Box<dyn SocAlgorithm>, CliError> {
    algorithm_with_workers(name, 1)
}

/// The host's available parallelism — the default for `--workers`
/// (solve) and `--threads` (serve). Overridable by passing the flag.
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn algorithm_with_workers(name: &str, workers: usize) -> Result<Box<dyn SocAlgorithm>, CliError> {
    if workers == 0 {
        return Err(usage("--workers must be at least 1"));
    }
    if workers > 1 && name != "mfi" {
        return Err(usage(format!(
            "--workers only applies to the mfi algorithm, not {name:?}"
        )));
    }
    Ok(match name {
        "brute" => Box::new(BruteForce),
        "ilp" => Box::new(IlpSolver::default()),
        "mfi" => Box::new(MfiSolver {
            workers,
            ..Default::default()
        }),
        "mfi-det" => Box::new(MfiSolver::deterministic()),
        "attr" => Box::new(ConsumeAttr),
        "cumul" => Box::new(ConsumeAttrCumul),
        "queries" => Box::new(ConsumeQueries),
        "local" => Box::new(LocalSearch::default()),
        other => return Err(usage(format!("unknown algorithm {other:?}"))),
    })
}

fn parse_tuple(bits: &str, schema: &Schema) -> Result<Tuple, CliError> {
    let t = Tuple::from_bitstring(bits)
        .ok_or_else(|| usage(format!("--tuple must be a 0/1 string, got {bits:?}")))?;
    if t.universe() != schema.len() {
        return Err(runtime(format!(
            "tuple width {} does not match the {}-attribute schema",
            t.universe(),
            schema.len()
        )));
    }
    Ok(t)
}

fn describe(retained: &soc_data::AttrSet, schema: &Schema) -> String {
    retained
        .iter()
        .map(|i| {
            schema
                .name(AttrId(
                    u32::try_from(i).expect("attr index exceeds u32::MAX"),
                ))
                .to_string()
        })
        .collect::<Vec<_>>()
        .join(", ")
}

/// Executes a CLI invocation; returns stdout text.
pub fn run(args: &[String], files: &dyn FileSource) -> Result<String, CliError> {
    let Some((command, rest)) = args.split_first() else {
        return Err(usage("no command given"));
    };
    match command.as_str() {
        "solve" => cmd_solve(rest, files),
        "dominate" => cmd_dominate(rest, files),
        "per-attr" => cmd_per_attr(rest, files),
        "stats" => cmd_stats(rest, files),
        "generate" => cmd_generate(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => Ok(format!("{USAGE}\n")),
        other => Err(usage(format!("unknown command {other:?}"))),
    }
}

fn load_log(args: &mut Args<'_>, files: &dyn FileSource) -> Result<QueryLog, CliError> {
    let path = args.required("--log")?;
    let text = files.read(path).map_err(runtime)?;
    socio::parse_query_log(&text).map_err(|e| runtime(format!("{path}: {e}")))
}

fn cmd_solve(rest: &[String], files: &dyn FileSource) -> Result<String, CliError> {
    let mut args = Args::new(rest);
    let mut log = load_log(&mut args, files)?;
    let tuple_bits = args.required("--tuple")?;
    let m = parse_usize(args.required("-m")?, "-m")?;
    let workers = args
        .value("--workers")?
        .map(|s| parse_usize(s, "--workers"))
        .transpose()?;
    let algo_name = args.value("--algo")?.unwrap_or("mfi");
    // Unset --workers defaults to the host parallelism for the one
    // algorithm that can use it (the MFI solver's adaptive cost model
    // still degrades to serial mining when threads would not pay);
    // non-mfi algorithms keep their serial default rather than tripping
    // the workers-is-mfi-only validation.
    let algo = match workers {
        Some(w) => algorithm_with_workers(algo_name, w)?,
        None if algo_name == "mfi" => algorithm_with_workers(algo_name, host_parallelism())?,
        None => algorithm(algo_name)?,
    };
    if args.flag("--dedup") {
        log = log.deduplicate();
    }
    let project = args.flag("--project");
    let want_stats = args.flag("--stats");
    let metrics_mode = match args.flag_opt_value("--metrics") {
        None => None,
        Some(None) | Some(Some("table")) => Some(MetricsMode::Table),
        Some(Some("json")) => Some(MetricsMode::Json),
        Some(Some(other)) => {
            return Err(usage(format!(
                "--metrics accepts table or json, got {other:?}"
            )))
        }
    };
    let trace_out = args.value("--trace-out")?;
    args.finish()?;
    if want_stats && algo_name != "ilp" {
        return Err(usage(format!(
            "--stats only applies to the ilp algorithm, not {algo_name:?}"
        )));
    }
    if want_stats && project {
        return Err(usage("--stats cannot be combined with --project"));
    }

    let tuple = parse_tuple(tuple_bits, log.schema())?;
    if metrics_mode.is_some() {
        soc_obs::enable_metrics();
        soc_obs::reset_metrics();
    }
    if trace_out.is_some() {
        soc_obs::enable_tracing();
        let _ = soc_obs::drain_spans(); // discard spans from before this run
    }
    let inst = SocInstance::new(&log, &tuple, m);
    let (sol, stats) = if want_stats {
        let (sol, stats) = IlpSolver::default().solve_with_stats(&inst);
        (sol, Some(stats))
    } else if project {
        (Projected(algo.as_ref()).solve(&inst), None)
    } else {
        (algo.solve(&inst), None)
    };
    let mut out = format!(
        "algorithm: {}\nretained:  {}\nbits:      {}\nsatisfied: {} of {} (weight)\n",
        algo.name(),
        describe(&sol.retained, log.schema()),
        sol.retained.to_bitstring(),
        sol.satisfied,
        log.total_weight(),
    );
    if let Some(s) = stats {
        // Rendered through the shared soc-obs table formatter so --stats
        // and --metrics read identically; the rows come from this solve's
        // SolveStats (exact even when other threads touch the registry).
        out.push_str(&soc_obs::format_rows(&solver_stat_rows(&s)));
    }
    if let Some(mode) = metrics_mode {
        out.push_str(match mode {
            MetricsMode::Table => "\nmetrics:\n",
            MetricsMode::Json => "\n",
        });
        out.push_str(&match mode {
            MetricsMode::Table => soc_obs::metrics_table(),
            MetricsMode::Json => soc_obs::metrics_json(),
        });
        soc_obs::disable_metrics();
    }
    if let Some(path) = trace_out {
        let spans = soc_obs::drain_spans();
        soc_obs::disable_tracing();
        std::fs::write(path, soc_obs::spans_to_json_lines(&spans))
            .map_err(|e| runtime(format!("{path}: {e}")))?;
        out.push_str(&format!("trace:     {} spans -> {path}\n", spans.len()));
    }
    Ok(out)
}

/// `--metrics` output format.
#[derive(Clone, Copy)]
enum MetricsMode {
    Table,
    Json,
}

/// One row per branch-and-bound counter, named like the registry's
/// `solver.*` metrics, plus the derived ratios the old formatter showed.
fn solver_stat_rows(s: &soc_core::SolveStats) -> Vec<soc_obs::MetricRow> {
    use soc_obs::{MetricRow, MetricValue};
    let row = |name: &str, value: MetricValue| MetricRow {
        name: name.to_string(),
        value,
    };
    vec![
        row("solver.nodes", MetricValue::Counter(s.nodes as u64)),
        row(
            "solver.pre_bound_pruned",
            MetricValue::Counter(s.pre_bound_pruned as u64),
        ),
        row(
            "solver.presolved_vars",
            MetricValue::Counter(s.presolved_vars as u64),
        ),
        row("solver.threads", MetricValue::Gauge(s.threads as i64)),
        row("solver.lp_pivots", MetricValue::Counter(s.lp_pivots as u64)),
        row(
            "solver.dual_pivots",
            MetricValue::Counter(s.dual_pivots as u64),
        ),
        row(
            "solver.pivots_per_node",
            MetricValue::Float(s.pivots_per_node()),
        ),
        row(
            "solver.warm_solves",
            MetricValue::Counter(s.warm_solves as u64),
        ),
        row(
            "solver.cold_solves",
            MetricValue::Counter(s.cold_solves as u64),
        ),
        row(
            "solver.warm_failures",
            MetricValue::Counter(s.warm_failures as u64),
        ),
        row(
            "solver.warm_hit_rate",
            MetricValue::Float(s.warm_hit_rate()),
        ),
    ]
}

fn cmd_dominate(rest: &[String], files: &dyn FileSource) -> Result<String, CliError> {
    let mut args = Args::new(rest);
    let path = args.required("--db")?;
    let text = files.read(path).map_err(runtime)?;
    let db = socio::parse_database(&text).map_err(|e| runtime(format!("{path}: {e}")))?;
    let tuple_bits = args.required("--tuple")?;
    let m = parse_usize(args.required("-m")?, "-m")?;
    let algo = algorithm(args.value("--algo")?.unwrap_or("mfi"))?;
    args.finish()?;

    let tuple = parse_tuple(tuple_bits, db.schema())?;
    let r = solve_soc_cb_d(algo.as_ref(), &db, &tuple, m);
    Ok(format!(
        "algorithm: {}\nretained:  {}\nbits:      {}\ndominated: {} of {} tuples\n",
        algo.name(),
        describe(&r.solution.retained, db.schema()),
        r.solution.retained.to_bitstring(),
        r.dominated,
        db.len(),
    ))
}

fn cmd_per_attr(rest: &[String], files: &dyn FileSource) -> Result<String, CliError> {
    let mut args = Args::new(rest);
    let log = load_log(&mut args, files)?;
    let tuple_bits = args.required("--tuple")?;
    let algo = algorithm(args.value("--algo")?.unwrap_or("mfi"))?;
    args.finish()?;

    let tuple = parse_tuple(tuple_bits, log.schema())?;
    let best = solve_per_attribute(algo.as_ref(), &log, &tuple);
    Ok(format!(
        "algorithm: {}\nretained:  {}\nbits:      {}\nsatisfied: {} (weight)\nper-attr:  {:.3} satisfied weight per retained attribute\n",
        algo.name(),
        describe(&best.solution.retained, log.schema()),
        best.solution.retained.to_bitstring(),
        best.solution.satisfied,
        best.ratio,
    ))
}

fn cmd_stats(rest: &[String], files: &dyn FileSource) -> Result<String, CliError> {
    let mut args = Args::new(rest);
    let log = load_log(&mut args, files)?;
    args.finish()?;
    let s = log.stats();
    let dedup = log.deduplicate();
    let freq = log.attribute_frequencies();
    let mut top: Vec<(usize, usize)> = freq.iter().copied().enumerate().collect();
    top.sort_by_key(|&(i, f)| (std::cmp::Reverse(f), i));
    let mut out = format!(
        "queries:        {} ({} distinct, total weight {})\nattributes:     {}\nquery length:   min {} / mean {:.2} / max {}\ntop attributes:\n",
        log.len(),
        dedup.len(),
        log.total_weight(),
        s.num_attrs,
        s.min_query_len,
        s.mean_query_len,
        s.max_query_len,
    );
    for &(i, f) in top.iter().take(5) {
        out.push_str(&format!(
            "  {:<20} {}\n",
            log.schema().name(AttrId(
                u32::try_from(i).expect("attr index exceeds u32::MAX")
            )),
            f
        ));
    }
    Ok(out)
}

fn cmd_generate(rest: &[String]) -> Result<String, CliError> {
    let Some((kind, rest)) = rest.split_first() else {
        return Err(usage("generate needs a kind: real, synthetic, or cars"));
    };
    let mut args = Args::new(rest);
    let seed = args
        .value("--seed")?
        .map(|s| parse_usize(s, "--seed"))
        .transpose()?;
    match kind.as_str() {
        "real" => {
            let mut cfg = RealWorkloadConfig::default();
            if let Some(n) = args.value("--queries")? {
                cfg.num_queries = parse_usize(n, "--queries")?;
            }
            if let Some(s) = seed {
                cfg.seed = s as u64;
            }
            args.finish()?;
            Ok(socio::write_query_log(&generate_real_workload(&cfg)))
        }
        "synthetic" => {
            let mut cfg = SyntheticConfig::default();
            if let Some(n) = args.value("--queries")? {
                cfg.num_queries = parse_usize(n, "--queries")?;
            }
            if let Some(n) = args.value("--attrs")? {
                cfg.num_attrs = parse_usize(n, "--attrs")?;
            }
            if let Some(s) = seed {
                cfg.seed = s as u64;
            }
            args.finish()?;
            Ok(socio::write_query_log(&generate_synthetic_workload(&cfg)))
        }
        "cars" => {
            let mut cfg = CarsConfig {
                num_cars: 1000,
                ..Default::default()
            };
            if let Some(n) = args.value("--cars")? {
                cfg.num_cars = parse_usize(n, "--cars")?;
            }
            if let Some(s) = seed {
                cfg.seed = s as u64;
            }
            args.finish()?;
            Ok(socio::write_database(&generate_cars(&cfg).db))
        }
        other => Err(usage(format!("unknown generate kind {other:?}"))),
    }
}

fn cmd_serve(rest: &[String]) -> Result<String, CliError> {
    let mut args = Args::new(rest);
    let port = match args.value("--port")? {
        Some(s) => s
            .parse::<u16>()
            .map_err(|_| usage(format!("--port must be 0..=65535, got {s:?}")))?,
        None => 0,
    };
    let host = args.value("--host")?.unwrap_or("127.0.0.1").to_string();
    let threads = args
        .value("--threads")?
        .map(|s| parse_usize(s, "--threads"))
        .transpose()?
        .unwrap_or_else(host_parallelism);
    if threads == 0 {
        return Err(usage("--threads must be at least 1"));
    }
    let max_conns = args
        .value("--max-conns")?
        .map(|s| parse_usize(s, "--max-conns"))
        .transpose()?
        .unwrap_or(32);
    if max_conns == 0 {
        return Err(usage("--max-conns must be at least 1"));
    }
    args.finish()?;

    let cfg = soc_serve::ServerConfig {
        host,
        port,
        threads,
        max_conns,
        ..soc_serve::ServerConfig::default()
    };
    let server = soc_serve::Server::bind(cfg).map_err(|e| runtime(format!("bind: {e}")))?;
    // serve() blocks until shutdown and run() only returns output at the
    // end, so the bound address (essential with --port 0) must be
    // announced eagerly.
    println!("soc-serve listening on {}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let report = server.serve().map_err(|e| runtime(format!("serve: {e}")))?;
    Ok(format!(
        "served {} connections ({} rejected at capacity), {} frames\n",
        report.conns_accepted, report.conns_rejected, report.requests
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MemFiles(HashMap<&'static str, &'static str>);

    impl FileSource for MemFiles {
        fn read(&self, path: &str) -> Result<String, String> {
            self.0
                .get(path)
                .map(|s| s.to_string())
                .ok_or_else(|| format!("{path}: not found"))
        }
    }

    const FIG1_LOG: &str = "\
attrs = ac, four_door, turbo, power_doors, auto_trans, power_brakes
110000
100100
010100
000101
001010
";

    const FIG1_DB: &str = "\
attrs = ac, four_door, turbo, power_doors, auto_trans, power_brakes
010100
011000
100111
110101
110000
010100
001100
";

    fn files() -> MemFiles {
        MemFiles(HashMap::from([("log.txt", FIG1_LOG), ("db.txt", FIG1_DB)]))
    }

    fn run_ok(args: &[&str]) -> String {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &files()).expect("command should succeed")
    }

    fn run_err(args: &[&str]) -> CliError {
        let args: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        run(&args, &files()).expect_err("command should fail")
    }

    #[test]
    fn solve_fig1() {
        for algo in [
            "brute", "ilp", "mfi", "mfi-det", "attr", "cumul", "queries", "local",
        ] {
            let out = run_ok(&[
                "solve", "--log", "log.txt", "--tuple", "110111", "-m", "3", "--algo", algo,
            ]);
            assert!(out.contains("satisfied: 3 of 5"), "{algo}: {out}");
        }
        // Default algorithm retains the known optimum.
        let out = run_ok(&["solve", "--log", "log.txt", "--tuple", "110111", "-m", "3"]);
        assert!(out.contains("ac, four_door, power_doors"), "{out}");
        assert!(out.contains("bits:      110100"), "{out}");
    }

    #[test]
    fn solve_with_dedup_flag() {
        let out = run_ok(&[
            "solve", "--log", "log.txt", "--tuple", "110111", "-m", "3", "--dedup",
        ]);
        assert!(out.contains("satisfied: 3 of 5"));
    }

    #[test]
    fn solve_with_projection_matches_direct() {
        for algo in ["brute", "ilp", "mfi", "attr", "cumul"] {
            let out = run_ok(&[
                "solve",
                "--log",
                "log.txt",
                "--tuple",
                "110111",
                "-m",
                "3",
                "--algo",
                algo,
                "--project",
            ]);
            assert!(out.contains("satisfied: 3 of 5"), "{algo}: {out}");
        }
    }

    #[test]
    fn solve_with_parallel_mining() {
        let out = run_ok(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "mfi",
            "--workers",
            "3",
        ]);
        assert!(out.contains("satisfied: 3 of 5"), "{out}");
    }

    #[test]
    fn solve_with_stats_reports_solver_counters() {
        let out = run_ok(&[
            "solve", "--log", "log.txt", "--tuple", "110111", "-m", "3", "--algo", "ilp", "--stats",
        ]);
        assert!(out.contains("satisfied: 3 of 5"), "{out}");
        // --stats renders through the shared metrics table formatter.
        assert!(out.contains("metric"), "{out}");
        assert!(out.contains("solver.nodes"), "{out}");
        assert!(out.contains("solver.lp_pivots"), "{out}");
        assert!(out.contains("solver.warm_hit_rate"), "{out}");
    }

    // The metrics/tracing flags toggle process-global state; tests that
    // use them serialize here so parallel test threads cannot observe
    // each other's registry resets or span drains.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn solve_with_metrics_table_and_json() {
        let _guard = OBS_LOCK.lock().unwrap();
        let out = run_ok(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "ilp",
            "--metrics",
        ]);
        assert!(out.contains("satisfied: 3 of 5"), "{out}");
        assert!(out.contains("metrics:"), "{out}");
        assert!(out.contains("solver.nodes"), "{out}");

        let out = run_ok(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "ilp",
            "--metrics=json",
        ]);
        let json = &out[out.find("{\n").expect("json object in output")..];
        assert!(json.contains("\"solver.nodes\":"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let err = run_err(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--metrics=xml",
        ]);
        assert_eq!(err.code, 2);
    }

    #[test]
    fn solve_with_trace_out_writes_span_file() {
        let _guard = OBS_LOCK.lock().unwrap();
        let path = std::env::temp_dir().join("soc_cli_trace_test.jsonl");
        let path_str = path.to_str().unwrap();
        let out = run_ok(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "ilp",
            "--trace-out",
            path_str,
        ]);
        assert!(out.contains("trace:"), "{out}");
        let trace = std::fs::read_to_string(&path).expect("trace file written");
        let _ = std::fs::remove_file(&path);
        assert!(!trace.trim().is_empty(), "trace file is empty");
        assert!(trace.contains("\"name\": \"solve_mip\""), "{trace}");
        for line in trace.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn stats_flag_is_ilp_only() {
        let err = run_err(&[
            "solve", "--log", "log.txt", "--tuple", "110111", "-m", "3", "--algo", "mfi", "--stats",
        ]);
        assert_eq!(err.code, 2);
        let err = run_err(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "ilp",
            "--stats",
            "--project",
        ]);
        assert_eq!(err.code, 2);
    }

    #[test]
    fn workers_flag_is_mfi_only() {
        let err = run_err(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--algo",
            "brute",
            "--workers",
            "2",
        ]);
        assert_eq!(err.code, 2);
        let err = run_err(&[
            "solve",
            "--log",
            "log.txt",
            "--tuple",
            "110111",
            "-m",
            "3",
            "--workers",
            "0",
        ]);
        assert_eq!(err.code, 2);
    }

    #[test]
    fn dominate_fig1() {
        let out = run_ok(&[
            "dominate", "--db", "db.txt", "--tuple", "110111", "-m", "4", "--algo", "brute",
        ]);
        assert!(out.contains("dominated: 4 of 7"), "{out}");
        assert!(out.contains("bits:      110101"), "{out}");
    }

    #[test]
    fn per_attr_reports_ratio() {
        let out = run_ok(&["per-attr", "--log", "log.txt", "--tuple", "110111"]);
        assert!(out.contains("per-attr:"), "{out}");
    }

    #[test]
    fn stats_summary() {
        let out = run_ok(&["stats", "--log", "log.txt"]);
        assert!(
            out.contains("queries:        5 (5 distinct, total weight 5)"),
            "{out}"
        );
        assert!(out.contains("power_doors"), "{out}");
    }

    #[test]
    fn generate_roundtrips_through_parser() {
        let out = run_ok(&["generate", "synthetic", "--queries", "25", "--attrs", "10"]);
        let log = socio::parse_query_log(&out).unwrap();
        assert_eq!(log.len(), 25);
        assert_eq!(log.num_attrs(), 10);

        let out = run_ok(&["generate", "cars", "--cars", "12"]);
        let db = socio::parse_database(&out).unwrap();
        assert_eq!(db.len(), 12);
        assert_eq!(db.num_attrs(), 32);

        let out = run_ok(&["generate", "real", "--queries", "30", "--seed", "9"]);
        let log = socio::parse_query_log(&out).unwrap();
        assert_eq!(log.len(), 30);
    }

    #[test]
    fn usage_errors() {
        assert_eq!(run_err(&[]).code, 2);
        assert_eq!(run_err(&["frobnicate"]).code, 2);
        assert_eq!(run_err(&["solve", "--log", "log.txt"]).code, 2); // missing --tuple
        assert_eq!(
            run_err(&["solve", "--log", "log.txt", "--tuple", "110111", "-m", "x"]).code,
            2
        );
        assert_eq!(
            run_err(&["solve", "--log", "log.txt", "--tuple", "110111", "-m", "3", "--bogus"]).code,
            2
        );
        // Runtime errors: missing file, width mismatch.
        assert_eq!(
            run_err(&["solve", "--log", "nope.txt", "--tuple", "1", "-m", "1"]).code,
            1
        );
        assert_eq!(
            run_err(&["solve", "--log", "log.txt", "--tuple", "11", "-m", "1"]).code,
            1
        );
    }

    #[test]
    fn help_prints_usage() {
        let out = run_ok(&["help"]);
        assert!(out.contains("usage:"));
        assert!(out.contains("serve"));
    }

    #[test]
    fn serve_argument_errors() {
        // All validation happens before any socket is bound, so these
        // fail fast even in a sandboxed test environment.
        assert_eq!(run_err(&["serve", "--port", "banana"]).code, 2);
        assert_eq!(run_err(&["serve", "--port", "70000"]).code, 2);
        assert_eq!(run_err(&["serve", "--port", "-1"]).code, 2);
        assert_eq!(run_err(&["serve", "--threads", "0"]).code, 2);
        assert_eq!(run_err(&["serve", "--threads", "x"]).code, 2);
        assert_eq!(run_err(&["serve", "--max-conns", "0"]).code, 2);
        assert_eq!(run_err(&["serve", "--bogus"]).code, 2);
        assert_eq!(run_err(&["serve", "--port"]).code, 2); // missing value
    }
}
