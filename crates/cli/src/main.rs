//! Binary shim for the `soc` command; all logic lives in the library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match soc_cli::run(&args, &soc_cli::FsSource) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(e.code);
        }
    }
}
