//! Release-mode smoke test for `soc serve`: boots the real binary on an
//! ephemeral port, drives hello → load → solve → stats → shutdown over
//! a real socket, and checks the process exits cleanly.
//!
//! Ignored by default (it spawns the compiled binary); `scripts/ci.sh`
//! runs it explicitly with `--ignored` in release mode.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

struct ServerProc {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn spawn_server() -> (ServerProc, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_soc"))
        .args(["serve", "--port", "0", "--threads", "2", "--max-conns", "8"])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn soc serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("child stdout"));
    // First line announces the bound address.
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read announce line");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in announce line")
        .to_string();
    assert!(
        line.contains("listening on"),
        "unexpected announce line {line:?}"
    );
    (ServerProc { child, stdout }, addr)
}

fn roundtrip(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, request: &str) -> String {
    stream.write_all(request.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "server hung up on {request:?}");
    reply.trim_end().to_string()
}

#[test]
#[ignore = "spawns the compiled binary; run explicitly via scripts/ci.sh"]
fn serve_smoke() {
    let (mut server, addr) = spawn_server();

    let mut stream = TcpStream::connect(&addr).expect("connect to announced address");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let reply = roundtrip(&mut reader, &mut stream, r#"{"type":"hello","version":1}"#);
    assert!(reply.contains("\"hello_ok\""), "{reply}");

    let reply = roundtrip(
        &mut reader,
        &mut stream,
        r#"{"type":"load","session":"cars","data":"110000\n100100\n010100\n000101\n001010\n"}"#,
    );
    assert!(reply.contains("\"load_ok\""), "{reply}");
    assert!(reply.contains("\"queries\":5"), "{reply}");

    let reply = roundtrip(
        &mut reader,
        &mut stream,
        r#"{"type":"solve","session":"cars","tuple":"110111","m":3,"algo":"ilp"}"#,
    );
    assert!(reply.contains("\"solve_ok\""), "{reply}");
    assert!(reply.contains("\"satisfied\":3"), "{reply}");

    // Malformed input gets a typed error on the same connection.
    let reply = roundtrip(&mut reader, &mut stream, "definitely not json");
    assert!(reply.contains("\"error\""), "{reply}");
    assert!(reply.contains("\"parse\""), "{reply}");

    let reply = roundtrip(&mut reader, &mut stream, r#"{"type":"stats"}"#);
    assert!(reply.contains("\"stats_ok\""), "{reply}");
    assert!(reply.contains("serve.solves"), "{reply}");

    let reply = roundtrip(&mut reader, &mut stream, r#"{"type":"shutdown"}"#);
    assert!(reply.contains("\"shutdown_ok\""), "{reply}");
    drop(stream);
    drop(reader);

    // The process drains and exits cleanly on its own (no kill needed).
    let status = server.child.wait().expect("wait for exit");
    assert!(status.success(), "server exited with {status:?}");

    // Its final report lands on stdout after the accept loop ends.
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut server.stdout, &mut rest).expect("drain stdout");
    assert!(rest.contains("served 1 connections"), "report: {rest:?}");
}
