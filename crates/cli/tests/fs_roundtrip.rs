//! End-to-end CLI test against the real filesystem: generate a workload
//! to a file, then solve and inspect it through `FsSource`.

use soc_cli::{run, FsSource};

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("soc-cli-test-{}-{name}", std::process::id()));
    p
}

#[test]
fn generate_solve_stats_via_files() {
    let log_path = tmp_path("buyers.log");

    // generate → file
    let out = run(
        &[
            "generate".into(),
            "real".into(),
            "--queries".into(),
            "40".into(),
            "--seed".into(),
            "5".into(),
        ],
        &FsSource,
    )
    .expect("generate succeeds");
    std::fs::write(&log_path, out).expect("write workload");

    let log_arg = log_path.to_str().unwrap().to_string();

    // stats over the file
    let stats = run(
        &["stats".into(), "--log".into(), log_arg.clone()],
        &FsSource,
    )
    .expect("stats succeeds");
    assert!(stats.contains("queries:        40"), "{stats}");

    // solve over the file with a fully-loaded tuple
    let tuple = "1".repeat(32);
    let solved = run(
        &[
            "solve".into(),
            "--log".into(),
            log_arg.clone(),
            "--tuple".into(),
            tuple,
            "-m".into(),
            "6".into(),
            "--algo".into(),
            "mfi".into(),
            "--dedup".into(),
        ],
        &FsSource,
    )
    .expect("solve succeeds");
    assert!(solved.contains("satisfied:"), "{solved}");

    // missing file is a runtime error, not a panic
    let err = run(
        &[
            "stats".into(),
            "--log".into(),
            tmp_path("missing.log").to_str().unwrap().into(),
        ],
        &FsSource,
    )
    .expect_err("missing file fails");
    assert_eq!(err.code, 1);

    std::fs::remove_file(&log_path).ok();
}
