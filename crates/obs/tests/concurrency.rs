//! Concurrency contract of the metrics layer: hammer one counter and
//! one histogram from the workers of a real `soc_pool::Pool` and assert
//! *exact* totals after the pool joins — the registry's "flush" is the
//! join's happens-before edge (see the soc-obs module docs), so sharded
//! relaxed increments must still sum to the true count.
//!
//! This lives in an integration test (own process), so enabling the
//! process-global metrics flag cannot interfere with other test
//! binaries.

use soc_pool::Pool;

#[test]
fn pool_hammer_totals_are_exact() {
    soc_obs::enable_metrics();
    let c = soc_obs::counter!("test.conc.hammer_counter");
    let h = soc_obs::histogram!("test.conc.hammer_hist");

    const TASKS: usize = 512;
    const OPS_PER_TASK: usize = 1_000;
    for threads in [1, 4, 13] {
        soc_obs::reset_metrics();
        let out = Pool::new(threads).map_indexed(TASKS, |i| {
            for k in 0..OPS_PER_TASK {
                c.inc();
                // Values spread over many log2 buckets, deterministically.
                h.record(((i * OPS_PER_TASK + k) % 4096) as u64);
            }
            i
        });
        assert_eq!(out.len(), TASKS);

        // The pool joined its workers inside map_indexed, so every
        // increment is visible: totals are exact, not approximate.
        assert_eq!(
            c.value(),
            (TASKS * OPS_PER_TASK) as u64,
            "threads={threads}"
        );
        let snap = h.snapshot();
        assert_eq!(
            snap.count,
            (TASKS * OPS_PER_TASK) as u64,
            "threads={threads}"
        );
        let expected_sum: u64 = (0..TASKS * OPS_PER_TASK).map(|v| (v % 4096) as u64).sum();
        assert_eq!(snap.sum, expected_sum, "threads={threads}");
        assert_eq!(snap.max, 4095);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    }
    soc_obs::disable_all();
}

#[test]
fn pool_span_flush_collects_every_worker_span() {
    soc_obs::enable_tracing();
    let _ = soc_obs::drain_spans();

    const TASKS: usize = 64;
    let out = Pool::new(4).map_indexed(TASKS, |i| {
        let _s = soc_obs::span!("conc_task");
        i * 3
    });
    assert_eq!(out, (0..TASKS).map(|i| i * 3).collect::<Vec<_>>());

    // Workers are scoped threads: their TLS destructors ran before
    // map_indexed returned, so every span has been flushed.
    let spans = soc_obs::drain_spans();
    soc_obs::disable_all();
    let tasks = spans.iter().filter(|s| s.name == "conc_task").count();
    assert_eq!(tasks, TASKS);
    assert!(spans.iter().all(|s| s.name != "conc_task" || s.parent == 0));
}
