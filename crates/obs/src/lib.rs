//! # soc-obs
//!
//! A dependency-free observability substrate for the `standout`
//! workspace: **metrics** (sharded atomic counters, gauges, and
//! fixed-bucket log₂ histograms behind a static registry) and **tracing**
//! (lightweight RAII spans with monotonic timings, parent links, and
//! per-thread buffers flushed to a lock-free collector).
//!
//! ## Why not a crate from the registry?
//!
//! The workspace builds fully offline with zero external dependencies
//! (see DESIGN.md "Dependencies"); `metrics`/`tracing` are not available.
//! The subset the solver, pool, miner, and serving layers need — relaxed
//! counters, latency histograms, span timings — fits in one small crate.
//!
//! ## The disabled fast path
//!
//! Both subsystems are **off by default**. Every recording call first
//! checks a process-wide flag word (one relaxed atomic load + branch)
//! and returns immediately when its subsystem is disabled — no clock
//! read, no thread-local access, no shard lookup. Hot paths therefore
//! stay instrumented permanently; the production cost of an unused
//! instrument is the branch.
//!
//! ```
//! soc_obs::enable_metrics();
//! let hits = soc_obs::counter!("example.hits");
//! hits.inc();
//! soc_obs::histogram!("example.latency_us").record(250);
//! {
//!     soc_obs::enable_tracing();
//!     let _span = soc_obs::span!("example_work");
//! } // span closes + flushes here
//! assert!(hits.value() >= 1);
//! assert!(!soc_obs::metrics_table().is_empty());
//! soc_obs::disable_all();
//! ```
//!
//! ## Naming convention
//!
//! Dotted lowercase paths, `subsystem.metric[_unit]`:
//! `pool.tasks_stolen`, `solver.lp_us`, `serving.instance_us`. Metric
//! names are `&'static str` and registered once; re-registering the same
//! name with a different kind panics (it is a programming error).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod clock;
pub mod json;
mod metrics;
mod trace;

use std::sync::atomic::{AtomicU8, Ordering};

pub use clock::Ticks;
pub use metrics::{
    format_rows, Counter, Gauge, HistSnapshot, Histogram, MetricRow, MetricValue, Registry,
    Snapshot, BUCKETS,
};
pub use trace::{
    drain_spans, flame_table, flush_thread_spans, span, spans_to_json_lines, SpanGuard, SpanRecord,
};

const METRICS_BIT: u8 = 0b01;
const TRACING_BIT: u8 = 0b10;

/// Process-wide enable flags. Relaxed loads are sufficient: recording is
/// advisory and readers tolerate a stale flag for a few instructions.
static FLAGS: AtomicU8 = AtomicU8::new(0);

/// True when metric recording is on.
#[inline(always)]
pub fn metrics_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & METRICS_BIT != 0
}

/// True when span recording is on.
#[inline(always)]
pub fn tracing_enabled() -> bool {
    FLAGS.load(Ordering::Relaxed) & TRACING_BIT != 0
}

/// Turns metric recording on.
pub fn enable_metrics() {
    FLAGS.fetch_or(METRICS_BIT, Ordering::SeqCst);
}

/// Turns metric recording off. Recorded values remain readable.
pub fn disable_metrics() {
    FLAGS.fetch_and(!METRICS_BIT, Ordering::SeqCst);
}

/// Turns span recording on.
pub fn enable_tracing() {
    FLAGS.fetch_or(TRACING_BIT, Ordering::SeqCst);
}

/// Turns span recording off. Buffered spans stay buffered until drained.
pub fn disable_tracing() {
    FLAGS.fetch_and(!TRACING_BIT, Ordering::SeqCst);
}

/// Turns both subsystems on.
pub fn enable_all() {
    FLAGS.fetch_or(METRICS_BIT | TRACING_BIT, Ordering::SeqCst);
}

/// Turns both subsystems off.
pub fn disable_all() {
    FLAGS.store(0, Ordering::SeqCst);
}

/// `Some(now_ns)` when metrics are enabled, `None` (no clock read)
/// otherwise. The idiom for conditional timing around a hot call:
///
/// ```
/// let t0 = soc_obs::metrics_then_now();
/// // ... the measured work ...
/// if let Some(t0) = t0 {
///     soc_obs::histogram!("doc.example_us").record(soc_obs::clock::elapsed_us(t0));
/// }
/// ```
#[inline]
pub fn metrics_then_now() -> Option<u64> {
    metrics_enabled().then(clock::now_ns)
}

/// The global metric registry.
pub fn registry() -> &'static Registry {
    metrics::global()
}

/// Renders every registered metric as an aligned text table.
pub fn metrics_table() -> String {
    registry().snapshot().to_table()
}

/// Renders every registered metric as a single JSON object.
pub fn metrics_json() -> String {
    registry().snapshot().to_json()
}

/// Resets every registered metric to zero (counts, sums, gauges).
/// Registration survives; only values clear. Meant for experiment
/// harnesses that measure deltas.
pub fn reset_metrics() {
    registry().reset();
}

/// Interns a [`Counter`] by name, once per call site.
///
/// Expands to a `&'static Counter`; the registry lookup happens on the
/// first execution only (cached in a `OnceLock` per call site).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Interns a [`Gauge`] by name, once per call site. See [`counter!`].
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Interns a [`Histogram`] by name, once per call site. See [`counter!`].
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Opens a tracing span closed by the guard's drop:
/// `let _span = span!("solve_mip");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The enable flags are process-global; tests that toggle them
    // serialize on this lock so they cannot observe each other's state.
    pub(crate) static FLAG_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn flags_toggle_independently() {
        let _guard = FLAG_LOCK.lock().unwrap();
        disable_all();
        assert!(!metrics_enabled() && !tracing_enabled());
        enable_metrics();
        assert!(metrics_enabled() && !tracing_enabled());
        enable_tracing();
        assert!(metrics_enabled() && tracing_enabled());
        disable_metrics();
        assert!(!metrics_enabled() && tracing_enabled());
        disable_all();
        assert!(!metrics_enabled() && !tracing_enabled());
    }

    #[test]
    fn disabled_path_records_nothing() {
        let _guard = FLAG_LOCK.lock().unwrap();
        disable_all();
        let c = counter!("test.lib.disabled_counter");
        let h = histogram!("test.lib.disabled_hist");
        c.add(5);
        h.record(123);
        assert_eq!(c.value(), 0);
        assert_eq!(h.snapshot().count, 0);
        assert!(metrics_then_now().is_none());
    }

    #[test]
    fn macro_returns_the_same_instance() {
        let a = counter!("test.lib.same_instance");
        let b = registry().counter("test.lib.same_instance");
        assert!(std::ptr::eq(a, b));
    }
}
