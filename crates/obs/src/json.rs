//! Shared JSON string escaping.
//!
//! The workspace hand-rolls every JSON artifact (no serialization crates
//! in the offline dependency set), and PR 5's audit found three emitters
//! — `soc_bench::json`, [`crate::spans_to_json_lines`], and the CLI's
//! `--metrics=json` — each interpolating raw strings into output. A
//! metric or span name containing `"`, `\`, or a control character
//! produced invalid JSON. All emitters (including the soc-serve protocol
//! writer) now route string values through this one routine.
//!
//! Escaping follows RFC 8259 §7: `"` and `\` are backslash-escaped, the
//! short forms `\n \r \t \b \f` are used where they exist, all other
//! control characters below U+0020 become `\u00XX`, and everything else
//! — including non-ASCII and emoji — passes through verbatim (the
//! output is UTF-8).

use std::borrow::Cow;

/// Appends `s` to `out` with JSON string escaping (no surrounding
/// quotes — callers choose the quoting context).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// `s` with JSON string escaping applied; borrows when nothing needs
/// escaping (the overwhelmingly common case for metric and span names).
pub fn escape(s: &str) -> Cow<'_, str> {
    if s.chars()
        .all(|c| c != '"' && c != '\\' && (c as u32) >= 0x20)
    {
        return Cow::Borrowed(s);
    }
    let mut out = String::with_capacity(s.len() + 8);
    escape_into(&mut out, s);
    Cow::Owned(out)
}

/// `s` rendered as a complete JSON string literal, quotes included.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passthrough_borrows() {
        assert!(matches!(escape("plain.metric_name"), Cow::Borrowed(_)));
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn boundary_characters() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\rb"), "a\\rb");
        assert_eq!(escape("a\tb"), "a\\tb");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("\u{1f}"), "\\u001f");
        assert_eq!(escape("\u{8}\u{c}"), "\\b\\f");
    }

    #[test]
    fn non_ascii_passes_through() {
        assert_eq!(escape("héllo"), "héllo");
        assert_eq!(escape("日本語"), "日本語");
        assert_eq!(escape("🚗 cars"), "🚗 cars");
    }

    #[test]
    fn quote_wraps() {
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote(""), "\"\"");
    }
}
