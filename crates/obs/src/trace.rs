//! Tracing spans: RAII guards, per-thread buffers, a lock-free
//! collector, and JSON-lines / flame-table export.
//!
//! ## Span buffer format
//!
//! Each thread owns a buffer of finished [`SpanRecord`]s plus a stack of
//! open span ids (so a span's parent is whatever was open on the same
//! thread when it started). Records carry a process-unique id
//! `(thread_serial << 32) | per_thread_sequence`, the parent id (0 =
//! root), and monotonic `start_ns`/`dur_ns` from [`crate::clock`] —
//! durations are saturating, never negative.
//!
//! ## Flush protocol
//!
//! Buffers flush to the global collector (a Treiber-stack of record
//! chunks, push = one CAS, no locks) when (a) the thread's outermost
//! span closes, (b) the buffer exceeds a size cap, or (c) the thread
//! exits (TLS destructor) — so scoped pool workers flush automatically
//! at scope join. [`drain_spans`] flushes the calling thread, then swaps
//! the whole stack out and returns every record sorted by
//! `(thread, start)`. Spans still open, or buffered on other
//! still-running threads, are not included — drain after joining the
//! workers whose spans you want.

use std::cell::RefCell;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};

use crate::clock;

/// One finished span.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// Static span name (the `span!` argument).
    pub name: &'static str,
    /// Process-unique span id.
    pub id: u64,
    /// Id of the enclosing span on the same thread (0 = root).
    pub parent: u64,
    /// Serial number of the recording thread.
    pub thread: u64,
    /// Start timestamp, nanoseconds since the process clock epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (saturating).
    pub dur_ns: u64,
}

/// Flush the thread buffer at this many records even if spans are still
/// open — bounds memory for long-running span-heavy threads.
const FLUSH_AT: usize = 256;

struct ThreadSpans {
    thread: u64,
    next_seq: u32,
    stack: Vec<u64>,
    buf: Vec<SpanRecord>,
}

impl ThreadSpans {
    fn new() -> Self {
        static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);
        Self {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            next_seq: 0,
            stack: Vec::new(),
            buf: Vec::new(),
        }
    }

    fn flush(&mut self) {
        if !self.buf.is_empty() {
            push_chunk(std::mem::take(&mut self.buf));
        }
    }
}

impl Drop for ThreadSpans {
    fn drop(&mut self) {
        // Thread exit: whatever is buffered reaches the collector, so
        // scoped pool workers need no explicit flush call.
        self.flush();
    }
}

thread_local! {
    static THREAD_SPANS: RefCell<ThreadSpans> = RefCell::new(ThreadSpans::new());
}

// ---- the lock-free collector: a Treiber stack of record chunks ----

struct Chunk {
    records: Vec<SpanRecord>,
    next: *mut Chunk,
}

static HEAD: AtomicPtr<Chunk> = AtomicPtr::new(ptr::null_mut());

fn push_chunk(records: Vec<SpanRecord>) {
    let node = Box::into_raw(Box::new(Chunk {
        records,
        next: ptr::null_mut(),
    }));
    let mut head = HEAD.load(Ordering::Acquire);
    loop {
        // Safety: `node` is owned by this call until the CAS succeeds.
        unsafe { (*node).next = head };
        match HEAD.compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return,
            Err(actual) => head = actual,
        }
    }
}

/// Flushes the calling thread's buffered spans to the collector.
/// (Other threads flush when their outermost span closes or when they
/// exit.)
pub fn flush_thread_spans() {
    THREAD_SPANS.with(|t| t.borrow_mut().flush());
}

/// Flushes the calling thread, then drains the collector: every flushed
/// span so far, sorted by `(thread, start_ns)`. Draining clears the
/// collector.
pub fn drain_spans() -> Vec<SpanRecord> {
    flush_thread_spans();
    let mut head = HEAD.swap(ptr::null_mut(), Ordering::AcqRel);
    let mut out = Vec::new();
    while !head.is_null() {
        // Safety: the swap made this list exclusively ours.
        let chunk = unsafe { Box::from_raw(head) };
        out.extend(chunk.records);
        head = chunk.next;
    }
    out.sort_by_key(|r| (r.thread, r.start_ns, r.id));
    out
}

/// An open span; the drop closes and records it. Create via
/// [`span`] / `span!`.
pub struct SpanGuard {
    /// `None` when tracing was disabled at open time (fully inert).
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: &'static str,
    id: u64,
    start_ns: u64,
}

/// Opens a span. Inert (no clock read, no TLS touch) while tracing is
/// disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !crate::tracing_enabled() {
        return SpanGuard { open: None };
    }
    let id = THREAD_SPANS.with(|t| {
        let mut t = t.borrow_mut();
        t.next_seq += 1;
        let id = (t.thread << 32) | u64::from(t.next_seq);
        t.stack.push(id);
        id
    });
    SpanGuard {
        open: Some(OpenSpan {
            name,
            id,
            start_ns: clock::now_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur_ns = clock::saturating_delta_ns(open.start_ns, clock::now_ns());
        THREAD_SPANS.with(|t| {
            let mut t = t.borrow_mut();
            // Pop back to this span's frame. Out-of-order guard drops
            // cannot happen with RAII lifetimes, but be lenient: pop
            // until we find our id (or the stack empties).
            while let Some(top) = t.stack.pop() {
                if top == open.id {
                    break;
                }
            }
            let parent = t.stack.last().copied().unwrap_or(0);
            let thread = t.thread;
            t.buf.push(SpanRecord {
                name: open.name,
                id: open.id,
                parent,
                thread,
                start_ns: open.start_ns,
                dur_ns,
            });
            if t.stack.is_empty() || t.buf.len() >= FLUSH_AT {
                t.flush();
            }
        });
    }
}

/// Renders spans as JSON lines, one object per span, fields:
/// `name, id, parent, thread, start_us, dur_us`.
pub fn spans_to_json_lines(records: &[SpanRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&format!(
            "{{\"name\": {}, \"id\": {}, \"parent\": {}, \"thread\": {}, \
             \"start_us\": {}, \"dur_us\": {}}}\n",
            crate::json::quote(r.name),
            r.id,
            r.parent,
            r.thread,
            r.start_ns / 1_000,
            r.dur_ns / 1_000,
        ));
    }
    out
}

/// Aggregates spans into a flame-style table: one row per span name
/// with call count, total time, and *self* time (total minus the time
/// of direct children), sorted by self time descending.
pub fn flame_table(records: &[SpanRecord]) -> String {
    use std::collections::HashMap;
    // Sum of direct children's duration per parent id.
    let mut child_ns: HashMap<u64, u64> = HashMap::new();
    for r in records {
        if r.parent != 0 {
            *child_ns.entry(r.parent).or_insert(0) += r.dur_ns;
        }
    }
    struct Row {
        calls: u64,
        total_ns: u64,
        self_ns: u64,
    }
    let mut by_name: HashMap<&'static str, Row> = HashMap::new();
    for r in records {
        let children = child_ns.get(&r.id).copied().unwrap_or(0);
        let row = by_name.entry(r.name).or_insert(Row {
            calls: 0,
            total_ns: 0,
            self_ns: 0,
        });
        row.calls += 1;
        row.total_ns += r.dur_ns;
        row.self_ns += r.dur_ns.saturating_sub(children);
    }
    let mut rows: Vec<(&'static str, Row)> = by_name.into_iter().collect();
    rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(4).max(4);
    let mut out = format!(
        "{:<width$}  {:>8}  {:>12}  {:>12}\n",
        "span", "calls", "total ms", "self ms"
    );
    for (name, row) in rows {
        out.push_str(&format!(
            "{:<width$}  {:>8}  {:>12.3}  {:>12.3}\n",
            name,
            row.calls,
            row.total_ns as f64 / 1e6,
            row.self_ns as f64 / 1e6,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::FLAG_LOCK;

    #[test]
    fn spans_nest_and_export() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_tracing();
        let _ = drain_spans(); // clear leftovers from other tests
        {
            let _outer = span("outer");
            std::thread::sleep(std::time::Duration::from_millis(1));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        }
        let records = drain_spans();
        crate::disable_all();
        assert_eq!(records.len(), 2);
        let inner = records.iter().find(|r| r.name == "inner").unwrap();
        let outer = records.iter().find(|r| r.name == "outer").unwrap();
        assert_eq!(inner.parent, outer.id);
        assert_eq!(outer.parent, 0);
        assert!(outer.dur_ns >= inner.dur_ns);
        assert!(inner.dur_ns > 0);

        let json = spans_to_json_lines(&records);
        assert_eq!(json.lines().count(), 2);
        assert!(json.contains("\"name\": \"inner\""));
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert_eq!(line.matches('{').count(), line.matches('}').count());
        }

        let flame = flame_table(&records);
        assert!(flame.contains("outer"), "{flame}");
        assert!(flame.contains("inner"), "{flame}");
    }

    #[test]
    fn flame_self_time_subtracts_children() {
        let records = vec![
            SpanRecord {
                name: "parent",
                id: 100,
                parent: 0,
                thread: 1,
                start_ns: 0,
                dur_ns: 10_000_000,
            },
            SpanRecord {
                name: "child",
                id: 101,
                parent: 100,
                thread: 1,
                start_ns: 1_000,
                dur_ns: 4_000_000,
            },
        ];
        let flame = flame_table(&records);
        let parent_line = flame.lines().find(|l| l.starts_with("parent")).unwrap();
        // total 10ms, self 6ms.
        assert!(parent_line.contains("10.000"), "{flame}");
        assert!(parent_line.contains("6.000"), "{flame}");
    }

    #[test]
    fn json_lines_escape_hostile_span_names() {
        let records = vec![SpanRecord {
            name: "bad\"name\\with\ncontrol\u{1}and🚗",
            id: 7,
            parent: 0,
            thread: 1,
            start_ns: 0,
            dur_ns: 10,
        }];
        let json = spans_to_json_lines(&records);
        assert_eq!(json.lines().count(), 1);
        assert!(
            json.contains("\"bad\\\"name\\\\with\\ncontrol\\u0001and🚗\""),
            "{json}"
        );
        // The line itself must stay one line: the raw \n was escaped.
        assert!(json.trim_end().find('\n').is_none(), "{json}");
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::disable_all();
        let _ = drain_spans();
        {
            let _s = span("never_recorded");
        }
        assert!(drain_spans().is_empty());
    }

    #[test]
    fn cross_thread_spans_flush_on_thread_exit() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_tracing();
        let _ = drain_spans();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let _s = span("worker_span");
                });
            }
        });
        let records = drain_spans();
        crate::disable_all();
        let workers = records.iter().filter(|r| r.name == "worker_span").count();
        assert_eq!(workers, 4);
        // Thread serials are distinct.
        let mut threads: Vec<u64> = records.iter().map(|r| r.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 4);
    }
}
