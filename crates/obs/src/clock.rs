//! Monotonic clock shim used by every timing site.
//!
//! All observability timestamps are `u64` nanoseconds since a
//! process-wide epoch (the first clock read), sourced from
//! [`std::time::Instant`]. Two properties are load-bearing:
//!
//! - **Monotonic reads**: `Instant` never goes backwards, and the epoch
//!   subtraction uses `saturating_duration_since`, so [`now_ns`] is
//!   non-decreasing across calls on every thread.
//! - **Saturating deltas**: all elapsed computations go through
//!   [`Ticks::saturating_elapsed_since`] / [`saturating_delta_ns`],
//!   which clamp at zero. Even if a caller mixes up start/end (or a
//!   future clock source misbehaves), histogram recording can never
//!   panic on underflow or file a negative duration into a bucket.
//!
//! `Duration` deliberately does not appear in this module's API: raw
//! `u64` nanos keep the hot-path arithmetic branch-free and make the
//! saturation contract explicit at the type level.

use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic timestamp: nanoseconds since the process clock epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Ticks(pub u64);

impl Ticks {
    /// Nanoseconds from `earlier` to `self`, clamped at zero when the
    /// arguments are reversed (never panics, never wraps).
    #[inline]
    pub fn saturating_elapsed_since(self, earlier: Ticks) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// The current monotonic timestamp.
#[inline]
pub fn now() -> Ticks {
    Ticks(now_ns())
}

/// Nanoseconds since the process clock epoch. Non-decreasing.
#[inline]
pub fn now_ns() -> u64 {
    // saturating_duration_since: the epoch is initialized from the first
    // call's `Instant::now`, so a racing second call could observe an
    // epoch infinitesimally in its future; saturate to 0 instead of
    // panicking.
    let d = Instant::now().saturating_duration_since(epoch());
    // 2^64 ns ≈ 584 years of process uptime; the cast cannot truncate in
    // practice.
    d.as_nanos() as u64
}

/// `end - start` in nanoseconds, clamped at zero.
#[inline]
pub fn saturating_delta_ns(start_ns: u64, end_ns: u64) -> u64 {
    end_ns.saturating_sub(start_ns)
}

/// Microseconds elapsed since `start_ns` (a [`now_ns`] reading), clamped
/// at zero — the common argument to a latency histogram.
#[inline]
pub fn elapsed_us(start_ns: u64) -> u64 {
    saturating_delta_ns(start_ns, now_ns()) / 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_is_monotonic_within_a_thread() {
        let mut prev = now_ns();
        for _ in 0..10_000 {
            let t = now_ns();
            assert!(t >= prev, "clock went backwards: {t} < {prev}");
            prev = t;
        }
    }

    #[test]
    fn saturating_elapsed_clamps_reversed_arguments() {
        // Fabricated non-monotonic readings: "earlier" is numerically
        // larger. The delta must clamp to zero, not wrap to ~u64::MAX —
        // a wrapped delta would land in the top histogram bucket and
        // poison every percentile.
        let earlier = Ticks(1_000_000);
        let later = Ticks(999_000);
        assert_eq!(later.saturating_elapsed_since(earlier), 0);
        assert_eq!(saturating_delta_ns(1_000_000, 999_000), 0);
        // The well-ordered case still measures.
        assert_eq!(earlier.saturating_elapsed_since(later), 1_000);
    }

    #[test]
    fn elapsed_us_never_underflows_even_for_future_starts() {
        // A start timestamp claimed to be an hour in the future.
        let future = now_ns() + 3_600 * 1_000_000_000;
        assert_eq!(elapsed_us(future), 0);
    }

    #[test]
    fn real_elapsed_measures_forward() {
        let t0 = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let dt = saturating_delta_ns(t0, now_ns());
        assert!(dt >= 1_000_000, "slept 2ms but measured {dt}ns");
    }
}
