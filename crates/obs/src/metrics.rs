//! Metrics: sharded counters, gauges, and log₂ histograms behind a
//! static registry.
//!
//! ## Shard/flush protocol
//!
//! Counters and histograms are striped across [`SHARDS`] cache-line-
//! padded atomic cells; each thread hashes to a fixed stripe (a
//! thread-local assigned round-robin on first use), so concurrent
//! increments from the pool's workers hit distinct cache lines instead
//! of bouncing one. Increments use `Relaxed` ordering — a metric cell
//! carries no control dependency, and torn *reads across shards* are
//! acceptable mid-flight. Reads (`value`, `snapshot`) sum the stripes;
//! exactness is guaranteed once the writing threads have been joined
//! (every `fetch_add` is then visible via the join's happens-before
//! edge), which is the registry's "flush": there is no buffered state,
//! so joining writers *is* the flush.
//!
//! ## Registration
//!
//! Metrics are interned by `&'static str` name in a global map and
//! leaked (`Box::leak`) so handles are `&'static` and recording never
//! takes a lock. Re-registering a name with a different kind panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Stripes per counter/histogram. 16 covers the pool's worker counts on
/// big hosts while keeping an idle counter at 1 KiB.
pub(crate) const SHARDS: usize = 16;

/// Histogram bucket count: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`; bucket 64 tops out the u64 range.
pub const BUCKETS: usize = 65;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// The calling thread's stripe, assigned round-robin on first use.
#[inline]
fn shard_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SHARD: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
    }
    SHARD.with(|s| *s)
}

/// A monotonically increasing sum, striped across shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// Adds `n` (no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::metrics_enabled() {
            self.shards[shard_id()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1 (no-op while metrics are disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The summed value across shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A signed instantaneous value (queue depths, live worker counts).
/// Unsharded: gauges are written orders of magnitude less often than
/// counters (once per batch claim, not once per task).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge (no-op while metrics are disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::metrics_enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `d` (may be negative; no-op while metrics are disabled).
    #[inline]
    pub fn add(&self, d: i64) {
        if crate::metrics_enabled() {
            self.value.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

#[repr(align(64))]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for HistShard {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// The log₂ bucket of `v`: 0 for 0, else `⌊log₂ v⌋ + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// The largest value bucket `b` can hold: 0 for bucket 0 (which holds
/// only the value 0), `2^b − 1` for `1 ≤ b ≤ 63`, and `u64::MAX` for the
/// top bucket. Inclusive so quantile labels rendered as `p50<=` are
/// literally true at every edge — the previous exclusive bound was off
/// by one for buckets 1–63 and silently switched to inclusive at 64.
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A fixed-bucket log₂ histogram of `u64` samples (typically
/// microseconds), striped across shards like [`Counter`].
pub struct Histogram {
    shards: [HistShard; 8],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            shards: std::array::from_fn(|_| HistShard::default()),
        }
    }
}

impl Histogram {
    /// Records one sample (no-op while metrics are disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::metrics_enabled() {
            return;
        }
        let shard = &self.shards[shard_id() % self.shards.len()];
        shard.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        // Saturating, not wrapping: two `u64::MAX` samples must not fold
        // the shard sum back to small values (`fetch_add` wraps).
        let _ = shard
            .sum
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |s| {
                Some(s.saturating_add(v))
            });
        shard.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy (see the module docs for
    /// the exactness contract).
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        let mut max = 0u64;
        for s in &self.shards {
            for (b, cell) in buckets.iter_mut().zip(&s.buckets) {
                *b += cell.load(Ordering::Relaxed);
            }
            sum = sum.saturating_add(s.sum.load(Ordering::Relaxed));
            max = max.max(s.max.load(Ordering::Relaxed));
        }
        HistSnapshot {
            count: buckets.iter().sum(),
            sum,
            max,
            buckets,
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
            s.sum.store(0, Ordering::Relaxed);
            s.max.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Clone, Debug)]
pub struct HistSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
    /// Per-bucket counts (see [`BUCKETS`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
}

impl HistSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the bucket containing quantile
    /// `q in [0, 1]` (0 when empty): the quantile value is `<=` the
    /// returned number. Log₂ buckets bound the estimate within 2×.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(b);
            }
        }
        u64::MAX
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The static metric registry: an interning map from name to leaked
/// metric. All recording goes through `&'static` handles; the map lock
/// is touched only at registration and snapshot time.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<&'static str, Metric>>,
}

pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    fn intern<T: Default + 'static>(
        &self,
        name: &'static str,
        wrap: fn(&'static T) -> Metric,
        unwrap: fn(&Metric) -> Option<&'static T>,
    ) -> &'static T {
        let mut map = self.metrics.lock().expect("metric registry poisoned");
        let entry = map
            .entry(name)
            .or_insert_with(|| wrap(Box::leak(Box::new(T::default()))));
        let (found, kind) = (unwrap(entry), entry.kind());
        // Release the lock before any panic so a kind clash (a programming
        // error at one call site) cannot poison the whole registry.
        drop(map);
        found.unwrap_or_else(|| {
            panic!("metric {name:?} already registered as a {kind}, requested as a different kind")
        })
    }

    /// The counter named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn counter(&self, name: &'static str) -> &'static Counter {
        self.intern(name, Metric::Counter, |m| match m {
            Metric::Counter(c) => Some(c),
            _ => None,
        })
    }

    /// The gauge named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn gauge(&self, name: &'static str) -> &'static Gauge {
        self.intern(name, Metric::Gauge, |m| match m {
            Metric::Gauge(g) => Some(g),
            _ => None,
        })
    }

    /// The histogram named `name`, created on first use.
    ///
    /// # Panics
    /// Panics if `name` is registered as a different metric kind.
    pub fn histogram(&self, name: &'static str) -> &'static Histogram {
        self.intern(name, Metric::Histogram, |m| match m {
            Metric::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// A point-in-time copy of every registered metric, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.metrics.lock().expect("metric registry poisoned");
        Snapshot {
            rows: map
                .iter()
                .map(|(name, m)| MetricRow {
                    name: (*name).to_string(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.value()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                        Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                    },
                })
                .collect(),
        }
    }

    /// Zeroes every registered metric (registration survives).
    pub fn reset(&self) {
        let map = self.metrics.lock().expect("metric registry poisoned");
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// One named metric value inside a [`Snapshot`].
#[derive(Clone, Debug)]
pub struct MetricRow {
    /// Dotted metric name.
    pub name: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// A snapshot value of any metric kind. `Float` never comes from the
/// registry; it lets callers render derived ratios (hit rates,
/// per-node averages) through the same table machinery.
#[derive(Clone, Debug)]
pub enum MetricValue {
    /// Counter sum.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram summary (boxed: a snapshot carries 65 buckets).
    Histogram(Box<HistSnapshot>),
    /// A derived floating-point statistic.
    Float(f64),
}

/// A point-in-time copy of the whole registry.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// All rows, sorted by metric name.
    pub rows: Vec<MetricRow>,
}

impl Snapshot {
    /// Rows whose name starts with `prefix`.
    pub fn with_prefix(&self, prefix: &str) -> Snapshot {
        Snapshot {
            rows: self
                .rows
                .iter()
                .filter(|r| r.name.starts_with(prefix))
                .cloned()
                .collect(),
        }
    }

    /// Renders as an aligned two-column text table.
    pub fn to_table(&self) -> String {
        format_rows(&self.rows)
    }

    /// Renders as one JSON object: counters/gauges as numbers,
    /// histograms as `{count, sum, max, mean, p50, p99, buckets}` with
    /// empty buckets trimmed from the tail.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("  {}: ", crate::json::quote(&row.name)));
            match &row.value {
                MetricValue::Counter(v) => out.push_str(&v.to_string()),
                MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                MetricValue::Float(v) => out.push_str(&format!("{v:.3}")),
                MetricValue::Histogram(h) => {
                    let last = h.buckets.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
                    let buckets: Vec<String> =
                        h.buckets[..last].iter().map(u64::to_string).collect();
                    out.push_str(&format!(
                        "{{\"count\": {}, \"sum\": {}, \"max\": {}, \"mean\": {:.3}, \
                         \"p50_le\": {}, \"p99_le\": {}, \"buckets\": [{}]}}",
                        h.count,
                        h.sum,
                        h.max,
                        h.mean(),
                        h.quantile_upper(0.50),
                        h.quantile_upper(0.99),
                        buckets.join(", ")
                    ));
                }
            }
            out.push_str(if i + 1 < self.rows.len() { ",\n" } else { "\n" });
        }
        out.push_str("}\n");
        out
    }
}

/// Renders metric rows as an aligned two-column text table — the shared
/// formatter behind [`Snapshot::to_table`] and the CLI's `--stats`.
pub fn format_rows(rows: &[MetricRow]) -> String {
    let width = rows.iter().map(|r| r.name.len()).max().unwrap_or(6).max(6);
    let mut out = format!("{:<width$}  value\n", "metric");
    for row in rows {
        let rendered = match &row.value {
            MetricValue::Counter(v) => v.to_string(),
            MetricValue::Gauge(v) => v.to_string(),
            MetricValue::Float(v) => format!("{v:.3}"),
            MetricValue::Histogram(h) => format!(
                "count={} mean={:.1} p50<={} p99<={} max={}",
                h.count,
                h.mean(),
                h.quantile_upper(0.50),
                h.quantile_upper(0.99),
                h.max
            ),
        };
        out.push_str(&format!("{:<width$}  {rendered}\n", row.name));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tests::FLAG_LOCK;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(63), u64::MAX >> 1);
        assert_eq!(bucket_upper(64), u64::MAX);
        // The top-bucket boundary: 2^63 − 1 is the last value of bucket
        // 63, 2^63 the first of bucket 64.
        assert_eq!(bucket_of((1u64 << 63) - 1), 63);
        assert_eq!(bucket_of(1u64 << 63), 64);
    }

    #[test]
    fn histogram_edge_values_zero_and_max() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        let h = global().histogram("test.metrics.edges");
        h.reset();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX); // sum must saturate, not wrap
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[64], 2);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.sum, u64::MAX, "sum saturates instead of wrapping");
        // Quantile bounds stay inside the recorded range at both edges.
        assert_eq!(s.quantile_upper(0.0), 0);
        assert_eq!(s.quantile_upper(1.0), u64::MAX);
        crate::disable_all();
    }

    #[test]
    fn counter_and_histogram_record_when_enabled() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        let c = global().counter("test.metrics.counter");
        let h = global().histogram("test.metrics.hist");
        c.reset();
        h.reset();
        c.add(3);
        c.inc();
        for v in [0, 1, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(c.value(), 4);
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1016);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // 0
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[3], 1); // 7
        assert_eq!(s.buckets[4], 1); // 8
        assert_eq!(s.buckets[10], 1); // 1000
        crate::disable_all();
    }

    #[test]
    fn gauge_set_add() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        let g = global().gauge("test.metrics.gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.value(), 7);
        g.reset();
        assert_eq!(g.value(), 0);
        crate::disable_all();
    }

    #[test]
    fn quantiles_from_buckets() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        let h = global().histogram("test.metrics.quant");
        h.reset();
        // 90 fast samples (~16us), 10 slow (~4096us).
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(3000);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile_upper(0.5), 15); // bucket [8, 16) inclusive upper
        assert_eq!(s.quantile_upper(0.99), 4095); // bucket [2048, 4096)
        assert_eq!(s.quantile_upper(0.0), 15); // rank floors at 1
        crate::disable_all();
    }

    #[test]
    fn duplicate_registration_from_two_call_sites_shares_one_metric() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        // Two independent lookups of the same name must intern to the
        // same leaked cell (the `stats` endpoint serves these numbers;
        // a per-call-site duplicate would silently split the count).
        let a = global().counter("test.metrics.dup_name");
        let b = global().counter("test.metrics.dup_name");
        assert!(std::ptr::eq(a, b));
        a.reset();
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        // And only one row appears in the snapshot.
        let rows = global().snapshot().with_prefix("test.metrics.dup_name");
        assert_eq!(rows.rows.len(), 1);
        crate::disable_all();
    }

    #[test]
    fn json_escapes_hostile_metric_names() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        // Names are &'static str from call sites, but nothing stops a
        // call site from embedding quotes or control characters.
        let c = global().counter("test.metrics.\"quoted\"\nname");
        c.reset();
        c.inc();
        let json = global()
            .snapshot()
            .with_prefix("test.metrics.\"quoted\"")
            .to_json();
        assert!(
            json.contains("\"test.metrics.\\\"quoted\\\"\\nname\": 1"),
            "{json}"
        );
        crate::disable_all();
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _ = global().counter("test.metrics.kind_clash");
        let _ = global().gauge("test.metrics.kind_clash");
    }

    #[test]
    fn snapshot_table_and_json_render() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        global().counter("test.metrics.render_c").reset();
        global().counter("test.metrics.render_c").add(12);
        global().histogram("test.metrics.render_h").reset();
        global().histogram("test.metrics.render_h").record(100);
        let snap = global().snapshot().with_prefix("test.metrics.render");
        assert_eq!(snap.rows.len(), 2);
        let table = snap.to_table();
        assert!(table.contains("test.metrics.render_c"), "{table}");
        assert!(table.contains("12"), "{table}");
        assert!(table.contains("count=1"), "{table}");
        let json = snap.to_json();
        assert!(json.contains("\"test.metrics.render_c\": 12"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        crate::disable_all();
    }

    #[test]
    fn reset_clears_values_but_keeps_registration() {
        let _guard = FLAG_LOCK.lock().unwrap();
        crate::enable_metrics();
        let c = global().counter("test.metrics.reset_me");
        c.add(5);
        global().reset();
        assert_eq!(c.value(), 0);
        assert!(global()
            .snapshot()
            .rows
            .iter()
            .any(|r| r.name == "test.metrics.reset_me"));
        crate::disable_all();
    }
}
