//! Observability overhead experiment: what does soc-obs cost?
//!
//! The instrumentation added across the solver, pool, miner, index, and
//! serving layers is permanent — the hot paths always contain the
//! recording calls, and the only thing the enable flags change is
//! whether a call does work. This experiment measures that contract on
//! the batch-serving workload:
//!
//! - **disabled** — flags off; every recording call is one relaxed
//!   atomic load plus a branch;
//! - **metrics** — counters/gauges/histograms recording;
//! - **metrics+tracing** — both subsystems recording.
//!
//! Per configuration the batch runs `reps` times and the **minimum**
//! wall-clock is kept — minima compare the undisturbed code paths,
//! which is the right statistic for an overhead ratio on a shared host.
//! The metrics run also snapshots the end-to-end per-instance latency
//! histogram (`serving.instance_us`), and a microbenchmark measures the
//! per-call cost of a disabled counter directly.
//!
//! [`obs_overhead`] writes `BENCH_obs.json` with the per-config times,
//! the overhead ratios, the latency histogram summary, and the
//! disabled-path ns/op.

use std::time::Duration;

use soc_core::{solve_batch, MfiSolver, SharedMfi};
use soc_data::{QueryLog, Tuple};

use crate::figs::synthetic_setup;
use crate::harness::{measure, Cell, Scale, Table};
use crate::json::{BenchJson, InlineObject};

/// Attribute budget, matching the serving experiment.
pub const OBS_M: usize = 5;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct ObsResult {
    /// Configuration label.
    pub name: String,
    /// Minimum wall-clock per batch across repetitions.
    pub min: Duration,
    /// Total satisfied weight — must match across configurations.
    pub total_satisfied: usize,
}

/// Parameters plus derived measurements of an overhead run.
#[derive(Clone, Debug)]
pub struct ObsParams {
    /// Query-log size.
    pub num_queries: usize,
    /// Universe width.
    pub num_attrs: usize,
    /// Batch size.
    pub cars: usize,
    /// Attribute budget.
    pub m: usize,
    /// Worker threads.
    pub threads: usize,
    /// Repetitions per configuration (minimum kept).
    pub reps: usize,
    /// Measured cost of one disabled `Counter::add` call, nanoseconds.
    pub disabled_ns_per_op: f64,
    /// Per-instance latency snapshot from the metrics-enabled run.
    pub latency: soc_obs::HistSnapshot,
    /// Spans collected by the tracing-enabled run.
    pub spans: usize,
}

fn run_batch(log: &QueryLog, cars: &[Tuple], threads: usize, reps: usize, name: &str) -> ObsResult {
    let mut min = Duration::MAX;
    let mut satisfied = 0usize;
    for rep in 0..reps {
        let shared = SharedMfi::new(MfiSolver::default());
        let (t, batch) = measure(|| solve_batch(&shared, log, cars, OBS_M, threads));
        min = min.min(t);
        let sum: usize = batch.iter().map(|s| s.satisfied).sum();
        if rep == 0 {
            satisfied = sum;
        } else {
            assert_eq!(sum, satisfied, "{name}: objective drifted across reps");
        }
    }
    ObsResult {
        name: name.to_string(),
        min,
        total_satisfied: satisfied,
    }
}

/// Nanoseconds per disabled `Counter::add` call, measured directly.
/// This is the entire per-call-site production cost of the metrics
/// layer while it is off: one relaxed flag load and a branch.
fn disabled_ns_per_op() -> f64 {
    soc_obs::disable_all();
    let c = soc_obs::counter!("obs.bench.disabled_probe");
    const OPS: u32 = 4_000_000;
    let mut best = Duration::MAX;
    for _ in 0..3 {
        let (t, ()) = measure(|| {
            for i in 0..OPS {
                c.add(u64::from(i));
            }
        });
        best = best.min(t);
    }
    assert_eq!(c.value(), 0, "disabled counter must record nothing");
    best.as_secs_f64() * 1e9 / f64::from(OPS)
}

/// Runs the three configurations and returns parameters plus results.
/// Restores both subsystems to disabled before returning.
pub fn run_obs(scale: Scale) -> (ObsParams, Vec<ObsResult>) {
    let (num_queries, reps) = match scale {
        Scale::Quick => (600, 3),
        Scale::Full => (1_500, 5),
    };
    let num_attrs = 32;
    let (log, cars) = synthetic_setup(scale, num_queries, num_attrs);
    let threads = super::serving::pool_threads();

    let mut results = Vec::new();

    soc_obs::disable_all();
    results.push(run_batch(&log, &cars, threads, reps, "disabled"));

    soc_obs::enable_metrics();
    soc_obs::reset_metrics();
    results.push(run_batch(&log, &cars, threads, reps, "metrics"));
    let latency = soc_obs::registry()
        .histogram("serving.instance_us")
        .snapshot();

    soc_obs::enable_all();
    let _ = soc_obs::drain_spans();
    results.push(run_batch(&log, &cars, threads, reps, "metrics+tracing"));
    let spans = soc_obs::drain_spans().len();
    soc_obs::disable_all();

    let disabled = results[0].total_satisfied;
    for r in &results {
        assert_eq!(
            r.total_satisfied, disabled,
            "{}: instrumentation changed the objective",
            r.name
        );
    }

    let params = ObsParams {
        num_queries,
        num_attrs,
        cars: cars.len(),
        m: OBS_M,
        threads,
        reps,
        disabled_ns_per_op: disabled_ns_per_op(),
        latency,
        spans,
    };
    (params, results)
}

fn overhead_pct(r: &ObsResult, baseline: Duration) -> f64 {
    (r.min.as_secs_f64() / baseline.as_secs_f64().max(1e-12) - 1.0) * 100.0
}

/// The `figures obs` experiment: runs [`run_obs`], writes
/// `BENCH_obs.json` into the current directory, and returns the
/// human-readable table.
pub fn obs_overhead(scale: Scale) -> Table {
    let (params, results) = run_obs(scale);
    let baseline = results
        .iter()
        .find(|r| r.name == "disabled")
        .expect("disabled config always runs")
        .min;

    let mut table = Table::new(
        "Observability overhead — disabled vs metrics vs metrics+tracing",
        "config",
        vec![
            "min ms".into(),
            "overhead %".into(),
            "total satisfied".into(),
        ],
    );
    for r in &results {
        table.push_row(
            r.name.clone(),
            vec![
                Cell::Time(r.min),
                Cell::Value(overhead_pct(r, baseline)),
                Cell::Value(r.total_satisfied as f64),
            ],
        );
    }
    table.note(format!(
        "{} queries × {} attributes, batch of {} cars, m = {}, {} threads, \
         min of {} reps per config; satisfied weight asserted identical across configs",
        params.num_queries, params.num_attrs, params.cars, params.m, params.threads, params.reps
    ));
    table.note(format!(
        "per-instance latency (metrics run): count={} mean={:.0}us p50<={}us p99<={}us max={}us",
        params.latency.count,
        params.latency.mean(),
        params.latency.quantile_upper(0.50),
        params.latency.quantile_upper(0.99),
        params.latency.max
    ));
    table.note(format!(
        "disabled-path microbench: {:.2} ns per counter call; {} spans collected by the tracing run",
        params.disabled_ns_per_op, params.spans
    ));

    let json = obs_json(&params, &results, scale);
    match std::fs::write("BENCH_obs.json", &json) {
        Ok(()) => table.note("wrote BENCH_obs.json"),
        Err(e) => table.note(format!("could not write BENCH_obs.json: {e}")),
    }
    table
}

/// Renders the machine-readable artifact through the shared
/// [`crate::json`] emitter.
pub fn obs_json(params: &ObsParams, results: &[ObsResult], scale: Scale) -> String {
    let baseline = results
        .iter()
        .find(|r| r.name == "disabled")
        .map_or(Duration::ZERO, |r| r.min);
    let h = &params.latency;
    let mut json = BenchJson::new("obs_overhead", scale)
        .raw_field("num_queries", params.num_queries.to_string())
        .raw_field("num_attrs", params.num_attrs.to_string())
        .raw_field("cars", params.cars.to_string())
        .raw_field("m", params.m.to_string())
        .raw_field("threads", params.threads.to_string())
        .raw_field("reps", params.reps.to_string())
        .str_field("baseline", "disabled")
        .raw_field(
            "disabled_ns_per_op",
            format!("{:.3}", params.disabled_ns_per_op),
        )
        .raw_field("spans_collected", params.spans.to_string())
        .raw_field(
            "instance_latency_us",
            InlineObject::new()
                .raw("count", h.count.to_string())
                .raw("mean", format!("{:.1}", h.mean()))
                .raw("p50_le", h.quantile_upper(0.50).to_string())
                .raw("p99_le", h.quantile_upper(0.99).to_string())
                .raw("max", h.max.to_string())
                .render_inline(),
        );
    for r in results {
        let ms = r.min.as_secs_f64() * 1e3;
        json = json.config(
            InlineObject::new()
                .str("name", &r.name)
                .raw("min_ms", format!("{ms:.3}"))
                .raw(
                    "overhead_vs_disabled_pct",
                    format!("{:.2}", overhead_pct(r, baseline)),
                )
                .raw("total_satisfied", r.total_satisfied.to_string()),
        );
    }
    json.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let params = ObsParams {
            num_queries: 10,
            num_attrs: 6,
            cars: 2,
            m: 3,
            threads: 2,
            reps: 2,
            disabled_ns_per_op: 0.75,
            latency: soc_obs::HistSnapshot {
                count: 2,
                sum: 300,
                max: 200,
                buckets: [0; soc_obs::BUCKETS],
            },
            spans: 5,
        };
        let mk = |name: &str, ms: u64| ObsResult {
            name: name.into(),
            min: Duration::from_millis(ms),
            total_satisfied: 9,
        };
        let json = obs_json(
            &params,
            &[mk("disabled", 100), mk("metrics", 102)],
            Scale::Quick,
        );
        assert!(json.contains("\"experiment\": \"obs_overhead\""));
        assert!(json.contains("\"baseline\": \"disabled\""));
        assert!(json.contains("\"disabled_ns_per_op\": 0.750"));
        assert!(json.contains("\"overhead_vs_disabled_pct\": 2.00"));
        assert!(json.contains("\"instance_latency_us\": {\"count\": 2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    /// Release-mode smoke check run by `scripts/ci.sh`: the quick-scale
    /// experiment must stay within the documented overhead contract
    /// (DESIGN.md "The observability layer"). Ignored by default — it
    /// only means something with optimizations on, and it runs the
    /// serving batch nine times.
    #[test]
    #[ignore = "release-mode overhead smoke, run by scripts/ci.sh"]
    fn smoke_obs_overhead_within_contract() {
        let (params, results) = run_obs(Scale::Quick);
        let baseline = results
            .iter()
            .find(|r| r.name == "disabled")
            .expect("disabled config always runs")
            .min;
        for r in &results {
            let pct = overhead_pct(r, baseline);
            assert!(
                pct <= 5.0,
                "{}: {pct:.2}% overhead exceeds the 5% contract",
                r.name
            );
        }
        assert!(params.disabled_ns_per_op < 50.0);
        assert!(
            params.latency.count > 0,
            "metrics run recorded no latencies"
        );
        assert!(params.spans > 0, "tracing run collected no spans");
    }

    #[test]
    fn disabled_microbench_is_sub_takt() {
        // The disabled path is a load + branch; even a slow shared host
        // does that well under 50ns. A blow-up here means the fast path
        // regressed (e.g. a clock read before the flag check).
        let ns = disabled_ns_per_op();
        assert!(ns < 50.0, "disabled counter costs {ns:.1} ns/op");
    }
}
