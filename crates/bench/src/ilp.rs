//! ILP solver experiment: warm-started dual simplex vs cold two-phase
//! node LPs, and parallel node exploration.
//!
//! The paper's exact path (§IV.B) hands the linearized model to a
//! branch-and-bound code; the cost of that path is dominated by the LP
//! relaxation solved at every node. This experiment measures the three
//! node-LP strategies the solver crate offers, on the long-query-log
//! workload where the ILP is the bottleneck:
//!
//! - **cold** — every node runs the two-phase primal simplex from
//!   scratch (`warm_lp: false`, the PR 1 baseline);
//! - **warm** — every node restores its parent's basis and re-optimizes
//!   with the dual simplex (`warm_lp: true`);
//! - **parallel** — warm restores plus concurrent node exploration on
//!   the worker pool (`threads > 1`).
//!
//! The greedy warm-start incumbent and presolve are disabled so the
//! branch-and-bound tree does real work — with them on, the seed
//! workloads collapse to a handful of nodes and there is nothing to
//! measure. Exactness is still asserted: every configuration must
//! return the same satisfied weight per instance.
//!
//! Besides the TSV table, [`ilp_solver_bench`] writes the
//! machine-readable `BENCH_ilp.json` so node throughput can be tracked
//! across PRs.

use std::time::Duration;

use soc_core::{IlpSolver, SocInstance};
use soc_solver::SolveStats;

use crate::figs::synthetic_setup;
use crate::harness::{measure, Cell, Scale, Table};
use crate::json::{BenchJson, InlineObject};

/// Attribute budget for the experiment. Larger than the paper's sweep
/// midpoint on purpose: a looser budget keeps more `x_j` fractional in
/// the relaxation, which is what grows the branch-and-bound tree and
/// lets the node-LP strategies differentiate.
pub const ILP_M: usize = 12;

/// Parameters of an ILP bench run, recorded in the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct IlpParams {
    /// Query-log size (raw, before any deduplication — the ILP sees
    /// every query).
    pub num_queries: usize,
    /// Universe width.
    pub num_attrs: usize,
    /// Attribute budget.
    pub m: usize,
    /// Instances (cars) solved per configuration.
    pub instances: usize,
    /// Worker threads for the parallel configuration.
    pub threads: usize,
}

/// One measured configuration: wall time plus the solver counters
/// accumulated across all instances.
#[derive(Clone, Debug)]
pub struct IlpResult {
    /// Configuration label (`cold`, `warm`, `parallel`).
    pub name: String,
    /// Total wall-clock across all instances.
    pub total: Duration,
    /// Accumulated branch-and-bound counters.
    pub stats: SolveStats,
    /// Total satisfied weight across instances — the exactness checksum.
    pub total_satisfied: usize,
}

impl IlpResult {
    /// Nodes explored per second of wall time.
    pub fn nodes_per_sec(&self) -> f64 {
        self.stats.nodes as f64 / self.total.as_secs_f64().max(1e-12)
    }
}

fn accumulate(into: &mut SolveStats, s: &SolveStats) {
    into.nodes += s.nodes;
    into.lp_pivots += s.lp_pivots;
    into.dual_pivots += s.dual_pivots;
    into.warm_solves += s.warm_solves;
    into.cold_solves += s.cold_solves;
    into.warm_failures += s.warm_failures;
    into.pre_bound_pruned += s.pre_bound_pruned;
    into.presolved_vars += s.presolved_vars;
    into.threads = into.threads.max(s.threads);
}

fn bench_solver(warm_lp: bool, threads: usize) -> IlpSolver {
    let mut solver = IlpSolver {
        // No greedy incumbent and no presolve: both collapse the seed
        // trees to a few nodes and erase the node-throughput signal.
        // Query pruning stays on so model sizes remain moderate.
        warm_start: false,
        presolve: false,
        ..Default::default()
    };
    solver.options.warm_lp = warm_lp;
    solver.options.threads = threads;
    solver
}

/// Runs the three configurations over the same instances and returns
/// the per-config results. Shared by the table/JSON front-end and by
/// tests.
pub fn run_ilp(scale: Scale) -> (IlpParams, Vec<IlpResult>) {
    let (num_queries, instances) = match scale {
        Scale::Quick => (300, 3),
        Scale::Full => (1000, 6),
    };
    let num_attrs = 40;
    let (log, cars) = synthetic_setup(scale, num_queries, num_attrs);
    let cars = &cars[..instances.min(cars.len())];
    let threads = super::serving::pool_threads();
    let params = IlpParams {
        num_queries,
        num_attrs,
        m: ILP_M,
        instances: cars.len(),
        threads,
    };

    let configs = [
        ("cold", bench_solver(false, 1)),
        ("warm", bench_solver(true, 1)),
        ("parallel", bench_solver(true, threads)),
    ];
    let mut results = Vec::new();
    for (name, solver) in configs {
        let mut total = Duration::ZERO;
        let mut stats = SolveStats::default();
        let mut satisfied = 0usize;
        for car in cars {
            let inst = SocInstance::new(&log, car, ILP_M);
            let (t, (sol, s)) = measure(|| solver.solve_with_stats(&inst));
            total += t;
            accumulate(&mut stats, &s);
            satisfied += sol.satisfied;
        }
        results.push(IlpResult {
            name: name.to_string(),
            total,
            stats,
            total_satisfied: satisfied,
        });
    }
    let cold = results[0].total_satisfied;
    for r in &results {
        assert_eq!(
            r.total_satisfied, cold,
            "{}: objective disagrees with the cold oracle",
            r.name
        );
    }
    (params, results)
}

/// The `figures ilp` experiment: runs [`run_ilp`], writes
/// `BENCH_ilp.json` into the current directory, and returns the
/// human-readable table.
pub fn ilp_solver_bench(scale: Scale) -> Table {
    let (params, results) = run_ilp(scale);
    let cold = results
        .iter()
        .find(|r| r.name == "cold")
        .expect("cold config always runs")
        .nodes_per_sec();

    let mut table = Table::new(
        "ILP node-LP strategies — cold vs warm dual simplex vs parallel",
        "config",
        vec![
            "total ms".into(),
            "nodes".into(),
            "nodes/sec".into(),
            "throughput vs cold".into(),
            "pivots/node".into(),
            "warm hit %".into(),
            "satisfied".into(),
        ],
    );
    for r in &results {
        table.push_row(
            r.name.clone(),
            vec![
                Cell::Time(r.total),
                Cell::Value(r.stats.nodes as f64),
                Cell::Value(r.nodes_per_sec()),
                Cell::Value(r.nodes_per_sec() / cold.max(1e-12)),
                Cell::Value(r.stats.pivots_per_node()),
                Cell::Value(r.stats.warm_hit_rate() * 100.0),
                Cell::Value(r.total_satisfied as f64),
            ],
        );
    }
    table.note(format!(
        "{} queries × {} attributes, {} instances, m = {}, parallel uses {} threads; \
         greedy incumbent and presolve disabled so the tree does real work; \
         satisfied weight asserted identical across configs",
        params.num_queries, params.num_attrs, params.instances, params.m, params.threads
    ));
    table.note(
        "pivots/node counts primal + dual pivots plus warm-restore refactorization \
         columns; warm hit % = warm-started node LPs / all node LPs",
    );

    let json = ilp_json(&params, &results, scale);
    match std::fs::write("BENCH_ilp.json", &json) {
        Ok(()) => table.note("wrote BENCH_ilp.json"),
        Err(e) => table.note(format!("could not write BENCH_ilp.json: {e}")),
    }
    table
}

/// Renders the machine-readable artifact through the shared
/// [`crate::json`] emitter.
pub fn ilp_json(params: &IlpParams, results: &[IlpResult], scale: Scale) -> String {
    let cold = results
        .iter()
        .find(|r| r.name == "cold")
        .map_or(0.0, IlpResult::nodes_per_sec);
    let mut json = BenchJson::new("ilp_solver", scale)
        .raw_field("num_queries", params.num_queries.to_string())
        .raw_field("num_attrs", params.num_attrs.to_string())
        .raw_field("m", params.m.to_string())
        .raw_field("instances", params.instances.to_string())
        .raw_field("threads", params.threads.to_string())
        .str_field("baseline", "cold");
    for r in results {
        let ms = r.total.as_secs_f64() * 1e3;
        json = json.config(
            InlineObject::new()
                .str("name", &r.name)
                .raw("total_ms", format!("{ms:.3}"))
                .raw("nodes", r.stats.nodes.to_string())
                .raw("lp_pivots", r.stats.lp_pivots.to_string())
                .raw("dual_pivots", r.stats.dual_pivots.to_string())
                .raw(
                    "pivots_per_node",
                    format!("{:.3}", r.stats.pivots_per_node()),
                )
                .raw("nodes_per_sec", format!("{:.1}", r.nodes_per_sec()))
                .raw(
                    "throughput_vs_cold",
                    format!("{:.3}", r.nodes_per_sec() / cold.max(1e-12)),
                )
                .raw("warm_solves", r.stats.warm_solves.to_string())
                .raw("cold_solves", r.stats.cold_solves.to_string())
                .raw("warm_failures", r.stats.warm_failures.to_string())
                .raw("warm_hit_rate", format!("{:.3}", r.stats.warm_hit_rate()))
                .raw("total_satisfied", r.total_satisfied.to_string()),
        );
    }
    json.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let params = IlpParams {
            num_queries: 10,
            num_attrs: 6,
            m: 3,
            instances: 2,
            threads: 4,
        };
        let mk = |name: &str, nodes, warm| IlpResult {
            name: name.into(),
            total: Duration::from_millis(50),
            stats: SolveStats {
                nodes,
                lp_pivots: 40,
                dual_pivots: 12,
                warm_solves: warm,
                cold_solves: nodes - warm,
                ..Default::default()
            },
            total_satisfied: 9,
        };
        let json = ilp_json(
            &params,
            &[mk("cold", 20, 0), mk("warm", 20, 18)],
            Scale::Quick,
        );
        assert!(json.contains("\"experiment\": \"ilp_solver\""));
        assert!(json.contains("\"baseline\": \"cold\""));
        assert!(json.contains("\"nodes\": 20"));
        assert!(json.contains("\"warm_hit_rate\": 0.900"));
        // Balanced braces/brackets — enough of a well-formedness check
        // for a schema with no nested strings.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.trim_end().ends_with('}'));
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn configs_agree_on_tiny_instances() {
        // Minimal end-to-end run of the three configurations: every one
        // must report the same satisfied weight (they are all exact).
        let (log, cars) = synthetic_setup(Scale::Quick, 40, 10);
        let car = &cars[0];
        let inst = SocInstance::new(&log, car, 3);
        let baseline = bench_solver(false, 1).solve_with_stats(&inst);
        for (warm, threads) in [(true, 1), (true, 3)] {
            let (sol, stats) = bench_solver(warm, threads).solve_with_stats(&inst);
            assert_eq!(sol.satisfied, baseline.0.satisfied);
            assert!(stats.nodes > 0);
        }
        assert_eq!(baseline.1.warm_solves, 0, "cold mode must not warm-start");
    }

    /// Release-mode smoke benchmark for CI: the warm configuration must
    /// prove optimality on a quick-scale workload within a budgeted node
    /// limit. Run with `--release -- --ignored` (see scripts/ci.sh) —
    /// far too slow for the debug-mode test sweep.
    #[test]
    #[ignore = "release-mode smoke bench; run via scripts/ci.sh"]
    fn smoke_warm_solver_proves_within_node_budget() {
        let (log, cars) = synthetic_setup(Scale::Quick, 150, 24);
        let mut solver = bench_solver(true, 1);
        solver.options.max_nodes = 200_000;
        // Budgets tighter than the cars' attribute counts, so at least
        // one LP relaxation goes fractional and the trees exercise warm
        // solves; single instances can still solve integrally at the
        // root, hence the sweep.
        let mut warm_solves = 0usize;
        for car in cars.iter().take(4) {
            for m in [5, 6, 8] {
                let inst = SocInstance::new(&log, car, m);
                let (sol, stats) = solver.solve_with_stats(&inst);
                assert!(stats.nodes <= 200_000);
                warm_solves += stats.warm_solves;
                // Cross-check exactness against the cold oracle.
                let (cold, _) = bench_solver(false, 1).solve_with_stats(&inst);
                assert_eq!(sol.satisfied, cold.satisfied);
            }
        }
        assert!(warm_solves > 0, "warm path never exercised");
    }
}
