//! Regenerates the paper's evaluation figures and the ablations as TSV.
//!
//! Usage:
//!   figures [--quick] [experiment ...]
//!
//! Experiments: fig6 fig7 fig8 fig9 fig10 fig11 walk threshold stopping
//! apriori preprocess gap dedup index miner drift serving ilp obs all
//! (default: all)
//!
//! `serving`, `ilp`, `obs`, and `index` additionally write the
//! machine-readable `BENCH_serving.json` / `BENCH_ilp.json` /
//! `BENCH_obs.json` / `BENCH_index.json` into the current directory.
//!
//! `--quick` averages over 10 cars and truncates sweeps; the default
//! (full) scale matches the paper's 100-car averages.

use soc_bench::harness::{Scale, Table};
use soc_bench::{ablations, figs, ilp, index, obs, serving};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    let mut wanted: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    if wanted.is_empty() {
        wanted = vec!["all"];
    }

    type Experiment = fn(Scale) -> Table;
    let catalog: Vec<(&str, Experiment)> = vec![
        ("fig6", figs::fig6),
        ("fig7", figs::fig7),
        ("fig8", figs::fig8),
        ("fig9", figs::fig9),
        ("fig10", figs::fig10),
        ("fig11", figs::fig11),
        ("walk", ablations::walk_direction),
        ("threshold", ablations::threshold_strategies),
        ("stopping", ablations::stopping_rule),
        ("apriori", ablations::apriori_explosion),
        ("preprocess", ablations::preprocessing),
        ("gap", ablations::greedy_gap),
        ("dedup", ablations::deduplication),
        ("index", index::index_kernels),
        ("miner", ablations::miner_comparison),
        ("drift", ablations::log_drift),
        ("serving", serving::batch_serving),
        ("ilp", ilp::ilp_solver_bench),
        ("obs", obs::obs_overhead),
    ];

    let run_all = wanted.contains(&"all");
    let mut ran = 0;
    for (name, f) in &catalog {
        if run_all || wanted.contains(name) {
            eprintln!("running {name} ({scale:?}) …");
            let table = f(scale);
            println!("{}", table.to_tsv());
            ran += 1;
        }
    }
    if ran == 0 {
        eprintln!(
            "unknown experiment; available: {} all",
            catalog
                .iter()
                .map(|(n, _)| *n)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
}
