//! Shared emitter for the flat `BENCH_*.json` artifacts.
//!
//! Hand-rolled JSON — the workspace has no serialization dependency (see
//! DESIGN.md "Dependencies") and every artifact is one flat object plus
//! a flat `configs` array. The emitter fixes the layout (two-space
//! indented header fields, one inline object per config line) so all
//! artifacts stay diff-friendly and uniformly parseable.

use crate::harness::Scale;

/// One inline JSON object, rendered `{"k": v, ...}` on a single line —
/// the shape of a `configs` entry.
#[derive(Clone, Debug, Default)]
pub struct InlineObject {
    parts: Vec<String>,
}

impl InlineObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a string-valued field. Name and value are escaped through
    /// the workspace-shared routine, so config labels containing quotes,
    /// backslashes, or control characters stay valid JSON.
    pub fn str(mut self, name: &str, value: &str) -> Self {
        self.parts.push(format!(
            "{}: {}",
            soc_obs::json::quote(name),
            soc_obs::json::quote(value)
        ));
        self
    }

    /// Appends a field whose value is already rendered — numbers with
    /// the caller's precision, `null`, nested summaries.
    pub fn raw(mut self, name: &str, rendered: impl Into<String>) -> Self {
        self.parts.push(format!("\"{name}\": {}", rendered.into()));
        self
    }

    /// Renders `{"k": v, ...}` on one line — for nesting one inline
    /// object as the value of another field.
    pub fn render_inline(&self) -> String {
        format!("{{{}}}", self.parts.join(", "))
    }
}

/// Builder for one artifact: scalar header fields, then the `configs`
/// array.
#[derive(Clone, Debug)]
pub struct BenchJson {
    fields: Vec<String>,
    configs: Vec<String>,
}

impl BenchJson {
    /// Starts an artifact with the mandatory `experiment`/`scale`
    /// header every `BENCH_*.json` carries.
    pub fn new(experiment: &str, scale: Scale) -> Self {
        Self {
            fields: vec![
                format!("\"experiment\": {}", soc_obs::json::quote(experiment)),
                format!("\"scale\": \"{scale:?}\""),
            ],
            configs: Vec::new(),
        }
    }

    /// Appends a string-valued header field (name and value escaped).
    pub fn str_field(mut self, name: &str, value: &str) -> Self {
        self.fields.push(format!(
            "{}: {}",
            soc_obs::json::quote(name),
            soc_obs::json::quote(value)
        ));
        self
    }

    /// Appends a header field whose value is already rendered.
    pub fn raw_field(mut self, name: &str, rendered: impl Into<String>) -> Self {
        self.fields.push(format!("\"{name}\": {}", rendered.into()));
        self
    }

    /// Appends one entry to the `configs` array.
    pub fn config(mut self, obj: InlineObject) -> Self {
        self.configs.push(obj.render_inline());
        self
    }

    /// Renders the artifact.
    pub fn render(self) -> String {
        let mut out = String::from("{\n");
        for f in &self.fields {
            out.push_str(&format!("  {f},\n"));
        }
        out.push_str("  \"configs\": [\n");
        for (i, c) in self.configs.iter().enumerate() {
            out.push_str(&format!(
                "    {c}{}\n",
                if i + 1 < self.configs.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_matches_the_artifact_convention() {
        let json = BenchJson::new("demo", Scale::Quick)
            .raw_field("n", "3")
            .str_field("baseline", "cold")
            .config(InlineObject::new().str("name", "cold").raw("ms", "20.000"))
            .config(InlineObject::new().str("name", "warm").raw("ms", "5.125"))
            .render();
        assert!(json.starts_with("{\n  \"experiment\": \"demo\",\n"));
        assert!(json.contains("\"scale\": \"Quick\""));
        assert!(json.contains("  \"baseline\": \"cold\",\n"));
        assert!(json.contains("    {\"name\": \"cold\", \"ms\": 20.000},\n"));
        assert!(json.contains("    {\"name\": \"warm\", \"ms\": 5.125}\n"));
        assert!(json.ends_with("  ]\n}\n"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn empty_configs_render_an_empty_array() {
        let json = BenchJson::new("demo", Scale::Full).render();
        assert!(json.contains("\"configs\": [\n  ]"));
    }

    #[test]
    fn hostile_labels_are_escaped() {
        let json = BenchJson::new("de\"mo", Scale::Quick)
            .str_field("label", "line\nbreak \\ and \u{1} and 🚗")
            .config(InlineObject::new().str("name", "a\"b"))
            .render();
        assert!(json.contains("\"experiment\": \"de\\\"mo\""), "{json}");
        assert!(
            json.contains("\"label\": \"line\\nbreak \\\\ and \\u0001 and 🚗\""),
            "{json}"
        );
        assert!(json.contains("{\"name\": \"a\\\"b\"}"), "{json}");
        // Still one config per line: the raw newline was escaped away.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
