//! Batch-serving experiment: the deployment shape introduced in PR 2.
//!
//! One synthetic workload, a stream of new cars, MaxFreqItemSets as the
//! exact solver. The experiment crosses the three axes that PR 2 added:
//!
//! - **scheduler** — static chunking ([`soc_core::solve_batch_chunked`],
//!   the PR 1 baseline) vs the work-stealing pool
//!   ([`soc_core::solve_batch`]);
//! - **instance** — solving in the full 32-attribute universe vs the
//!   per-tuple projection ([`soc_core::Projected`]), which shrinks the
//!   log to contained queries and the universe to `|t|`;
//! - **mining** — serial vs pool-parallel random-walk mining
//!   (`MfiSolver::workers`), measured head-on by timing a cold
//!   [`SharedMfi::prime`] on the full log.
//!
//! Besides the TSV table, [`batch_serving`] writes the machine-readable
//! `BENCH_serving.json` so perf can be tracked across PRs.

use std::time::Duration;

use soc_core::{
    solve_batch, solve_batch_chunked, solve_batch_with, BatchPolicy, MfiSolver, Projected,
    SharedMfi, Solution,
};
use soc_data::Tuple;

use crate::figs::synthetic_setup;
use crate::harness::{measure, Cell, Scale, Table};
use crate::json::{BenchJson, InlineObject};

/// Attribute budget used throughout the experiment (the paper's default
/// sweep midpoint).
pub const SERVING_M: usize = 5;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct ServingResult {
    /// Configuration label, `scheduler/instance/mining`.
    pub name: String,
    /// Mean wall-clock per batch (or per prime) across repetitions.
    pub mean: Duration,
    /// Total satisfied weight across the batch — the exactness checksum.
    /// `None` for mining-only rows, which produce no solutions.
    pub total_satisfied: Option<usize>,
}

/// Parameters of a serving run, recorded in the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct ServingParams {
    /// Query-log size.
    pub num_queries: usize,
    /// Universe width.
    pub num_attrs: usize,
    /// Batch size (cars served).
    pub cars: usize,
    /// Attribute budget.
    pub m: usize,
    /// Worker threads for the pool and for parallel mining.
    pub threads: usize,
    /// Repetitions averaged per configuration.
    pub reps: usize,
}

/// Worker-thread count: the host parallelism, floored at 2 so the
/// stealing scheduler and the parallel miner are genuinely exercised
/// even on single-core CI hosts (where those axes measure pure overhead
/// and any speedup comes from projection alone).
pub(crate) fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .max(2)
}

fn timed_batch(
    reps: usize,
    run: impl Fn() -> Vec<Solution>,
    name: &str,
    results: &mut Vec<ServingResult>,
) {
    let mut total = Duration::ZERO;
    let mut satisfied = 0;
    for rep in 0..reps {
        let (t, batch) = measure(&run);
        total += t;
        let sum: usize = batch.iter().map(|s| s.satisfied).sum();
        if rep == 0 {
            satisfied = sum;
        } else {
            assert_eq!(sum, satisfied, "{name}: objective drifted across reps");
        }
    }
    results.push(ServingResult {
        name: name.to_string(),
        mean: total / reps as u32,
        total_satisfied: Some(satisfied),
    });
}

/// Runs every serving configuration and returns the per-config results
/// plus the parameters used. Shared by the table/JSON front-end below
/// and by tests.
pub fn run_serving(scale: Scale) -> (ServingParams, Vec<ServingResult>) {
    let (num_queries, reps) = match scale {
        Scale::Quick => (800, 2),
        Scale::Full => (2_000, 5),
    };
    let num_attrs = 32;
    let (log, cars) = synthetic_setup(scale, num_queries, num_attrs);
    let threads = pool_threads();
    let params = ServingParams {
        num_queries,
        num_attrs,
        cars: cars.len(),
        m: SERVING_M,
        threads,
        reps,
    };

    let serial = MfiSolver::default();
    let parallel = MfiSolver {
        workers: threads,
        ..Default::default()
    };
    let mut results = Vec::new();

    // Mining axis, head-on: one cold prime of the shared cache on the
    // full log, serial vs pool-parallel walks. A fresh cache every rep so
    // each rep pays the full mine.
    for (name, solver) in [
        ("prime/full/serial-mine", serial.clone()),
        ("prime/full/parallel-mine", parallel.clone()),
    ] {
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let shared = SharedMfi::new(solver.clone());
            let (t, ()) = measure(|| shared.prime(&log));
            total += t;
        }
        results.push(ServingResult {
            name: name.to_string(),
            mean: total / reps as u32,
            total_satisfied: None,
        });
    }

    // Scheduler axis on the full universe. A fresh SharedMfi per rep:
    // the first instance mines cold, the rest hit the cache — the
    // realistic cost profile of serving a batch against a new log.
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(serial.clone());
            solve_batch_chunked(&shared, &log, &cars, SERVING_M, threads)
        },
        "chunked/full/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(serial.clone());
            solve_batch(&shared, &log, &cars, SERVING_M, threads)
        },
        "stealing/full/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(parallel.clone());
            solve_batch(&shared, &log, &cars, SERVING_M, threads)
        },
        "stealing/full/parallel-mine",
        &mut results,
    );

    // Instance axis: per-tuple projection. Each instance mines its own
    // compact log (universe |t| instead of 32, contained queries only),
    // so there is no cross-tuple cache to share — and none is needed.
    timed_batch(
        reps,
        || solve_batch_chunked(&Projected(serial.clone()), &log, &cars, SERVING_M, threads),
        "chunked/projected/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || solve_batch(&Projected(serial.clone()), &log, &cars, SERVING_M, threads),
        "stealing/projected/serial-mine",
        &mut results,
    );
    // The headline deployment config gated by scripts/ci.sh: projection +
    // adaptive batch scheduling + adaptive parallel mining. Both adaptive
    // layers may legitimately degrade to serial (1-core host, small
    // projected logs) — the gate asserts they then cost no more than the
    // static chunked serial path.
    timed_batch(
        reps,
        || {
            solve_batch(
                &Projected(parallel.clone()),
                &log,
                &cars,
                SERVING_M,
                threads,
            )
        },
        "stealing/projected/parallel-mine",
        &mut results,
    );

    (params, results)
}

/// Workloads of the scaling grid: label, query-log size, batch width.
/// Spaced ~4× apart so the grid brackets the serial/parallel crossover
/// on multi-core hosts.
pub const GRID_WORKLOADS: [(&str, usize, usize); 3] =
    [("small", 150, 8), ("medium", 600, 24), ("large", 1_800, 64)];

/// Thread axis of the scaling grid.
pub const GRID_THREADS: [usize; 3] = [1, 2, 4];

/// Repetitions per grid cell; each cell keeps the **minimum** across
/// repetitions — the standard noise rejection for short timings (any
/// positive error inflates a measurement, none deflates it).
const GRID_REPS: usize = 5;

/// One cell of the threads × workload scaling grid, timing the projected
/// serving batch under all three [`BatchPolicy`] settings.
#[derive(Clone, Debug)]
pub struct GridCell {
    /// Workload label (`small` / `medium` / `large`).
    pub workload: &'static str,
    /// Query-log size of the workload.
    pub num_queries: usize,
    /// Batch width (cars served).
    pub cars: usize,
    /// Worker threads offered to the scheduler.
    pub threads: usize,
    /// Min-of-reps batch time with [`BatchPolicy::ForceSerial`] (inline,
    /// zero threads spawned).
    pub serial_ms: f64,
    /// Min-of-reps batch time with [`BatchPolicy::Adaptive`] (the
    /// production default: the cost model picks inline or pool).
    pub adaptive_ms: f64,
    /// Min-of-reps batch time with [`BatchPolicy::ForcePool`] (always
    /// spawns the stealing pool).
    pub pool_ms: f64,
}

/// The measured serial/parallel crossover: the smallest workload (and
/// the thread count) at which the forced pool path beats inline serial.
#[derive(Clone, Debug)]
pub struct Crossover {
    /// Thread count of the winning cell.
    pub threads: usize,
    /// Workload label of the winning cell.
    pub workload: String,
    /// Query-log size of the winning cell.
    pub num_queries: usize,
}

/// Runs the threads × workload scaling grid on the projected serving
/// path. Row-major over [`GRID_WORKLOADS`] then [`GRID_THREADS`].
pub fn run_scaling_grid(scale: Scale) -> Vec<GridCell> {
    let num_attrs = 32;
    let solver = Projected(MfiSolver::default());
    let mut cells = Vec::new();
    for &(workload, num_queries, num_cars) in &GRID_WORKLOADS {
        let (log, sampled) = synthetic_setup(scale, num_queries, num_attrs);
        // Widen the batch by cycling the sampled cars: batch width is the
        // parallelism axis the pool schedules over, so the grid must
        // scale it independently of `scale.cars()`.
        let cars: Vec<Tuple> = (0..num_cars)
            .map(|i| sampled[i % sampled.len()].clone())
            .collect();
        for &threads in &GRID_THREADS {
            let time = |policy: BatchPolicy| {
                let mut best = f64::INFINITY;
                let mut satisfied = 0usize;
                for _ in 0..GRID_REPS {
                    let (t, batch) = measure(|| {
                        solve_batch_with(&solver, &log, &cars, SERVING_M, threads, policy)
                    });
                    best = best.min(t.as_secs_f64() * 1e3);
                    satisfied = batch.iter().map(|s| s.satisfied).sum();
                }
                (best, satisfied)
            };
            let (serial_ms, sat_serial) = time(BatchPolicy::ForceSerial);
            let (adaptive_ms, sat_adaptive) = time(BatchPolicy::Adaptive);
            let (pool_ms, sat_pool) = time(BatchPolicy::ForcePool);
            assert_eq!(
                sat_serial, sat_adaptive,
                "{workload}/{threads}t: adaptive objective drifted"
            );
            assert_eq!(
                sat_serial, sat_pool,
                "{workload}/{threads}t: pool objective drifted"
            );
            cells.push(GridCell {
                workload,
                num_queries,
                cars: cars.len(),
                threads,
                serial_ms,
                adaptive_ms,
                pool_ms,
            });
        }
    }
    cells
}

/// A cell only counts as crossed when the pool beats serial by more
/// than this factor. Two timings of identical work routinely land a few
/// percent apart on a shared host; a "win" inside that band is jitter,
/// and declaring a crossover from it would flip the recorded point from
/// run to run.
const CROSSOVER_MARGIN: f64 = 1.05;

/// The measured crossover of a grid: scanning workloads small → large
/// and threads ascending, the first multi-thread cell where the forced
/// pool path beats inline serial by more than [`CROSSOVER_MARGIN`].
/// `None` when parallelism never pays — the honest answer on a
/// single-hardware-thread host, where the adaptive policy's job is to
/// *stay serial*.
pub fn scaling_crossover(grid: &[GridCell]) -> Option<Crossover> {
    for &(workload, num_queries, _) in &GRID_WORKLOADS {
        for cell in grid
            .iter()
            .filter(|c| c.workload == workload && c.threads > 1)
        {
            if cell.pool_ms * CROSSOVER_MARGIN <= cell.serial_ms {
                return Some(Crossover {
                    threads: cell.threads,
                    workload: workload.to_string(),
                    num_queries,
                });
            }
        }
    }
    None
}

/// The `figures serving` experiment: runs [`run_serving`], writes
/// `BENCH_serving.json` into the current directory, and returns the
/// human-readable table.
pub fn batch_serving(scale: Scale) -> Table {
    let (params, results) = run_serving(scale);
    let grid = run_scaling_grid(scale);
    let baseline = results
        .iter()
        .find(|r| r.name == "chunked/full/serial-mine")
        .expect("baseline config always runs")
        .mean;

    let mut table = Table::new(
        "Batch serving — scheduler × instance × mining (MaxFreqItemSets)",
        "config",
        vec![
            "mean ms".into(),
            "speedup vs PR1 baseline".into(),
            "total satisfied".into(),
        ],
    );
    for r in &results {
        table.push_row(
            r.name.clone(),
            vec![
                Cell::Time(r.mean),
                Cell::Value(baseline.as_secs_f64() / r.mean.as_secs_f64().max(1e-12)),
                r.total_satisfied
                    .map_or(Cell::Missing, |s| Cell::Value(s as f64)),
            ],
        );
    }
    table.note(format!(
        "{} queries × {} attributes, batch of {} cars, m = {}, {} threads, {} reps; \
         baseline = chunked/full/serial-mine (the PR 1 static path); prime rows time \
         mining only",
        params.num_queries, params.num_attrs, params.cars, params.m, params.threads, params.reps
    ));
    table.note(
        "totals are asserted stable across reps per config; full-universe and \
         projected totals can differ when the walk's iteration budget misses \
         maximal itemsets in the wide universe — projection shrinks the search \
         space and improves recall at the same budget",
    );
    match scaling_crossover(&grid) {
        Some(c) => table.note(format!(
            "scaling grid ({} cells, min of {GRID_REPS} reps): pool first beats inline \
             serial at the {} workload ({} queries) with {} threads — see \
             BENCH_serving.json \"grid\"",
            grid.len(),
            c.workload,
            c.num_queries,
            c.threads
        )),
        None => table.note(format!(
            "scaling grid ({} cells, min of {GRID_REPS} reps): the pool never beat \
             inline serial on this host — expected with {} hardware thread(s); the \
             adaptive policy stays serial — see BENCH_serving.json \"grid\"",
            grid.len(),
            std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
        )),
    }

    let json = serving_json(&params, &results, &grid, scale);
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => table.note("wrote BENCH_serving.json"),
        Err(e) => table.note(format!("could not write BENCH_serving.json: {e}")),
    }
    table
}

/// Renders the machine-readable artifact through the shared
/// [`crate::json`] emitter. Besides the flat `configs` array this
/// artifact carries the `grid` array (one inline object per scaling-grid
/// cell) and the measured `crossover` (object, or `null` when
/// parallelism never paid on the measuring host).
pub fn serving_json(
    params: &ServingParams,
    results: &[ServingResult],
    grid: &[GridCell],
    scale: Scale,
) -> String {
    let baseline = results
        .iter()
        .find(|r| r.name == "chunked/full/serial-mine")
        .map_or(Duration::ZERO, |r| r.mean);
    let mut json = BenchJson::new("batch_serving", scale)
        .raw_field("num_queries", params.num_queries.to_string())
        .raw_field("num_attrs", params.num_attrs.to_string())
        .raw_field("cars", params.cars.to_string())
        .raw_field("m", params.m.to_string())
        .raw_field("threads", params.threads.to_string())
        .raw_field("reps", params.reps.to_string())
        .str_field("baseline", "chunked/full/serial-mine");
    let rows: Vec<String> = grid
        .iter()
        .map(|c| {
            InlineObject::new()
                .str("workload", c.workload)
                .raw("num_queries", c.num_queries.to_string())
                .raw("cars", c.cars.to_string())
                .raw("threads", c.threads.to_string())
                .raw("serial_ms", format!("{:.3}", c.serial_ms))
                .raw("adaptive_ms", format!("{:.3}", c.adaptive_ms))
                .raw("pool_ms", format!("{:.3}", c.pool_ms))
                .raw(
                    "adaptive_vs_serial",
                    format!("{:.3}", c.serial_ms / c.adaptive_ms.max(1e-9)),
                )
                .raw(
                    "pool_vs_serial",
                    format!("{:.3}", c.serial_ms / c.pool_ms.max(1e-9)),
                )
                .render_inline()
        })
        .collect();
    json = json.raw_field(
        "grid",
        if rows.is_empty() {
            "[]".to_string()
        } else {
            format!("[\n    {}\n  ]", rows.join(",\n    "))
        },
    );
    json = match scaling_crossover(grid) {
        Some(c) => json.raw_field(
            "crossover",
            InlineObject::new()
                .raw("threads", c.threads.to_string())
                .str("workload", &c.workload)
                .raw("num_queries", c.num_queries.to_string())
                .render_inline(),
        ),
        None => json.raw_field("crossover", "null").str_field(
            "crossover_note",
            "forced pool never beat inline serial on the measuring host; \
             the adaptive policy degrades to serial below the crossover",
        ),
    };
    for r in results {
        let ms = r.mean.as_secs_f64() * 1e3;
        let speedup = baseline.as_secs_f64() / r.mean.as_secs_f64().max(1e-12);
        json = json.config(
            InlineObject::new()
                .str("name", &r.name)
                .raw("mean_ms", format!("{ms:.3}"))
                .raw("speedup_vs_baseline", format!("{speedup:.3}"))
                .raw(
                    "total_satisfied",
                    r.total_satisfied
                        .map_or("null".to_string(), |s| s.to_string()),
                ),
        );
    }
    json.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let params = ServingParams {
            num_queries: 10,
            num_attrs: 6,
            cars: 2,
            m: 3,
            threads: 4,
            reps: 1,
        };
        let results = vec![
            ServingResult {
                name: "chunked/full/serial-mine".into(),
                mean: Duration::from_millis(20),
                total_satisfied: Some(7),
            },
            ServingResult {
                name: "prime/full/serial-mine".into(),
                mean: Duration::from_millis(10),
                total_satisfied: None,
            },
        ];
        let grid = vec![
            GridCell {
                workload: "small",
                num_queries: 150,
                cars: 8,
                threads: 1,
                serial_ms: 2.0,
                adaptive_ms: 2.1,
                pool_ms: 4.0,
            },
            GridCell {
                workload: "large",
                num_queries: 1_800,
                cars: 64,
                threads: 4,
                serial_ms: 40.0,
                adaptive_ms: 20.0,
                pool_ms: 20.0,
            },
        ];
        let json = serving_json(&params, &results, &grid, Scale::Quick);
        assert!(json.contains("\"experiment\": \"batch_serving\""));
        assert!(json.contains("\"mean_ms\": 20.000"));
        assert!(json.contains("\"speedup_vs_baseline\": 2.000"));
        assert!(json.contains("\"total_satisfied\": null"));
        assert!(json.contains("\"total_satisfied\": 7"));
        // The grid rows and the measured crossover (the large cell is the
        // first where the forced pool beats inline serial).
        assert!(json.contains("\"grid\": [\n"));
        assert!(json.contains("\"pool_vs_serial\": 0.500"));
        assert!(json.contains(
            "\"crossover\": {\"threads\": 4, \"workload\": \"large\", \"num_queries\": 1800}"
        ));
        // A grid that never crosses records the honest null.
        let no_cross = serving_json(&params, &results, &grid[..1], Scale::Quick);
        assert!(no_cross.contains("\"crossover\": null"));
        assert!(no_cross.contains("\"crossover_note\""));
        // Balanced braces/brackets — enough of a well-formedness check
        // for a schema with no nested strings.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.trim_end().ends_with('}'));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    #[ignore = "release-mode smoke bench; run via scripts/ci.sh"]
    fn smoke_stealing_does_not_lose_to_static_chunking() {
        // Regression guard for the parallelism-loses-to-serial finding
        // (BENCH_serving.json once recorded stealing/full at 1.0× and
        // stealing+parallel-mine at 0.70× of the static baseline):
        // instance batching in `solve_batch` amortises per-task pool
        // overhead, so the stealing scheduler must now stay within noise
        // of — or beat — the chunked split at the default scale, and the
        // parallel-mine config must no longer trail by 30%.
        let (_, results) = run_serving(Scale::Quick);
        let mean = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("config {name} missing"))
                .mean
                .as_secs_f64()
        };
        let chunked = mean("chunked/full/serial-mine");
        let stealing = mean("stealing/full/serial-mine");
        let parallel = mean("stealing/full/parallel-mine");
        assert!(
            stealing <= chunked * 1.15,
            "stealing {:.1} ms vs chunked {:.1} ms — pool overhead regressed",
            stealing * 1e3,
            chunked * 1e3
        );
        assert!(
            parallel <= chunked * 1.30,
            "parallel-mine {:.1} ms vs chunked {:.1} ms — mining overhead regressed",
            parallel * 1e3,
            chunked * 1e3
        );
    }

    #[test]
    #[ignore = "release-mode smoke bench; run via scripts/ci.sh"]
    fn smoke_parallelism_pays_at_the_largest_workload() {
        // The PR 8 perf gate. Two assertions, both retried once (like the
        // hybrid index smoke) because single timings on shared runners
        // routinely jitter a few percent:
        //
        // 1. headline config — `stealing/projected/parallel-mine` (both
        //    adaptive layers on) must not lose to the static serial
        //    baseline `chunked/projected/serial-mine` at the grid's
        //    largest workload, interleaved min-of-7 reps per side
        //    (≥ 1.0×, where the retry widens to ≥ 0.95× for jitter);
        // 2. grid contract — in every cell at or below the measured
        //    crossover, the adaptive policy must stay within 10% of
        //    forced inline serial (25% on the retry, same widening the
        //    index smoke applies): adapting must never cost what forcing
        //    the pool costs.
        let (_, num_queries, num_cars) = GRID_WORKLOADS[GRID_WORKLOADS.len() - 1];
        let (log, sampled) = synthetic_setup(Scale::Quick, num_queries, 32);
        let cars: Vec<Tuple> = (0..num_cars)
            .map(|i| sampled[i % sampled.len()].clone())
            .collect();
        let threads = pool_threads();
        let serial_solver = MfiSolver::default();
        let parallel_solver = MfiSolver {
            workers: threads,
            ..Default::default()
        };
        let run_serial = || {
            solve_batch_chunked(
                &Projected(serial_solver.clone()),
                &log,
                &cars,
                SERVING_M,
                threads,
            )
        };
        let run_adaptive = || {
            solve_batch(
                &Projected(parallel_solver.clone()),
                &log,
                &cars,
                SERVING_M,
                threads,
            )
        };

        let mut failure = String::new();
        for attempt in 0..2 {
            // Interleaved min-of-7: the headline compares two
            // near-identical costs, so the mean-of-few used by the table
            // rows is too noisy here. The minimum rejects every positive
            // timing error, and alternating the two sides rep by rep
            // exposes both to the same load drift instead of letting a
            // slow phase land entirely on one side.
            let (mut serial, mut adaptive) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..7 {
                serial = serial.min(measure(&run_serial).0.as_secs_f64() * 1e3);
                adaptive = adaptive.min(measure(&run_adaptive).0.as_secs_f64() * 1e3);
            }
            let headline = serial / adaptive.max(1e-9);

            let grid = run_scaling_grid(Scale::Quick);
            let crossover = scaling_crossover(&grid);
            // Cells "below the crossover": where the forced pool loses to
            // serial — exactly where the adaptive policy must not follow
            // it. (With no crossover, that is every cell.)
            let worst_adaptive = grid
                .iter()
                .filter(|c| c.pool_ms > c.serial_ms)
                .map(|c| c.adaptive_ms / c.serial_ms.max(1e-9))
                .fold(0.0f64, f64::max);

            // The retry widens both bounds the same way the index smoke
            // does: on this class of shared box two timings of identical
            // machine code routinely land several percent apart, and the
            // regression this gate exists to catch (parallel machinery as
            // pure overhead) measured 30% before the adaptive rebuild.
            let (head_floor, adapt_ceil) = if attempt == 0 {
                (1.0, 1.10)
            } else {
                (0.93, 1.25)
            };
            failure = format!(
                "attempt {attempt}: headline {headline:.3}× (need ≥{head_floor}), worst \
                 adaptive/serial below crossover {worst_adaptive:.3} (need ≤{adapt_ceil}), \
                 crossover {crossover:?}"
            );
            eprintln!("{failure}");
            if headline >= head_floor && worst_adaptive <= adapt_ceil {
                return;
            }
        }
        panic!("parallelism perf gate failed twice; last {failure}");
    }

    #[test]
    fn all_batch_configs_agree_on_the_objective() {
        // Tiny end-to-end run: every batch configuration must report the
        // same total satisfied weight (MaxFreqItemSets is exact, and
        // projection preserves the objective).
        let (log, cars) = synthetic_setup(Scale::Quick, 120, 16);
        let cars = &cars[..3.min(cars.len())];
        let serial = MfiSolver::default();
        let shared = SharedMfi::new(serial.clone());
        let full: usize = solve_batch(&shared, &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        let projected: usize = solve_batch(&Projected(serial.clone()), &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        let chunked: usize = solve_batch_chunked(&Projected(serial), &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        assert_eq!(full, projected);
        assert_eq!(projected, chunked);
    }
}
