//! Batch-serving experiment: the deployment shape introduced in PR 2.
//!
//! One synthetic workload, a stream of new cars, MaxFreqItemSets as the
//! exact solver. The experiment crosses the three axes that PR 2 added:
//!
//! - **scheduler** — static chunking ([`soc_core::solve_batch_chunked`],
//!   the PR 1 baseline) vs the work-stealing pool
//!   ([`soc_core::solve_batch`]);
//! - **instance** — solving in the full 32-attribute universe vs the
//!   per-tuple projection ([`soc_core::Projected`]), which shrinks the
//!   log to contained queries and the universe to `|t|`;
//! - **mining** — serial vs pool-parallel random-walk mining
//!   (`MfiSolver::workers`), measured head-on by timing a cold
//!   [`SharedMfi::prime`] on the full log.
//!
//! Besides the TSV table, [`batch_serving`] writes the machine-readable
//! `BENCH_serving.json` so perf can be tracked across PRs.

use std::time::Duration;

use soc_core::{solve_batch, solve_batch_chunked, MfiSolver, Projected, SharedMfi, Solution};

use crate::figs::synthetic_setup;
use crate::harness::{measure, Cell, Scale, Table};
use crate::json::{BenchJson, InlineObject};

/// Attribute budget used throughout the experiment (the paper's default
/// sweep midpoint).
pub const SERVING_M: usize = 5;

/// One measured configuration.
#[derive(Clone, Debug)]
pub struct ServingResult {
    /// Configuration label, `scheduler/instance/mining`.
    pub name: String,
    /// Mean wall-clock per batch (or per prime) across repetitions.
    pub mean: Duration,
    /// Total satisfied weight across the batch — the exactness checksum.
    /// `None` for mining-only rows, which produce no solutions.
    pub total_satisfied: Option<usize>,
}

/// Parameters of a serving run, recorded in the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct ServingParams {
    /// Query-log size.
    pub num_queries: usize,
    /// Universe width.
    pub num_attrs: usize,
    /// Batch size (cars served).
    pub cars: usize,
    /// Attribute budget.
    pub m: usize,
    /// Worker threads for the pool and for parallel mining.
    pub threads: usize,
    /// Repetitions averaged per configuration.
    pub reps: usize,
}

/// Worker-thread count: the host parallelism, floored at 2 so the
/// stealing scheduler and the parallel miner are genuinely exercised
/// even on single-core CI hosts (where those axes measure pure overhead
/// and any speedup comes from projection alone).
pub(crate) fn pool_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZero::get)
        .max(2)
}

fn timed_batch(
    reps: usize,
    run: impl Fn() -> Vec<Solution>,
    name: &str,
    results: &mut Vec<ServingResult>,
) {
    let mut total = Duration::ZERO;
    let mut satisfied = 0;
    for rep in 0..reps {
        let (t, batch) = measure(&run);
        total += t;
        let sum: usize = batch.iter().map(|s| s.satisfied).sum();
        if rep == 0 {
            satisfied = sum;
        } else {
            assert_eq!(sum, satisfied, "{name}: objective drifted across reps");
        }
    }
    results.push(ServingResult {
        name: name.to_string(),
        mean: total / reps as u32,
        total_satisfied: Some(satisfied),
    });
}

/// Runs every serving configuration and returns the per-config results
/// plus the parameters used. Shared by the table/JSON front-end below
/// and by tests.
pub fn run_serving(scale: Scale) -> (ServingParams, Vec<ServingResult>) {
    let (num_queries, reps) = match scale {
        Scale::Quick => (800, 2),
        Scale::Full => (2_000, 5),
    };
    let num_attrs = 32;
    let (log, cars) = synthetic_setup(scale, num_queries, num_attrs);
    let threads = pool_threads();
    let params = ServingParams {
        num_queries,
        num_attrs,
        cars: cars.len(),
        m: SERVING_M,
        threads,
        reps,
    };

    let serial = MfiSolver::default();
    let parallel = MfiSolver {
        workers: threads,
        ..Default::default()
    };
    let mut results = Vec::new();

    // Mining axis, head-on: one cold prime of the shared cache on the
    // full log, serial vs pool-parallel walks. A fresh cache every rep so
    // each rep pays the full mine.
    for (name, solver) in [
        ("prime/full/serial-mine", serial.clone()),
        ("prime/full/parallel-mine", parallel.clone()),
    ] {
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let shared = SharedMfi::new(solver.clone());
            let (t, ()) = measure(|| shared.prime(&log));
            total += t;
        }
        results.push(ServingResult {
            name: name.to_string(),
            mean: total / reps as u32,
            total_satisfied: None,
        });
    }

    // Scheduler axis on the full universe. A fresh SharedMfi per rep:
    // the first instance mines cold, the rest hit the cache — the
    // realistic cost profile of serving a batch against a new log.
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(serial.clone());
            solve_batch_chunked(&shared, &log, &cars, SERVING_M, threads)
        },
        "chunked/full/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(serial.clone());
            solve_batch(&shared, &log, &cars, SERVING_M, threads)
        },
        "stealing/full/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || {
            let shared = SharedMfi::new(parallel.clone());
            solve_batch(&shared, &log, &cars, SERVING_M, threads)
        },
        "stealing/full/parallel-mine",
        &mut results,
    );

    // Instance axis: per-tuple projection. Each instance mines its own
    // compact log (universe |t| instead of 32, contained queries only),
    // so there is no cross-tuple cache to share — and none is needed.
    timed_batch(
        reps,
        || solve_batch_chunked(&Projected(serial.clone()), &log, &cars, SERVING_M, threads),
        "chunked/projected/serial-mine",
        &mut results,
    );
    timed_batch(
        reps,
        || solve_batch(&Projected(serial.clone()), &log, &cars, SERVING_M, threads),
        "stealing/projected/serial-mine",
        &mut results,
    );

    (params, results)
}

/// The `figures serving` experiment: runs [`run_serving`], writes
/// `BENCH_serving.json` into the current directory, and returns the
/// human-readable table.
pub fn batch_serving(scale: Scale) -> Table {
    let (params, results) = run_serving(scale);
    let baseline = results
        .iter()
        .find(|r| r.name == "chunked/full/serial-mine")
        .expect("baseline config always runs")
        .mean;

    let mut table = Table::new(
        "Batch serving — scheduler × instance × mining (MaxFreqItemSets)",
        "config",
        vec![
            "mean ms".into(),
            "speedup vs PR1 baseline".into(),
            "total satisfied".into(),
        ],
    );
    for r in &results {
        table.push_row(
            r.name.clone(),
            vec![
                Cell::Time(r.mean),
                Cell::Value(baseline.as_secs_f64() / r.mean.as_secs_f64().max(1e-12)),
                r.total_satisfied
                    .map_or(Cell::Missing, |s| Cell::Value(s as f64)),
            ],
        );
    }
    table.note(format!(
        "{} queries × {} attributes, batch of {} cars, m = {}, {} threads, {} reps; \
         baseline = chunked/full/serial-mine (the PR 1 static path); prime rows time \
         mining only",
        params.num_queries, params.num_attrs, params.cars, params.m, params.threads, params.reps
    ));
    table.note(
        "totals are asserted stable across reps per config; full-universe and \
         projected totals can differ when the walk's iteration budget misses \
         maximal itemsets in the wide universe — projection shrinks the search \
         space and improves recall at the same budget",
    );

    let json = serving_json(&params, &results, scale);
    match std::fs::write("BENCH_serving.json", &json) {
        Ok(()) => table.note("wrote BENCH_serving.json"),
        Err(e) => table.note(format!("could not write BENCH_serving.json: {e}")),
    }
    table
}

/// Renders the machine-readable artifact through the shared
/// [`crate::json`] emitter.
pub fn serving_json(params: &ServingParams, results: &[ServingResult], scale: Scale) -> String {
    let baseline = results
        .iter()
        .find(|r| r.name == "chunked/full/serial-mine")
        .map_or(Duration::ZERO, |r| r.mean);
    let mut json = BenchJson::new("batch_serving", scale)
        .raw_field("num_queries", params.num_queries.to_string())
        .raw_field("num_attrs", params.num_attrs.to_string())
        .raw_field("cars", params.cars.to_string())
        .raw_field("m", params.m.to_string())
        .raw_field("threads", params.threads.to_string())
        .raw_field("reps", params.reps.to_string())
        .str_field("baseline", "chunked/full/serial-mine");
    for r in results {
        let ms = r.mean.as_secs_f64() * 1e3;
        let speedup = baseline.as_secs_f64() / r.mean.as_secs_f64().max(1e-12);
        json = json.config(
            InlineObject::new()
                .str("name", &r.name)
                .raw("mean_ms", format!("{ms:.3}"))
                .raw("speedup_vs_baseline", format!("{speedup:.3}"))
                .raw(
                    "total_satisfied",
                    r.total_satisfied
                        .map_or("null".to_string(), |s| s.to_string()),
                ),
        );
    }
    json.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let params = ServingParams {
            num_queries: 10,
            num_attrs: 6,
            cars: 2,
            m: 3,
            threads: 4,
            reps: 1,
        };
        let results = vec![
            ServingResult {
                name: "chunked/full/serial-mine".into(),
                mean: Duration::from_millis(20),
                total_satisfied: Some(7),
            },
            ServingResult {
                name: "prime/full/serial-mine".into(),
                mean: Duration::from_millis(10),
                total_satisfied: None,
            },
        ];
        let json = serving_json(&params, &results, Scale::Quick);
        assert!(json.contains("\"experiment\": \"batch_serving\""));
        assert!(json.contains("\"mean_ms\": 20.000"));
        assert!(json.contains("\"speedup_vs_baseline\": 2.000"));
        assert!(json.contains("\"total_satisfied\": null"));
        assert!(json.contains("\"total_satisfied\": 7"));
        // Balanced braces/brackets — enough of a well-formedness check
        // for a schema with no nested strings.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(json.trim_end().ends_with('}'));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    #[ignore = "release-mode smoke bench; run via scripts/ci.sh"]
    fn smoke_stealing_does_not_lose_to_static_chunking() {
        // Regression guard for the parallelism-loses-to-serial finding
        // (BENCH_serving.json once recorded stealing/full at 1.0× and
        // stealing+parallel-mine at 0.70× of the static baseline):
        // instance batching in `solve_batch` amortises per-task pool
        // overhead, so the stealing scheduler must now stay within noise
        // of — or beat — the chunked split at the default scale, and the
        // parallel-mine config must no longer trail by 30%.
        let (_, results) = run_serving(Scale::Quick);
        let mean = |name: &str| {
            results
                .iter()
                .find(|r| r.name == name)
                .unwrap_or_else(|| panic!("config {name} missing"))
                .mean
                .as_secs_f64()
        };
        let chunked = mean("chunked/full/serial-mine");
        let stealing = mean("stealing/full/serial-mine");
        let parallel = mean("stealing/full/parallel-mine");
        assert!(
            stealing <= chunked * 1.15,
            "stealing {:.1} ms vs chunked {:.1} ms — pool overhead regressed",
            stealing * 1e3,
            chunked * 1e3
        );
        assert!(
            parallel <= chunked * 1.30,
            "parallel-mine {:.1} ms vs chunked {:.1} ms — mining overhead regressed",
            parallel * 1e3,
            chunked * 1e3
        );
    }

    #[test]
    fn all_batch_configs_agree_on_the_objective() {
        // Tiny end-to-end run: every batch configuration must report the
        // same total satisfied weight (MaxFreqItemSets is exact, and
        // projection preserves the objective).
        let (log, cars) = synthetic_setup(Scale::Quick, 120, 16);
        let cars = &cars[..3.min(cars.len())];
        let serial = MfiSolver::default();
        let shared = SharedMfi::new(serial.clone());
        let full: usize = solve_batch(&shared, &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        let projected: usize = solve_batch(&Projected(serial.clone()), &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        let chunked: usize = solve_batch_chunked(&Projected(serial), &log, cars, 4, 2)
            .iter()
            .map(|s| s.satisfied)
            .sum();
        assert_eq!(full, projected);
        assert_eq!(projected, chunked);
    }
}
