//! Ablation experiments for the design choices the paper argues for in
//! §IV.C: walk direction, threshold strategy, stopping rule, the
//! level-wise (Apriori) infeasibility on dense complements, and the value
//! of preprocessing.

use soc_core::{MfiPreprocessed, MfiSolver, SocAlgorithm, SocInstance};
use soc_itemsets::{
    apriori, bottom_up_walk, top_down_walk, AprioriLimits, AprioriOutcome, ComplementedLog,
    MfiConfig, MfiMiner, StopRule, ThresholdStrategy, TransactionSet, WalkDirection,
};
use soc_rng::StdRng;

use crate::figs::real_setup;
use crate::harness::{measure, Accumulator, Cell, Scale, Table};

/// Walk-direction ablation: lattice levels traversed and wall-clock,
/// top-down vs bottom-up, across workloads of different density. The
/// paper's argument (§IV.C) is strongest when queries are short relative
/// to M, so the complement is very dense and the maximal itemsets sit
/// near the top of the lattice — the sparse synthetic workload shows
/// that; the real-like workload (longer queries) shows where the
/// advantage shrinks.
pub fn walk_direction(scale: Scale) -> Table {
    let walks = match scale {
        Scale::Quick => 50,
        Scale::Full => 300,
    };
    let (real, _) = real_setup(scale);
    let sparse = soc_workload::generate_synthetic_workload(&soc_workload::SyntheticConfig {
        num_queries: real.len(),
        num_attrs: 48,
        ..Default::default()
    });
    let mut table = Table::new(
        "Ablation — random-walk direction on the dense complement ~Q",
        "workload/threshold",
        vec![
            "TopDown levels/walk".into(),
            "BottomUp levels/walk".into(),
            "TopDown ms".into(),
            "BottomUp ms".into(),
        ],
    );
    table.note(format!(
        "{walks} walks per cell; §IV.C: top-down walks stay near the top \
         of the lattice — clearest when queries are short relative to M \
         (the sparse rows)"
    ));
    for (name, log) in [("real", &real), ("sparse", &sparse)] {
        let oracle = ComplementedLog::new(log);
        for threshold in [2, 10, 40] {
            let mut rng = StdRng::seed_from_u64(1);
            let mut td_levels = 0usize;
            let (td_time, _) = measure(|| {
                for _ in 0..walks {
                    let (_, s) = top_down_walk(&oracle, threshold, &mut rng);
                    td_levels += s.total_steps();
                }
            });
            let mut bu_levels = 0usize;
            let (bu_time, _) = measure(|| {
                for _ in 0..walks {
                    let (_, s) = bottom_up_walk(&oracle, threshold, &mut rng);
                    bu_levels += s.total_steps();
                }
            });
            table.push_row(
                format!("{name}/r={threshold}"),
                vec![
                    Cell::Value(td_levels as f64 / walks as f64),
                    Cell::Value(bu_levels as f64 / walks as f64),
                    Cell::Time(td_time),
                    Cell::Time(bu_time),
                ],
            );
        }
    }
    table
}

/// Threshold-strategy ablation: solve quality and time for fixed
/// percentages vs adaptive halving vs exact (r = 1), on the real-like
/// workload at m = 6.
pub fn threshold_strategies(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    let m = 6;
    let strategies: Vec<(&str, ThresholdStrategy)> = vec![
        ("Fixed 1%", ThresholdStrategy::Fraction(0.01)),
        ("Fixed 5%", ThresholdStrategy::Fraction(0.05)),
        (
            "Adaptive",
            ThresholdStrategy::AdaptiveHalving { initial: None },
        ),
        ("Exact r=1", ThresholdStrategy::Exact),
    ];
    let mut table = Table::new(
        "Ablation — threshold strategies (real-like workload, m = 6)",
        "strategy",
        vec!["mean satisfied".into(), "mean ms".into()],
    );
    table.note("fixed thresholds may miss the optimum when it satisfies fewer queries than r");
    for (name, strategy) in strategies {
        let solver = MfiSolver {
            threshold: strategy,
            ..Default::default()
        };
        let mut acc = Accumulator::default();
        for car in &cars {
            let inst = SocInstance::new(&log, car, m);
            let (t, sol) = measure(|| solver.solve(&inst));
            acc.add(t, sol.satisfied as f64);
        }
        table.push_row(
            name,
            vec![Cell::Value(acc.mean_value()), Cell::Time(acc.mean_time())],
        );
    }
    table
}

/// Stopping-rule ablation: MFI recall and work for fixed iteration
/// budgets vs the Good–Turing seen-twice rule, on the complemented
/// real-like log.
pub fn stopping_rule(scale: Scale) -> Table {
    // A 30-query real-like log keeps the deterministic ground truth
    // tractable (the full complement has hundreds of thousands of MFIs —
    // itself a confirmation of the paper's density argument).
    let log = soc_workload::generate_real_workload(&soc_workload::RealWorkloadConfig {
        num_queries: 30,
        ..Default::default()
    });
    let oracle = ComplementedLog::new(&log);
    let threshold = match scale {
        Scale::Quick => 15,
        Scale::Full => 7,
    };
    // Deterministic backtracking supplies the ground-truth MFI set (it is
    // provably complete when it finishes within budget).
    let truth = soc_itemsets::backtracking_mfi(
        &oracle,
        threshold,
        &soc_itemsets::BacktrackLimits::default(),
    );
    let mut configs: Vec<(String, StopRule, usize)> =
        vec![("SeenTwice".into(), StopRule::SeenTwice, 10_000)];
    for n in [8, 16, 32, 64, 128, 256, 512] {
        configs.push((format!("Fixed {n}"), StopRule::FixedIterations(n), n));
    }
    let mut runs = Vec::new();
    let reference: std::collections::HashSet<soc_data::AttrSet> =
        truth.itemsets().iter().map(|f| f.items.clone()).collect();
    for (name, stop, max) in &configs {
        let miner = MfiMiner::new(MfiConfig {
            threshold,
            max_iterations: (*max).max(10_000),
            min_iterations: 1,
            direction: WalkDirection::TopDown,
            stop: *stop,
        });
        let mut rng = StdRng::seed_from_u64(9);
        let (t, result) = measure(|| miner.mine(&oracle, &mut rng));
        runs.push((name.clone(), t, result));
    }
    let mut table = Table::new(
        format!("Ablation — stopping rule (complemented real-like log, r = {threshold})"),
        "rule",
        vec![
            "walks".into(),
            "MFIs found".into(),
            "recall %".into(),
            "unseen-mass est.".into(),
            "ms".into(),
        ],
    );
    table.note(format!(
        "recall vs deterministic backtracking ground truth of {} MFIs \
         (complete: {}); the seen-twice rule adapts its budget",
        reference.len(),
        truth.is_complete()
    ));
    for (name, t, result) in runs {
        let hits = result
            .itemsets
            .iter()
            .filter(|f| reference.contains(&f.items))
            .count();
        table.push_row(
            name,
            vec![
                Cell::Value(result.iterations as f64),
                Cell::Value(result.itemsets.len() as f64),
                Cell::Value(100.0 * hits as f64 / reference.len().max(1) as f64),
                Cell::Value(result.unseen_mass_estimate()),
                Cell::Time(t),
            ],
        );
    }
    table
}

/// Apriori-infeasibility ablation (§IV.C's motivating argument): run
/// level-wise mining on the materialized dense complement with a
/// candidate guard and report how far it gets, vs the random-walk miner.
pub fn apriori_explosion(scale: Scale) -> Table {
    let (log, _) = real_setup(scale);
    let dense = TransactionSet::complement_of_log(&log);
    let oracle = ComplementedLog::new(&log);
    let budget = 50_000;
    let mut table = Table::new(
        "Ablation — level-wise mining on the dense complement ~Q",
        "threshold",
        vec![
            "Apriori outcome".into(),
            "Apriori level reached".into(),
            "Apriori ms".into(),
            "RandomWalk MFIs".into(),
            "RandomWalk ms".into(),
        ],
    );
    table.note(format!(
        "Apriori candidate budget {budget}; outcome 1 = complete, 0 = explosion"
    ));
    for threshold in [90, 30] {
        let (ap_time, outcome) = measure(|| {
            apriori(
                &dense,
                threshold,
                &AprioriLimits {
                    max_level: usize::MAX,
                    max_candidates: budget,
                },
            )
        });
        let (level, complete) = match &outcome {
            AprioriOutcome::Complete(items) => (
                items.iter().map(|f| f.items.count()).max().unwrap_or(0),
                1.0,
            ),
            AprioriOutcome::CandidateExplosion { level, .. } => (*level, 0.0),
            AprioriOutcome::LevelCapped(_) => unreachable!("no level cap set"),
        };
        let miner = MfiMiner::new(MfiConfig {
            threshold,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let (walk_time, result) = measure(|| miner.mine(&oracle, &mut rng));
        table.push_row(
            threshold,
            vec![
                Cell::Value(complete),
                Cell::Value(level as f64),
                Cell::Time(ap_time),
                Cell::Value(result.itemsets.len() as f64),
                Cell::Time(walk_time),
            ],
        );
        let _ = scale;
    }
    table
}

/// Preprocessing ablation: cold solve (mining per tuple) vs warm solve
/// (shared preprocessed itemsets) — the paper's "0.015 seconds for any m"
/// observation.
pub fn preprocessing(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    let solver = MfiSolver::default();
    let mut table = Table::new(
        "Ablation — MaxFreqItemSets preprocessing (real-like workload)",
        "m",
        vec!["cold ms".into(), "warm ms".into(), "speedup ×".into()],
    );
    table.note("warm reuses the tuple-independent maximal itemsets across all cars");
    for m in [4, 6, 8, 10] {
        let mut cold = Accumulator::default();
        for car in &cars {
            let inst = SocInstance::new(&log, car, m);
            let (t, _) = measure(|| solver.solve(&inst));
            cold.add(t, 0.0);
        }
        let mut pre = MfiPreprocessed::default();
        // Prime the cache with the first car, then measure the rest warm.
        if let Some(first) = cars.first() {
            let inst = SocInstance::new(&log, first, m);
            let _ = solver.solve_preprocessed(&mut pre, &inst);
        }
        let mut warm = Accumulator::default();
        for car in &cars {
            let inst = SocInstance::new(&log, car, m);
            let (t, _) = measure(|| solver.solve_preprocessed(&mut pre, &inst));
            warm.add(t, 0.0);
        }
        let speedup = cold.mean_time().as_secs_f64() / warm.mean_time().as_secs_f64().max(1e-9);
        table.push_row(
            m,
            vec![
                Cell::Time(cold.mean_time()),
                Cell::Time(warm.mean_time()),
                Cell::Value(speedup),
            ],
        );
    }
    table
}

/// Greedy-vs-exact quality on the disjunctive variant is covered by unit
/// tests; this ablation records how close the conjunctive greedies get to
/// optimal across budgets (companion numbers for Fig 7's qualitative
/// claim).
pub fn greedy_gap(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    let mfi = MfiSolver::default();
    let mut pre = MfiPreprocessed::default();
    let greedies: Vec<Box<dyn SocAlgorithm>> = vec![
        Box::new(soc_core::ConsumeAttr),
        Box::new(soc_core::ConsumeAttrCumul),
        Box::new(soc_core::ConsumeQueries),
    ];
    let mut table = Table::new(
        "Ablation — greedy optimality gap (fraction of optimum, real-like workload)",
        "m",
        greedies.iter().map(|g| g.name().to_string()).collect(),
    );
    for m in [4, 5, 6, 7, 8, 10] {
        let mut opt_sum = 0usize;
        let mut sums = vec![0usize; greedies.len()];
        for car in &cars {
            let inst = SocInstance::new(&log, car, m);
            opt_sum += mfi.solve_preprocessed(&mut pre, &inst).satisfied;
            for (i, g) in greedies.iter().enumerate() {
                sums[i] += g.solve(&inst).satisfied;
            }
        }
        table.push_row(
            m,
            sums.iter()
                .map(|&s| Cell::Value(s as f64 / opt_sum.max(1) as f64))
                .collect(),
        );
    }
    table
}

/// Deduplication ablation: solve time and objective on a duplicate-heavy
/// raw log vs its weighted deduplication (objectives must be identical).
pub fn deduplication(scale: Scale) -> Table {
    let (distinct, cars) = real_setup(scale);
    // Zipf-ish repetition: popular query shapes recur often.
    let mut raw_queries = Vec::new();
    let mut raw_weights = Vec::new();
    for (i, q) in distinct.queries().iter().enumerate() {
        let repeats = 1 + 400 / (i + 1);
        for _ in 0..repeats {
            raw_queries.push(q.clone());
            raw_weights.push(1);
        }
    }
    let raw = soc_data::QueryLog::new_weighted(
        std::sync::Arc::clone(distinct.schema()),
        raw_queries,
        raw_weights,
    );
    let dedup = raw.deduplicate();
    let m = 6;
    let mut table = Table::new(
        format!(
            "Ablation — query-log deduplication ({} raw → {} distinct queries, m = {m})",
            raw.len(),
            dedup.len()
        ),
        "algorithm",
        vec![
            "raw ms".into(),
            "dedup ms".into(),
            "speedup ×".into(),
            "objectives equal".into(),
        ],
    );
    let algos: Vec<Box<dyn SocAlgorithm>> = vec![
        Box::new(MfiSolver::default()),
        Box::new(soc_core::IlpSolver::default()),
        Box::new(soc_core::ConsumeAttr),
        Box::new(soc_core::ConsumeQueries),
    ];
    let reps = cars.len().min(10);
    for algo in algos {
        let mut raw_acc = Accumulator::default();
        let mut dedup_acc = Accumulator::default();
        let mut equal = true;
        for car in &cars[..reps] {
            let raw_inst = SocInstance::new(&raw, car, m);
            let (t, a) = measure(|| algo.solve(&raw_inst));
            raw_acc.add(t, a.satisfied as f64);
            let dedup_inst = SocInstance::new(&dedup, car, m);
            let (t, b) = measure(|| algo.solve(&dedup_inst));
            dedup_acc.add(t, b.satisfied as f64);
            if algo.is_exact() && a.satisfied != b.satisfied {
                equal = false;
            }
        }
        let speedup =
            raw_acc.mean_time().as_secs_f64() / dedup_acc.mean_time().as_secs_f64().max(1e-9);
        table.push_row(
            algo.name(),
            vec![
                Cell::Time(raw_acc.mean_time()),
                Cell::Time(dedup_acc.mean_time()),
                Cell::Value(speedup),
                Cell::Value(f64::from(u8::from(equal))),
            ],
        );
    }
    table.note("exact algorithms must report identical objectives on both logs");
    table
}

/// Miner ablation: the paper's random walk vs deterministic backtracking
/// enumeration, mining the complemented real-like log across thresholds.
pub fn miner_comparison(scale: Scale) -> Table {
    // Sized so the deterministic enumeration completes: 100 synthetic
    // queries over 16 attributes (see DESIGN.md; the full real-like
    // complement has ~10^5 maximal itemsets).
    let log = soc_workload::generate_synthetic_workload(&soc_workload::SyntheticConfig {
        num_queries: 100,
        num_attrs: 16,
        ..Default::default()
    });
    let mut table = Table::new(
        "Ablation — MFI miner: random walk (paper) vs backtracking (deterministic)",
        "threshold",
        vec![
            "walk MFIs".into(),
            "walk ms".into(),
            "backtrack MFIs".into(),
            "backtrack ms".into(),
            "walk recall %".into(),
        ],
    );
    table.note("backtracking is provably complete; recall shows what the walk found of it");
    let walk = MfiSolver::default();
    let back = MfiSolver::deterministic();
    let thresholds: &[usize] = match scale {
        Scale::Quick => &[50, 25],
        Scale::Full => &[50, 25, 12, 6],
    };
    for &r in thresholds {
        let (wt, wres) = measure(|| walk.mine(&log, r));
        let (bt, bres) = measure(|| back.mine(&log, r));
        let complete: std::collections::HashSet<_> = bres.iter().map(|f| f.items.clone()).collect();
        let hit = wres.iter().filter(|f| complete.contains(&f.items)).count();
        table.push_row(
            r,
            vec![
                Cell::Value(wres.len() as f64),
                Cell::Time(wt),
                Cell::Value(bres.len() as f64),
                Cell::Time(bt),
                Cell::Value(100.0 * hit as f64 / complete.len().max(1) as f64),
            ],
        );
    }
    table
}

/// Log-drift experiment (extension; §VIII of the paper concedes that "a
/// query log is only an approximate surrogate of real user preferences").
/// Select attributes on a *history* half of the workload, evaluate on the
/// unseen *future* half, and compare against the hindsight optimum
/// computed directly on the future half.
pub fn log_drift(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    let m = 6;
    let mut table = Table::new(
        "Extension — generalization under log drift (train on history, evaluate on future, m = 6)",
        "history fraction",
        vec![
            "MaxFreqItemSets % of hindsight".into(),
            "ConsumeAttr % of hindsight".into(),
            "LocalSearch % of hindsight".into(),
        ],
    );
    table.note("future-half satisfied weight as % of the hindsight optimum, averaged over up to 30 cars and 3 splits");
    let mfi = MfiSolver::default();
    let attr = soc_core::ConsumeAttr;
    let local = soc_core::LocalSearch::default();
    let cars = &cars[..cars.len().min(30)];
    for fraction in [0.25, 0.5, 0.75] {
        let mut sums = [0usize; 3];
        let mut hindsight_sum = 0usize;
        for split_seed in 0..3u64 {
            let (history, future) = soc_workload::split_log(&log, fraction, split_seed);
            let mut pre = MfiPreprocessed::default();
            let mut future_pre = MfiPreprocessed::default();
            for car in cars {
                let train = SocInstance::new(&history, car, m);
                let evaluate = |sol: &soc_core::Solution| {
                    future.satisfied_count(&soc_data::Tuple::new(sol.retained.clone()))
                };
                sums[0] += evaluate(&mfi.solve_preprocessed(&mut pre, &train));
                sums[1] += evaluate(&attr.solve(&train));
                sums[2] += evaluate(&local.solve(&train));
                // Hindsight: the optimum computed directly on the future.
                let test_inst = SocInstance::new(&future, car, m);
                hindsight_sum += mfi
                    .solve_preprocessed(&mut future_pre, &test_inst)
                    .satisfied;
            }
        }
        table.push_row(
            format!("{fraction}"),
            sums.iter()
                .map(|&s| Cell::Value(100.0 * s as f64 / hindsight_sum.max(1) as f64))
                .collect(),
        );
    }
    table
}
