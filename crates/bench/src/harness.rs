//! Shared experiment harness: timing, series tables, and TSV output.

use std::time::{Duration, Instant};

/// A results table: one labelled row per x-value, one column per series.
/// Printed as TSV so results can be piped straight into a plotting tool.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment title (e.g. `"Fig 6 — execution time vs m"`).
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Series (column) names.
    pub series: Vec<String>,
    /// Rows: x value and one cell per series.
    pub rows: Vec<(String, Vec<Cell>)>,
    /// Free-form notes printed under the table.
    pub notes: Vec<String>,
}

/// A table cell.
#[derive(Clone, Copy, Debug)]
pub enum Cell {
    /// Wall-clock duration (printed in milliseconds).
    Time(Duration),
    /// A count or average.
    Value(f64),
    /// Not measured (e.g. ILP beyond 1000 queries — Fig 10's missing
    /// points).
    Missing,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>, series: Vec<String>) -> Self {
        Self {
            title: title.into(),
            x_label: x_label.into(),
            series,
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the cell count does not match the series count.
    pub fn push_row(&mut self, x: impl ToString, cells: Vec<Cell>) {
        assert_eq!(cells.len(), self.series.len(), "row arity mismatch");
        self.rows.push((x.to_string(), cells));
    }

    /// Adds a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as TSV with a `#` comment header.
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.title));
        out.push_str(&self.x_label);
        for s in &self.series {
            out.push('\t');
            out.push_str(s);
        }
        out.push('\n');
        for (x, cells) in &self.rows {
            out.push_str(x);
            for c in cells {
                out.push('\t');
                match c {
                    Cell::Time(d) => out.push_str(&format!("{:.3}", d.as_secs_f64() * 1e3)),
                    Cell::Value(v) => out.push_str(&format!("{v:.3}")),
                    Cell::Missing => out.push('-'),
                }
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out
    }
}

/// Times a closure.
pub fn measure<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let t0 = Instant::now();
    let v = f();
    (t0.elapsed(), v)
}

/// Accumulates durations and values across repetitions.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    total_time: Duration,
    total_value: f64,
    n: u32,
}

impl Accumulator {
    /// Records one repetition.
    pub fn add(&mut self, time: Duration, value: f64) {
        self.total_time += time;
        self.total_value += value;
        self.n += 1;
    }

    /// Mean duration.
    pub fn mean_time(&self) -> Duration {
        if self.n == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.n
        }
    }

    /// Mean value.
    pub fn mean_value(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.total_value / f64::from(self.n)
        }
    }
}

/// Experiment scale: `Quick` for smoke runs (CI / laptops), `Full` for
/// paper-comparable sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Few repetitions, truncated sweeps.
    Quick,
    /// Paper-comparable averages (100 cars where the paper uses 100).
    Full,
}

impl Scale {
    /// Number of to-be-advertised cars to average over (paper: 100).
    pub fn cars(self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Full => 100,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsv_rendering() {
        let mut t = Table::new("Demo", "m", vec!["a".into(), "b".into()]);
        t.push_row(3, vec![Cell::Value(1.5), Cell::Missing]);
        t.push_row(
            4,
            vec![Cell::Time(Duration::from_millis(12)), Cell::Value(2.0)],
        );
        t.note("note");
        let tsv = t.to_tsv();
        assert!(tsv.contains("# Demo"));
        assert!(tsv.contains("m\ta\tb"));
        assert!(tsv.contains("3\t1.500\t-"));
        assert!(tsv.contains("4\t12.000\t2.000"));
        assert!(tsv.ends_with("# note\n"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", "x", vec!["a".into()]);
        t.push_row(1, vec![]);
    }

    #[test]
    fn accumulator_means() {
        let mut a = Accumulator::default();
        a.add(Duration::from_millis(10), 2.0);
        a.add(Duration::from_millis(30), 4.0);
        assert_eq!(a.mean_time(), Duration::from_millis(20));
        assert!((a.mean_value() - 3.0).abs() < 1e-12);
    }
}
