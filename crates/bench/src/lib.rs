//! # soc-bench
//!
//! Benchmark harness for the `standout` workspace: regenerates every
//! figure of the ICDE 2008 evaluation (§VII) plus ablations for the
//! design choices of §IV.C. See the `figures` binary for the CLI and
//! EXPERIMENTS.md for paper-vs-measured results.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod figs;
pub mod harness;
pub mod ilp;
pub mod index;
pub mod json;
pub mod obs;
pub mod serving;
