//! Index-kernel experiment at serving scale: the hybrid sparse/dense
//! `LogIndex` vs a forced dense-only build vs the naive scans, across
//! the three counting kernels on 10⁵–10⁶-query logs.
//!
//! Two workload shapes bracket the design space:
//!
//! - **skewed** — 64 attributes with Zipf popularity (exponent 2.5), the
//!   shape the hybrid containers target: a handful of dense head rows
//!   and a long, genuinely sparse tail, so most operand sets mix
//!   container types;
//! - **uniform** — 32 attributes, uniform popularity (the paper's §VII
//!   setting): every row sits above the density threshold, so the
//!   hybrid build degenerates to the dense layout and must stay within
//!   noise of it.
//!
//! Every (kernel, implementation) cell is timed as min-of-reps over the
//! same probe batch and cross-checked: all three implementations must
//! return identical counts. Besides the TSV table, [`index_kernels`]
//! writes the machine-readable `BENCH_index.json`.

use std::time::Duration;

use soc_data::{AttrSet, LogIndex, Tuple};
use soc_rng::StdRng;

use crate::harness::{measure, Cell, Scale, Table};
use crate::json::{BenchJson, InlineObject};

/// Parameters of an index run, recorded in the JSON artifact.
#[derive(Clone, Copy, Debug)]
pub struct IndexParams {
    /// Query-log size `S`.
    pub num_queries: usize,
    /// Probe operands timed per (kernel, implementation) cell.
    pub probes: usize,
    /// Repetitions per cell; the minimum is reported.
    pub reps: usize,
}

/// Build-time statistics for one workload.
#[derive(Clone, Debug)]
pub struct IndexWorkloadStats {
    /// Workload label (`skewed` or `uniform`).
    pub name: String,
    /// Universe width `M`.
    pub num_attrs: usize,
    /// Zipf popularity exponent (0 = uniform).
    pub skew: f64,
    /// Rows the hybrid build stored as sorted id lists.
    pub sparse_rows: usize,
    /// Row-storage bytes of the hybrid build.
    pub hybrid_bytes: usize,
    /// Row-storage bytes of the dense-only build.
    pub dense_bytes: usize,
    /// Hybrid build wall-clock.
    pub hybrid_build: Duration,
    /// Dense-only build wall-clock.
    pub dense_build: Duration,
}

/// One measured cell.
#[derive(Clone, Debug)]
pub struct IndexResult {
    /// Workload label.
    pub workload: String,
    /// Kernel label (`satisfied`, `cooccurrence`, `complement`).
    pub kernel: String,
    /// Implementation label (`hybrid`, `dense`, `scan`).
    pub impl_name: String,
    /// Per-call microseconds, min-of-reps.
    pub mean_us: f64,
    /// Sum of counts over the probe batch — the exactness checksum,
    /// asserted identical across implementations.
    pub checksum: usize,
}

struct WorkloadSpec {
    name: &'static str,
    num_attrs: usize,
    skew: f64,
}

const WORKLOADS: [WorkloadSpec; 2] = [
    WorkloadSpec {
        name: "skewed",
        num_attrs: 64,
        skew: 2.5,
    },
    WorkloadSpec {
        name: "uniform",
        num_attrs: 32,
        skew: 0.0,
    },
];

/// Times the three implementations of one kernel with an untimed warmup
/// round and *interleaved* reps — frequency drift and cache churn then
/// hit every implementation alike instead of biasing whichever ran
/// last. Returns min-of-reps wall-clock and the count checksum per
/// implementation.
fn time_impls(reps: usize, runs: &[&dyn Fn() -> usize]) -> Vec<(Duration, usize)> {
    let mut bests = vec![Duration::MAX; runs.len()];
    let mut checksums = vec![0usize; runs.len()];
    for (j, run) in runs.iter().enumerate() {
        let (_, sum) = measure(run);
        checksums[j] = sum;
    }
    for _ in 0..reps {
        for (j, run) in runs.iter().enumerate() {
            let (t, sum) = measure(run);
            assert_eq!(sum, checksums[j], "count drifted across reps");
            bests[j] = bests[j].min(t);
        }
    }
    bests.into_iter().zip(checksums).collect()
}

/// Runs the full experiment and returns parameters, per-workload build
/// statistics, and per-cell results. Shared by the table/JSON front-end
/// and the CI smoke tests.
pub fn run_index(scale: Scale) -> (IndexParams, Vec<IndexWorkloadStats>, Vec<IndexResult>) {
    let num_queries = match scale {
        Scale::Quick => 100_000,
        Scale::Full => 1_000_000,
    };
    let params = IndexParams {
        num_queries,
        probes: 16,
        reps: 5,
    };
    let mut stats = Vec::new();
    let mut results = Vec::new();

    for spec in &WORKLOADS {
        let log = soc_workload::generate_synthetic_workload(&soc_workload::SyntheticConfig {
            num_queries,
            num_attrs: spec.num_attrs,
            popularity_skew: spec.skew,
            seed: 0x1DE8,
            ..Default::default()
        });
        let (hybrid_build, hybrid) = measure(|| LogIndex::build(&log));
        let (dense_build, dense) = measure(|| LogIndex::build_dense(&log));
        stats.push(IndexWorkloadStats {
            name: spec.name.to_string(),
            num_attrs: spec.num_attrs,
            skew: spec.skew,
            sparse_rows: hybrid.sparse_rows(),
            hybrid_bytes: hybrid.row_bytes(),
            dense_bytes: dense.row_bytes(),
            hybrid_build,
            dense_build,
        });

        // Probe operands, shaped like real kernel traffic: conjunctive
        // sets of 2–4 attributes drawn uniformly over the universe (on
        // the skewed log most draws land in the sparse tail, exactly as
        // real operand sets would), and tuples at the widths the solvers
        // probe — budget-sized candidate subsets (m ≈ 5–10), which
        // dominate satisfied_count traffic during greedy and
        // branch-and-bound search; full-width tuples occur once per
        // solve for reporting and would not change the mix.
        let mut rng = StdRng::seed_from_u64(0xCAFE + spec.num_attrs as u64);
        let sets: Vec<AttrSet> = (0..params.probes)
            .map(|_| {
                let k = rng.random_range(2..=4);
                let mut s = AttrSet::empty(spec.num_attrs);
                while s.count() < k {
                    s.insert(rng.random_range(0..spec.num_attrs));
                }
                s
            })
            .collect();
        let tuples: Vec<Tuple> = (0..params.probes)
            .map(|i| {
                let width = [5, 8, 10][i % 3];
                let mut s = AttrSet::empty(spec.num_attrs);
                while s.count() < width {
                    s.insert(rng.random_range(0..spec.num_attrs));
                }
                Tuple::new(s)
            })
            .collect();

        type Kernel<'a> = Box<dyn Fn() -> usize + 'a>;
        let batch = |f: &dyn Fn(&AttrSet) -> usize| -> usize { sets.iter().map(f).sum::<usize>() };
        let tuple_batch =
            |f: &dyn Fn(&Tuple) -> usize| -> usize { tuples.iter().map(f).sum::<usize>() };
        let kernels: Vec<(&str, Kernel, Kernel, Kernel)> = vec![
            (
                "satisfied",
                Box::new(|| tuple_batch(&|t| hybrid.satisfied_count(t))),
                Box::new(|| tuple_batch(&|t| dense.satisfied_count(t))),
                Box::new(|| tuple_batch(&|t| log.satisfied_count_scan(t))),
            ),
            (
                "cooccurrence",
                Box::new(|| batch(&|s| hybrid.cooccurrence_count(s))),
                Box::new(|| batch(&|s| dense.cooccurrence_count(s))),
                Box::new(|| batch(&|s| log.cooccurrence_count_scan(s))),
            ),
            (
                "complement",
                Box::new(|| batch(&|s| hybrid.complement_support(s))),
                Box::new(|| batch(&|s| dense.complement_support(s))),
                Box::new(|| batch(&|s| log.complement_support_scan(s))),
            ),
        ];
        for (kernel, hybrid_run, dense_run, scan_run) in &kernels {
            let timed = time_impls(params.reps, &[&**hybrid_run, &**dense_run, &**scan_run]);
            let checksums: Vec<usize> = timed.iter().map(|&(_, c)| c).collect();
            for (impl_name, (best, checksum)) in ["hybrid", "dense", "scan"].iter().zip(&timed) {
                results.push(IndexResult {
                    workload: spec.name.to_string(),
                    kernel: (*kernel).to_string(),
                    impl_name: impl_name.to_string(),
                    mean_us: best.as_secs_f64() * 1e6 / params.probes as f64,
                    checksum: *checksum,
                });
            }
            assert!(
                checksums.windows(2).all(|w| w[0] == w[1]),
                "{}/{kernel}: implementations disagree: {checksums:?}",
                spec.name
            );
        }
    }
    (params, stats, results)
}

/// Sums per-call time across the three kernels for one (workload,
/// implementation) pair — the headline aggregate the smoke tests guard.
pub fn total_us(results: &[IndexResult], workload: &str, impl_name: &str) -> f64 {
    results
        .iter()
        .filter(|r| r.workload == workload && r.impl_name == impl_name)
        .map(|r| r.mean_us)
        .sum()
}

/// The `figures index` experiment: runs [`run_index`], writes
/// `BENCH_index.json` into the current directory, and returns the
/// human-readable table.
pub fn index_kernels(scale: Scale) -> Table {
    let (params, stats, results) = run_index(scale);
    let mut table = Table::new(
        "Counting kernels at scale — hybrid vs dense-only LogIndex vs naive scan",
        "workload/kernel",
        vec![
            "scan µs/call".into(),
            "dense µs/call".into(),
            "hybrid µs/call".into(),
            "hybrid vs dense ×".into(),
            "hybrid vs scan ×".into(),
        ],
    );
    table.note(format!(
        "S = {} queries, {} probes per cell, min of {} reps; counts asserted \
         identical across implementations",
        params.num_queries, params.probes, params.reps
    ));
    for s in &stats {
        table.note(format!(
            "{}: M = {}, zipf = {}, {} of {} rows sparse; rows {} KiB hybrid vs \
             {} KiB dense; build {:.1} ms hybrid vs {:.1} ms dense",
            s.name,
            s.num_attrs,
            s.skew,
            s.sparse_rows,
            s.num_attrs,
            s.hybrid_bytes / 1024,
            s.dense_bytes / 1024,
            s.hybrid_build.as_secs_f64() * 1e3,
            s.dense_build.as_secs_f64() * 1e3,
        ));
    }
    let cell = |workload: &str, kernel: &str, impl_name: &str| -> f64 {
        results
            .iter()
            .find(|r| r.workload == workload && r.kernel == kernel && r.impl_name == impl_name)
            .expect("every cell is measured")
            .mean_us
    };
    for spec in &WORKLOADS {
        for kernel in ["satisfied", "cooccurrence", "complement"] {
            let scan = cell(spec.name, kernel, "scan");
            let dense = cell(spec.name, kernel, "dense");
            let hybrid = cell(spec.name, kernel, "hybrid");
            table.push_row(
                format!("{}/{kernel}", spec.name),
                vec![
                    Cell::Value(scan),
                    Cell::Value(dense),
                    Cell::Value(hybrid),
                    Cell::Value(dense / hybrid.max(1e-9)),
                    Cell::Value(scan / hybrid.max(1e-9)),
                ],
            );
        }
    }

    let json = index_json(&params, &stats, &results, scale);
    match std::fs::write("BENCH_index.json", &json) {
        Ok(()) => table.note("wrote BENCH_index.json"),
        Err(e) => table.note(format!("could not write BENCH_index.json: {e}")),
    }
    table
}

/// Renders the machine-readable artifact through the shared
/// [`crate::json`] emitter.
pub fn index_json(
    params: &IndexParams,
    stats: &[IndexWorkloadStats],
    results: &[IndexResult],
    scale: Scale,
) -> String {
    let mut json = BenchJson::new("index_kernels", scale)
        .raw_field("num_queries", params.num_queries.to_string())
        .raw_field("probes", params.probes.to_string())
        .raw_field("reps", params.reps.to_string())
        .str_field("baseline", "dense");
    for s in stats {
        json = json.config(
            InlineObject::new()
                .str("name", &format!("{}/build", s.name))
                .raw("num_attrs", s.num_attrs.to_string())
                .raw("zipf", format!("{:.2}", s.skew))
                .raw("sparse_rows", s.sparse_rows.to_string())
                .raw("hybrid_bytes", s.hybrid_bytes.to_string())
                .raw("dense_bytes", s.dense_bytes.to_string())
                .raw(
                    "hybrid_build_ms",
                    format!("{:.3}", s.hybrid_build.as_secs_f64() * 1e3),
                )
                .raw(
                    "dense_build_ms",
                    format!("{:.3}", s.dense_build.as_secs_f64() * 1e3),
                ),
        );
    }
    for r in results {
        let dense = results
            .iter()
            .find(|d| d.workload == r.workload && d.kernel == r.kernel && d.impl_name == "dense")
            .map_or(0.0, |d| d.mean_us);
        json = json.config(
            InlineObject::new()
                .str(
                    "name",
                    &format!("{}/{}/{}", r.workload, r.kernel, r.impl_name),
                )
                .raw("mean_us", format!("{:.3}", r.mean_us))
                .raw(
                    "speedup_vs_dense",
                    format!("{:.3}", dense / r.mean_us.max(1e-9)),
                )
                .raw("checksum", r.checksum.to_string()),
        );
    }
    json.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_well_formed_and_flat() {
        let params = IndexParams {
            num_queries: 100,
            probes: 2,
            reps: 1,
        };
        let stats = vec![IndexWorkloadStats {
            name: "skewed".into(),
            num_attrs: 64,
            skew: 1.2,
            sparse_rows: 50,
            hybrid_bytes: 1000,
            dense_bytes: 4000,
            hybrid_build: Duration::from_millis(3),
            dense_build: Duration::from_millis(2),
        }];
        let results = vec![
            IndexResult {
                workload: "skewed".into(),
                kernel: "satisfied".into(),
                impl_name: "dense".into(),
                mean_us: 10.0,
                checksum: 42,
            },
            IndexResult {
                workload: "skewed".into(),
                kernel: "satisfied".into(),
                impl_name: "hybrid".into(),
                mean_us: 4.0,
                checksum: 42,
            },
        ];
        let json = index_json(&params, &stats, &results, Scale::Quick);
        assert!(json.contains("\"experiment\": \"index_kernels\""));
        assert!(json.contains("\"name\": \"skewed/build\""));
        assert!(json.contains("\"sparse_rows\": 50"));
        assert!(json.contains("\"name\": \"skewed/satisfied/hybrid\""));
        assert!(json.contains("\"speedup_vs_dense\": 2.500"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert!(!json.contains(",\n  ]"));
    }

    #[test]
    fn total_us_sums_one_implementation() {
        let mk = |kernel: &str, impl_name: &str, us: f64| IndexResult {
            workload: "skewed".into(),
            kernel: kernel.into(),
            impl_name: impl_name.into(),
            mean_us: us,
            checksum: 0,
        };
        let results = vec![
            mk("satisfied", "hybrid", 1.0),
            mk("cooccurrence", "hybrid", 2.0),
            mk("satisfied", "dense", 10.0),
        ];
        assert!((total_us(&results, "skewed", "hybrid") - 3.0).abs() < 1e-9);
        assert!((total_us(&results, "skewed", "dense") - 10.0).abs() < 1e-9);
        assert_eq!(total_us(&results, "uniform", "hybrid"), 0.0);
    }

    #[test]
    #[ignore = "release-mode smoke bench; run via scripts/ci.sh"]
    fn smoke_hybrid_index_beats_dense() {
        // The acceptance gate: on the Zipf-skewed 10⁵-query ×
        // 64-attribute log the hybrid containers must at least halve the
        // satisfied_count kernel time of the dense-only build and win
        // clearly in aggregate, and on the uniform log (where the hybrid
        // build degenerates to the dense layout) they must stay within
        // noise of dense.  Typical ratios on a quiet machine are ≈2.2–2.8×
        // (satisfied), ≈2.0–2.5× (aggregate), and 0.9–1.1× (uniform); the
        // thresholds below leave headroom for shared-runner jitter, and a
        // failed attempt is retried once before the test fails.
        let mut failure = String::new();
        for attempt in 0..2 {
            let (_, stats, results) = run_index(Scale::Quick);
            let skewed = stats.iter().find(|s| s.name == "skewed").unwrap();
            assert!(
                skewed.sparse_rows > 0,
                "skewed log must produce sparse rows"
            );
            assert!(
                skewed.hybrid_bytes < skewed.dense_bytes,
                "hybrid rows must be smaller on the skewed log"
            );
            let us = |workload, imp, kernel: &str| {
                results
                    .iter()
                    .filter(|r| r.workload == workload && r.impl_name == imp)
                    .filter(|r| kernel.is_empty() || r.kernel == kernel)
                    .map(|r| r.mean_us)
                    .sum::<f64>()
            };
            let sat = us("skewed", "dense", "satisfied") / us("skewed", "hybrid", "satisfied");
            let agg = us("skewed", "dense", "") / us("skewed", "hybrid", "");
            let uni = us("uniform", "hybrid", "") / us("uniform", "dense", "");
            // The uniform gate is the ISSUE's 10% bound on the first try;
            // the retry widens it to 25% because on this class of shared
            // box two timings of *identical* machine code routinely land
            // 10–15% apart.
            let uni_tol = if attempt == 0 { 1.10 } else { 1.25 };
            failure = format!(
                "attempt {attempt}: skewed satisfied {sat:.2}× (need ≥2.0), \
                 aggregate {agg:.2}× (need ≥1.7), uniform hybrid/dense {uni:.2} (need ≤{uni_tol})"
            );
            eprintln!("{failure}");
            if sat >= 2.0 && agg >= 1.7 && uni <= uni_tol {
                return;
            }
        }
        panic!("hybrid index smoke failed twice; last {failure}");
    }
}
