//! The six figures of the paper's evaluation (§VII), regenerated.
//!
//! Absolute numbers will differ from the paper (different hardware,
//! different ILP solver, synthetic stand-ins for the Yahoo!/UTA data);
//! the *shapes* are the reproduction target — who wins, by what factor,
//! and where the crossovers fall. See EXPERIMENTS.md.

use std::time::Duration;

use soc_core::{
    ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, IlpSolver, MfiPreprocessed, MfiSolver,
    SocAlgorithm, SocInstance,
};
use soc_data::{QueryLog, Tuple};
use soc_workload::{
    generate_cars, generate_real_workload, generate_synthetic_workload, sample_new_cars,
    CarsConfig, RealWorkloadConfig, SyntheticConfig,
};

use crate::harness::{measure, Accumulator, Cell, Scale, Table};

/// The m sweep used by Figs 6–9.
pub const M_SWEEP: [usize; 8] = [3, 4, 5, 6, 7, 8, 9, 10];

/// Builds the real-like workload (185 queries, 32 attributes) and the
/// to-be-advertised cars.
pub fn real_setup(scale: Scale) -> (QueryLog, Vec<Tuple>) {
    let log = generate_real_workload(&RealWorkloadConfig::default());
    let dataset = generate_cars(&CarsConfig {
        num_cars: 2_000,
        seed: 42,
    });
    let cars = sample_new_cars(&dataset, scale.cars(), 7);
    (log, cars)
}

/// Builds a synthetic workload of `num_queries` over `num_attrs`.
pub fn synthetic_setup(
    scale: Scale,
    num_queries: usize,
    num_attrs: usize,
) -> (QueryLog, Vec<Tuple>) {
    let log = generate_synthetic_workload(&SyntheticConfig {
        num_queries,
        num_attrs,
        ..Default::default()
    });
    let dataset = generate_cars(&CarsConfig {
        num_cars: 2_000,
        seed: 42,
    });
    // Project cars onto the first `num_attrs` positions (cyclically for
    // universes wider than 32 so wide tuples stay realistic).
    let cars = sample_new_cars(&dataset, scale.cars(), 7)
        .into_iter()
        .map(|t| {
            let src = t.attrs();
            let indices = (0..num_attrs).filter(|&j| src.contains(j % 32));
            Tuple::new(soc_data::AttrSet::from_indices(num_attrs, indices))
        })
        .collect();
    (log, cars)
}

fn greedy_algorithms() -> Vec<Box<dyn SocAlgorithm>> {
    vec![
        Box::new(ConsumeAttr),
        Box::new(ConsumeAttrCumul),
        Box::new(ConsumeQueries),
    ]
}

/// The paper-verbatim ILP (no query pruning — §IV.B builds a `y_i` for
/// every query). Used for fidelity in the figures; the pruned variant is
/// reported alongside as our engineering improvement.
fn ilp_verbatim() -> IlpSolver {
    IlpSolver::verbatim()
}

/// Shared engine for the time-vs-m experiments (Figs 6 and 8).
///
/// Cold MaxFreqItemSets repetitions (which redo the tuple-independent
/// preprocessing per car, as the paper's Fig 6 timings do) are capped at
/// `cold_cap` cars to keep full sweeps tractable.
fn time_vs_m(log: &QueryLog, cars: &[Tuple], include_ilp: bool, title: &str) -> Table {
    let cold_cap = cars.len().min(5);
    let mut series = Vec::new();
    if include_ilp {
        series.push("ILP".to_string());
        series.push("ILP(pruned)".to_string());
    }
    series.push("MaxFreqItemSets".to_string());
    series.push("MaxFreqItemSets(warm)".to_string());
    for g in greedy_algorithms() {
        series.push(g.name().to_string());
    }
    let mut table = Table::new(title, "m", series);
    table.note(format!(
        "{} queries × {} attributes; ILP/warm/greedy averaged over {} cars, \
         cold MaxFreqItemSets over {cold_cap}; ILP = paper-verbatim model, \
         ILP(pruned) drops never-satisfiable queries first; \
         MaxFreqItemSets(warm) excludes the tuple-independent preprocessing",
        log.len(),
        log.num_attrs(),
        cars.len()
    ));

    let verbatim = ilp_verbatim();
    let pruned = IlpSolver::default();
    let mfi = MfiSolver::default();
    let mut pre = MfiPreprocessed::default();
    for &m in &M_SWEEP {
        let mut cells = Vec::new();
        if include_ilp {
            for solver in [&verbatim, &pruned] {
                let mut acc = Accumulator::default();
                for car in cars {
                    let inst = SocInstance::new(log, car, m);
                    let (t, sol) = measure(|| solver.solve(&inst));
                    acc.add(t, sol.satisfied as f64);
                }
                cells.push(Cell::Time(acc.mean_time()));
            }
        }
        let mut cold = Accumulator::default();
        for car in &cars[..cold_cap] {
            let inst = SocInstance::new(log, car, m);
            let (t, sol) = measure(|| mfi.solve(&inst));
            cold.add(t, sol.satisfied as f64);
        }
        let mut warm = Accumulator::default();
        for car in cars {
            let inst = SocInstance::new(log, car, m);
            let (t, _) = measure(|| mfi.solve_preprocessed(&mut pre, &inst));
            warm.add(t, 0.0);
        }
        cells.push(Cell::Time(cold.mean_time()));
        cells.push(Cell::Time(warm.mean_time()));
        for g in greedy_algorithms() {
            let mut acc = Accumulator::default();
            for car in cars {
                let inst = SocInstance::new(log, car, m);
                let (t, _) = measure(|| g.solve(&inst));
                acc.add(t, 0.0);
            }
            cells.push(Cell::Time(acc.mean_time()));
        }
        table.push_row(m, cells);
    }
    table
}

/// Shared engine for the quality-vs-m experiments (Figs 7 and 9).
fn quality_vs_m(log: &QueryLog, cars: &[Tuple], title: &str) -> Table {
    let mut series = vec!["Optimal".to_string()];
    for g in greedy_algorithms() {
        series.push(g.name().to_string());
    }
    let mut table = Table::new(title, "m", series);
    table.note(format!(
        "satisfied queries averaged over {} cars; Optimal = MaxFreqItemSets",
        cars.len()
    ));
    let mfi = MfiSolver::default();
    let mut pre = MfiPreprocessed::default();
    for &m in &M_SWEEP {
        let mut cells = Vec::new();
        let mut acc = Accumulator::default();
        for car in cars {
            let inst = SocInstance::new(log, car, m);
            let sol = mfi.solve_preprocessed(&mut pre, &inst);
            acc.add(Duration::ZERO, sol.satisfied as f64);
        }
        cells.push(Cell::Value(acc.mean_value()));
        for g in greedy_algorithms() {
            let mut acc = Accumulator::default();
            for car in cars {
                let inst = SocInstance::new(log, car, m);
                acc.add(Duration::ZERO, g.solve(&inst).satisfied as f64);
            }
            cells.push(Cell::Value(acc.mean_value()));
        }
        table.push_row(m, cells);
    }
    table
}

/// Fig 6: execution times vs m, real workload.
pub fn fig6(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    time_vs_m(
        &log,
        &cars,
        true,
        "Fig 6 — execution time (ms) vs m, real-like workload (185 queries)",
    )
}

/// Fig 7: satisfied queries vs m, real workload.
pub fn fig7(scale: Scale) -> Table {
    let (log, cars) = real_setup(scale);
    quality_vs_m(
        &log,
        &cars,
        "Fig 7 — satisfied queries vs m, real-like workload (185 queries)",
    )
}

/// Fig 8: execution times vs m, synthetic workload of 2000 queries
/// (ILP omitted — "very slow for more than 1000 queries").
pub fn fig8(scale: Scale) -> Table {
    let (log, cars) = synthetic_setup(scale, 2000, 32);
    time_vs_m(
        &log,
        &cars,
        false,
        "Fig 8 — execution time (ms) vs m, synthetic workload (2000 queries)",
    )
}

/// Fig 9: satisfied queries vs m, synthetic workload of 2000 queries.
pub fn fig9(scale: Scale) -> Table {
    let (log, cars) = synthetic_setup(scale, 2000, 32);
    quality_vs_m(
        &log,
        &cars,
        "Fig 9 — satisfied queries vs m, synthetic workload (2000 queries)",
    )
}

/// Fig 10: execution time vs query-log size, m = 5. ILP is only run up to
/// 1000 queries (beyond that the paper reports it infeasible; we mark the
/// cells missing exactly as the paper's plot does).
pub fn fig10(scale: Scale) -> Table {
    let sizes: &[usize] = match scale {
        Scale::Quick => &[200, 600, 1000, 2000],
        Scale::Full => &[200, 400, 600, 800, 1000, 2000, 3000, 4000, 5000],
    };
    let m = 5;
    let mut series = vec![
        "ILP".to_string(),
        "MaxFreqItemSets".to_string(),
        "ConsumeAttr".to_string(),
        "ConsumeAttrCumul".to_string(),
        "ConsumeQueries".to_string(),
    ];
    let mut table = Table::new(
        "Fig 10 — execution time (ms) vs query-log size, synthetic workload, m = 5",
        "queries",
        std::mem::take(&mut series),
    );
    table.note(
        "ILP (paper-verbatim model) omitted beyond 1000 queries \
         (paper: 'very slow for more than 1000 queries'); ILP capped at 5 \
         cars beyond 600 queries, cold MaxFreqItemSets at 3 cars",
    );
    let ilp = ilp_verbatim();
    let mfi = MfiSolver::default();
    for &s in sizes {
        let (log, cars) = synthetic_setup(scale, s, 32);
        let mut cells = Vec::new();
        if s <= 1000 {
            let reps = if s > 600 {
                cars.len().min(5)
            } else {
                cars.len()
            };
            let mut acc = Accumulator::default();
            for car in &cars[..reps] {
                let inst = SocInstance::new(&log, car, m);
                let (t, _) = measure(|| ilp.solve(&inst));
                acc.add(t, 0.0);
            }
            cells.push(Cell::Time(acc.mean_time()));
        } else {
            cells.push(Cell::Missing);
        }
        let mut acc = Accumulator::default();
        for car in &cars[..cars.len().min(3)] {
            let inst = SocInstance::new(&log, car, m);
            let (t, _) = measure(|| mfi.solve(&inst));
            acc.add(t, 0.0);
        }
        cells.push(Cell::Time(acc.mean_time()));
        for g in greedy_algorithms() {
            let mut acc = Accumulator::default();
            for car in &cars {
                let inst = SocInstance::new(&log, car, m);
                let (t, _) = measure(|| g.solve(&inst));
                acc.add(t, 0.0);
            }
            cells.push(Cell::Time(acc.mean_time()));
        }
        table.push_row(s, cells);
    }
    table
}

/// Fig 11: execution time of the two optimal algorithms vs the number of
/// attributes M (200 queries, m = 5).
pub fn fig11(scale: Scale) -> Table {
    let widths: &[usize] = match scale {
        Scale::Quick => &[16, 32, 48],
        Scale::Full => &[16, 24, 32, 40, 48, 56, 64],
    };
    let m = 5;
    let mut table = Table::new(
        "Fig 11 — execution time (ms) vs number of attributes M, 200 queries, m = 5",
        "M",
        vec!["ILP".to_string(), "MaxFreqItemSets".to_string()],
    );
    table.note(
        "paper: ILP wins for wide-and-short logs, MaxFreqItemSets for \
         narrow-and-long; averaged over up to 20 cars (cold MFI timings)",
    );
    let ilp = ilp_verbatim();
    let mfi = MfiSolver::default();
    for &width in widths {
        let (log, cars) = synthetic_setup(scale, 200, width);
        let cars = &cars[..cars.len().min(20)];
        let mut ilp_acc = Accumulator::default();
        let mut mfi_acc = Accumulator::default();
        for car in cars {
            let inst = SocInstance::new(&log, car, m);
            let (t, a) = measure(|| ilp.solve(&inst));
            ilp_acc.add(t, a.satisfied as f64);
            let (t, b) = measure(|| mfi.solve(&inst));
            mfi_acc.add(t, b.satisfied as f64);
        }
        table.push_row(
            width,
            vec![
                Cell::Time(ilp_acc.mean_time()),
                Cell::Time(mfi_acc.mean_time()),
            ],
        );
    }
    table
}
