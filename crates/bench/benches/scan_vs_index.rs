//! Criterion microbenchmark for the inverted bitmap index: every
//! counting kernel of `QueryLog` against its retained naive-scan
//! baseline, across log sizes. The indexed kernels read the cached
//! `LogIndex` (primed outside the timing loop), so this measures steady
//! state — the regime every solver and figure harness runs in, since the
//! index is built once per log and amortized over thousands of counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::synthetic_setup;
use soc_bench::harness::Scale;
use soc_data::AttrSet;
use std::hint::black_box;

fn bench_scan_vs_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_vs_index");
    group.sample_size(20);

    for s in [1_000usize, 5_000, 20_000] {
        let (log, cars) = synthetic_setup(Scale::Quick, s, 32);
        let t = &cars[0];
        // A mid-sized conjunction: dense enough to exercise several AND
        // rows, sparse enough that the early exit does not trivialize it.
        let items = AttrSet::from_indices(32, [1, 4, 9]);
        log.index(); // prime the cache so indexed runs measure steady state

        group.bench_with_input(BenchmarkId::new("satisfied/scan", s), &s, |b, _| {
            b.iter(|| black_box(log.satisfied_count_scan(t)))
        });
        group.bench_with_input(BenchmarkId::new("satisfied/index", s), &s, |b, _| {
            b.iter(|| black_box(log.satisfied_count(t)))
        });

        group.bench_with_input(BenchmarkId::new("cooccurrence/scan", s), &s, |b, _| {
            b.iter(|| black_box(log.cooccurrence_count_scan(&items)))
        });
        group.bench_with_input(BenchmarkId::new("cooccurrence/index", s), &s, |b, _| {
            b.iter(|| black_box(log.cooccurrence_count(&items)))
        });

        group.bench_with_input(BenchmarkId::new("complement/scan", s), &s, |b, _| {
            b.iter(|| black_box(log.complement_support_scan(&items)))
        });
        group.bench_with_input(BenchmarkId::new("complement/index", s), &s, |b, _| {
            b.iter(|| black_box(log.complement_support(&items)))
        });

        group.bench_with_input(BenchmarkId::new("frequencies/scan", s), &s, |b, _| {
            b.iter(|| black_box(log.attribute_frequencies_scan()))
        });
        group.bench_with_input(BenchmarkId::new("frequencies/index", s), &s, |b, _| {
            b.iter(|| black_box(log.attribute_frequencies()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scan_vs_index);
criterion_main!(benches);
