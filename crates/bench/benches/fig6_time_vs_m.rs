//! Criterion bench for Fig 6: per-algorithm solve time on the real-like
//! workload (185 queries × 32 attributes) at representative budgets.
//! The full m-sweep lives in the `figures` binary; this bench gives
//! statistically rigorous timings at m ∈ {4, 7, 10}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::real_setup;
use soc_bench::harness::Scale;
use soc_core::{
    ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, IlpSolver, MfiPreprocessed, MfiSolver,
    SocAlgorithm, SocInstance,
};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let (log, cars) = real_setup(Scale::Quick);
    let car = &cars[0];
    let mut group = c.benchmark_group("fig6_real_workload");
    group.sample_size(10);

    for m in [4usize, 7, 10] {
        let inst = SocInstance::new(&log, car, m);

        let ilp = IlpSolver::verbatim();
        group.bench_with_input(BenchmarkId::new("ILP", m), &m, |b, _| {
            b.iter(|| black_box(ilp.solve(&inst)))
        });

        let pruned = IlpSolver::default();
        group.bench_with_input(BenchmarkId::new("ILP_pruned", m), &m, |b, _| {
            b.iter(|| black_box(pruned.solve(&inst)))
        });

        let mfi = MfiSolver::default();
        let mut pre = MfiPreprocessed::default();
        let _ = mfi.solve_preprocessed(&mut pre, &inst); // prime
        group.bench_with_input(BenchmarkId::new("MaxFreqItemSets_warm", m), &m, |b, _| {
            b.iter(|| black_box(mfi.solve_preprocessed(&mut pre, &inst)))
        });

        for greedy in [
            &ConsumeAttr as &dyn SocAlgorithm,
            &ConsumeAttrCumul,
            &ConsumeQueries,
        ] {
            group.bench_with_input(BenchmarkId::new(greedy.name(), m), &m, |b, _| {
                b.iter(|| black_box(greedy.solve(&inst)))
            });
        }
    }
    group.finish();

    // Cold solve (mining included) once, at m = 7 — slow, so few samples.
    let mut cold = c.benchmark_group("fig6_cold_preprocessing");
    cold.sample_size(10);
    let inst = SocInstance::new(&log, car, 7);
    let mfi = MfiSolver::default();
    cold.bench_function("MaxFreqItemSets_cold_m7", |b| {
        b.iter(|| black_box(mfi.solve(&inst)))
    });
    cold.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
