//! Criterion bench for the §IV.C walk-direction ablation: one top-down
//! two-phase walk vs one bottom-up GKMS walk on the dense complemented
//! query log.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::real_setup;
use soc_bench::harness::Scale;
use soc_itemsets::{bottom_up_walk, top_down_walk, ComplementedLog};
use soc_rng::StdRng;
use std::hint::black_box;

fn bench_walks(c: &mut Criterion) {
    let (log, _) = real_setup(Scale::Quick);
    let oracle = ComplementedLog::new(&log);
    let mut group = c.benchmark_group("walk_direction");

    for threshold in [5usize, 20] {
        group.bench_with_input(
            BenchmarkId::new("top_down", threshold),
            &threshold,
            |b, &r| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(top_down_walk(&oracle, r, &mut rng)))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("bottom_up", threshold),
            &threshold,
            |b, &r| {
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| black_box(bottom_up_walk(&oracle, r, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
