//! Criterion bench for Fig 10: solve time vs query-log size (m = 5).
//! ILP (paper-verbatim) only up to 1000 queries; MaxFreqItemSets and the
//! greedies across the full range.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::synthetic_setup;
use soc_bench::harness::Scale;
use soc_core::{
    ConsumeAttr, ConsumeQueries, IlpSolver, MfiPreprocessed, MfiSolver, SocAlgorithm, SocInstance,
};
use std::hint::black_box;

fn bench_fig10(c: &mut Criterion) {
    let m = 5;
    let mut group = c.benchmark_group("fig10_log_size");
    group.sample_size(10);

    for s in [200usize, 600, 1000, 2000] {
        let (log, cars) = synthetic_setup(Scale::Quick, s, 32);
        let car = &cars[0];
        let inst = SocInstance::new(&log, car, m);

        if s <= 1000 {
            let ilp = IlpSolver::verbatim();
            group.bench_with_input(BenchmarkId::new("ILP", s), &s, |b, _| {
                b.iter(|| black_box(ilp.solve(&inst)))
            });
        }

        let mfi = MfiSolver::default();
        let mut pre = MfiPreprocessed::default();
        let _ = mfi.solve_preprocessed(&mut pre, &inst);
        group.bench_with_input(BenchmarkId::new("MaxFreqItemSets_warm", s), &s, |b, _| {
            b.iter(|| black_box(mfi.solve_preprocessed(&mut pre, &inst)))
        });

        // ConsumeQueries re-scans the workload per picked query — the
        // paper singles it out as the slowest greedy; ConsumeAttr is the
        // fast baseline.
        for greedy in [&ConsumeAttr as &dyn SocAlgorithm, &ConsumeQueries] {
            group.bench_with_input(BenchmarkId::new(greedy.name(), s), &s, |b, _| {
                b.iter(|| black_box(greedy.solve(&inst)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
