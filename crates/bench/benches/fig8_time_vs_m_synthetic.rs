//! Criterion bench for Fig 8: solve time on the 2000-query synthetic
//! workload (ILP omitted, exactly as in the paper). Warm MaxFreqItemSets
//! vs the three greedies at m ∈ {4, 7, 10}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::synthetic_setup;
use soc_bench::harness::Scale;
use soc_core::{
    ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, MfiPreprocessed, MfiSolver, SocAlgorithm,
    SocInstance,
};
use std::hint::black_box;

fn bench_fig8(c: &mut Criterion) {
    let (log, cars) = synthetic_setup(Scale::Quick, 2000, 32);
    let car = &cars[0];
    let mut group = c.benchmark_group("fig8_synthetic_2000");
    group.sample_size(10);

    let mfi = MfiSolver::default();
    for m in [4usize, 7, 10] {
        let inst = SocInstance::new(&log, car, m);
        let mut pre = MfiPreprocessed::default();
        let _ = mfi.solve_preprocessed(&mut pre, &inst);
        group.bench_with_input(BenchmarkId::new("MaxFreqItemSets_warm", m), &m, |b, _| {
            b.iter(|| black_box(mfi.solve_preprocessed(&mut pre, &inst)))
        });
        for greedy in [
            &ConsumeAttr as &dyn SocAlgorithm,
            &ConsumeAttrCumul,
            &ConsumeQueries,
        ] {
            group.bench_with_input(BenchmarkId::new(greedy.name(), m), &m, |b, _| {
                b.iter(|| black_box(greedy.solve(&inst)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
