//! Criterion bench for the batch-serving path introduced in PR 2: one
//! synthetic workload, a batch of new cars, MaxFreqItemSets as the
//! solver. Crosses the scheduler (static chunking vs work-stealing),
//! the instance shape (full universe vs per-tuple projection), and the
//! mining mode (serial vs pool-parallel walks). The full grid with the
//! JSON artifact lives in `figures serving`; this bench gives
//! statistically rigorous timings on the Quick workload.

use criterion::{criterion_group, criterion_main, Criterion};
use soc_bench::figs::synthetic_setup;
use soc_bench::harness::Scale;
use soc_core::{solve_batch, solve_batch_chunked, MfiSolver, Projected, SharedMfi};
use std::hint::black_box;

fn bench_batch_serving(c: &mut Criterion) {
    let (log, cars) = synthetic_setup(Scale::Quick, 800, 32);
    let threads = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let serial = MfiSolver::default();
    let parallel = MfiSolver {
        workers: threads,
        ..Default::default()
    };
    let m = 5;

    let mut group = c.benchmark_group("batch_serving");
    group.sample_size(10);

    // A fresh SharedMfi per iteration so every run pays the cold mine —
    // the cost profile of serving a batch against a new log.
    group.bench_function("chunked_full_serial", |b| {
        b.iter(|| {
            let shared = SharedMfi::new(serial.clone());
            black_box(solve_batch_chunked(&shared, &log, &cars, m, threads))
        })
    });
    group.bench_function("stealing_full_serial", |b| {
        b.iter(|| {
            let shared = SharedMfi::new(serial.clone());
            black_box(solve_batch(&shared, &log, &cars, m, threads))
        })
    });
    group.bench_function("stealing_full_parallel_mine", |b| {
        b.iter(|| {
            let shared = SharedMfi::new(parallel.clone());
            black_box(solve_batch(&shared, &log, &cars, m, threads))
        })
    });
    group.bench_function("stealing_projected_serial", |b| {
        b.iter(|| {
            black_box(solve_batch(
                &Projected(serial.clone()),
                &log,
                &cars,
                m,
                threads,
            ))
        })
    });

    // The mining axis head-on: one cold prime of the shared cache.
    group.bench_function("prime_serial_mine", |b| {
        b.iter(|| {
            let shared = SharedMfi::new(serial.clone());
            shared.prime(&log);
            black_box(shared.cached_thresholds())
        })
    });
    group.bench_function("prime_parallel_mine", |b| {
        b.iter(|| {
            let shared = SharedMfi::new(parallel.clone());
            shared.prime(&log);
            black_box(shared.cached_thresholds())
        })
    });

    group.finish();
}

criterion_group!(benches, bench_batch_serving);
criterion_main!(benches);
