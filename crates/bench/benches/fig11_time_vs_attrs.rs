//! Criterion bench for Fig 11: the two optimal algorithms vs the number
//! of attributes M (200 queries, m = 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_bench::figs::synthetic_setup;
use soc_bench::harness::Scale;
use soc_core::{IlpSolver, MfiSolver, SocAlgorithm, SocInstance};
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let m = 5;
    let mut group = c.benchmark_group("fig11_attr_count");
    group.sample_size(10);

    for width in [16usize, 32, 48, 64] {
        let (log, cars) = synthetic_setup(Scale::Quick, 200, width);
        let car = &cars[0];
        let inst = SocInstance::new(&log, car, m);

        let ilp = IlpSolver::verbatim();
        group.bench_with_input(BenchmarkId::new("ILP", width), &width, |b, _| {
            b.iter(|| black_box(ilp.solve(&inst)))
        });

        let mfi = MfiSolver::default();
        group.bench_with_input(
            BenchmarkId::new("MaxFreqItemSets_cold", width),
            &width,
            |b, _| b.iter(|| black_box(mfi.solve(&inst))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
