//! Property-based cross-validation of the SOC algorithms: every exact
//! algorithm must match the brute-force oracle, and no heuristic may beat
//! it.

use proptest::prelude::*;
use soc_core::variants::disjunctive;
use soc_core::{
    BruteForce, ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, IlpSolver, LocalSearch, MfiSolver,
    SocAlgorithm, SocInstance,
};
use soc_data::{AttrSet, QueryLog, Tuple};

const M: usize = 8;

#[derive(Clone, Debug)]
struct Instance {
    log: QueryLog,
    tuple: Tuple,
    m: usize,
}

fn instance() -> impl Strategy<Value = Instance> {
    let query = proptest::collection::vec(any::<bool>(), M);
    (
        proptest::collection::vec(query, 0..14),
        proptest::collection::vec(any::<bool>(), M),
        0usize..=M,
    )
        .prop_map(|(rows, tbits, m)| Instance {
            log: QueryLog::from_attr_sets(M, rows.iter().map(|r| AttrSet::from_bools(r)).collect()),
            tuple: Tuple::new(AttrSet::from_bools(&tbits)),
            m,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn exact_algorithms_agree_with_brute_force(inst in instance()) {
        let soc = SocInstance::new(&inst.log, &inst.tuple, inst.m);
        let opt = BruteForce.solve(&soc);

        let ilp = IlpSolver::default().solve(&soc);
        prop_assert_eq!(ilp.satisfied, opt.satisfied, "ILP vs BruteForce");

        // The MFI algorithm is exact with high probability in the walk
        // budget; a generous fixed budget makes a miss on an 8-attribute
        // universe astronomically unlikely.
        let mfi_solver = MfiSolver {
            stop: soc_itemsets::StopRule::FixedIterations(1500),
            max_iterations: 2000,
            ..Default::default()
        };
        let mfi = mfi_solver.solve(&soc);
        prop_assert_eq!(mfi.satisfied, opt.satisfied, "MFI vs BruteForce");

        // The default (seen-twice) configuration must still be *valid*
        // even when it occasionally misses the optimum.
        let default_mfi = MfiSolver::default().solve(&soc);
        prop_assert!(default_mfi.satisfied <= opt.satisfied);
        prop_assert!(default_mfi.retained.is_subset(inst.tuple.attrs()));

        // Solutions must actually achieve their claimed objective.
        prop_assert_eq!(soc.objective(&ilp.retained), ilp.satisfied);
        prop_assert_eq!(soc.objective(&mfi.retained), mfi.satisfied);
    }

    #[test]
    fn heuristics_are_valid_and_never_better(inst in instance()) {
        let soc = SocInstance::new(&inst.log, &inst.tuple, inst.m);
        let opt = BruteForce.solve(&soc);
        let local = LocalSearch::default();
        for algo in [
            &ConsumeAttr as &dyn SocAlgorithm,
            &ConsumeAttrCumul,
            &ConsumeQueries,
            &local,
        ] {
            let sol = algo.solve(&soc);
            prop_assert!(sol.satisfied <= opt.satisfied, "{}", algo.name());
            prop_assert!(sol.retained.is_subset(inst.tuple.attrs()), "{}", algo.name());
            prop_assert!(sol.retained.count() <= inst.m, "{}", algo.name());
            prop_assert_eq!(soc.objective(&sol.retained), sol.satisfied);
        }
    }

    #[test]
    fn disjunctive_ilp_matches_enumeration(inst in instance()) {
        let soc = SocInstance::new(&inst.log, &inst.tuple, inst.m);
        let exact = disjunctive::solve_disjunctive_ilp(&soc);
        let oracle = disjunctive::solve_disjunctive_brute_force(&soc);
        prop_assert_eq!(exact.satisfied, oracle.satisfied);
        let greedy = disjunctive::solve_disjunctive_greedy(&soc);
        prop_assert!(greedy.satisfied <= oracle.satisfied);
    }

    /// Optimal objective is monotone in m.
    #[test]
    fn optimum_is_monotone_in_budget(inst in instance()) {
        let mut last = 0;
        for m in 0..=M {
            let soc = SocInstance::new(&inst.log, &inst.tuple, m);
            let v = BruteForce.solve(&soc).satisfied;
            prop_assert!(v >= last, "m={m}: {v} < {last}");
            last = v;
        }
    }
}
