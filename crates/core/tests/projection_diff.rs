//! Differential tests for instance projection (`SocInstance::reduced` /
//! `Projected<A>`): solving on the compact per-tuple universe must
//! return the same objective — and a valid retained set in the original
//! universe — as solving full-width.
//!
//! Exact algorithms (BruteForce, ILP, MFI) are compared directly: the
//! projection preserves every objective value, so optima must agree.
//! The greedies are compared against their decision-equivalent
//! full-width counterpart (candidate-restricted + deduplicated log):
//! projection is exactly that restriction plus an order-preserving
//! renumbering, so both the retained set and the objective must match
//! bit for bit.

use soc_core::{
    BruteForce, ConsumeAttr, ConsumeAttrCumul, ConsumeQueries, IlpSolver, LocalSearch, MfiSolver,
    Projected, SocAlgorithm, SocInstance,
};
use soc_data::{AttrSet, QueryLog, Tuple};
use soc_rng::StdRng;

const M: usize = 9;

/// A reproducible random instance: `num_queries` random queries over `M`
/// attributes (lengths 1..=4, skewed toward low indices) and a random
/// tuple with roughly `density` ones.
fn random_instance(seed: u64, num_queries: usize, density: f64) -> (QueryLog, Tuple) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let len = rng.random_range(1..=4usize);
        let mut attrs = AttrSet::empty(M);
        while attrs.count() < len {
            // Squaring skews toward low indices so duplicates arise and
            // the projection's weight-merging path is exercised.
            let x: f64 = rng.random();
            attrs.insert(((x * x * M as f64) as usize).min(M - 1));
        }
        sets.push(attrs);
    }
    let tuple = Tuple::new(AttrSet::from_indices(
        M,
        (0..M).filter(|_| rng.random_bool(density)),
    ));
    (QueryLog::from_attr_sets(M, sets), tuple)
}

#[test]
fn exact_solvers_match_full_width_objective() {
    for seed in 0..12u64 {
        let (log, t) = random_instance(seed, 18, 0.6);
        for m in [0, 1, 2, 3, 5, M] {
            let inst = SocInstance::new(&log, &t, m);
            let want = BruteForce.solve(&inst).satisfied;
            for algo in [
                &Projected(BruteForce) as &dyn SocAlgorithm,
                &Projected(IlpSolver::default()),
                &Projected(MfiSolver::deterministic()),
            ] {
                let sol = algo.solve(&inst);
                assert_eq!(
                    sol.satisfied,
                    want,
                    "{} seed {seed} m {m}: projected objective diverged",
                    algo.name()
                );
                assert_eq!(
                    sol.retained.universe(),
                    M,
                    "retained set must be full-width"
                );
                assert!(sol.retained.is_subset(t.attrs()));
                assert!(sol.retained.count() <= m);
            }
        }
    }
}

#[test]
fn randomized_mfi_projection_is_valid_and_exact_with_generous_budget() {
    // The random-walk miner is exact w.h.p. given enough walks; a 1500
    // walk budget on a ≤ 9-attribute universe makes a miss astronomically
    // unlikely, so this doubles as an exactness check through projection.
    let solver = MfiSolver {
        stop: soc_itemsets::StopRule::FixedIterations(1500),
        max_iterations: 2000,
        ..Default::default()
    };
    for seed in 0..6u64 {
        let (log, t) = random_instance(seed, 14, 0.5);
        for m in [1, 2, 4] {
            let inst = SocInstance::new(&log, &t, m);
            let want = BruteForce.solve(&inst).satisfied;
            let sol = Projected(solver.clone()).solve(&inst);
            assert_eq!(sol.satisfied, want, "seed {seed} m {m}");
            assert!(sol.retained.is_subset(t.attrs()));
        }
    }
}

#[test]
fn greedies_are_decision_equivalent_to_restricted_dedup_log() {
    for seed in 100..112u64 {
        let (log, t) = random_instance(seed, 25, 0.55);
        // Projection = candidate restriction + dedup + order-preserving
        // renumbering; the greedies' scores and tie-breaks are invariant
        // under the latter, so this full-width instance must reproduce
        // the projected run exactly.
        let counterpart = log.restrict_to_candidate(&t).deduplicate();
        for m in [0, 1, 2, 3, 4, M] {
            let inst = SocInstance::new(&log, &t, m);
            let full = SocInstance::new(&counterpart, &t, m);
            for algo in [
                &ConsumeAttr as &dyn SocAlgorithm,
                &ConsumeAttrCumul,
                &ConsumeQueries,
            ] {
                let projected = Projected(&algo).solve(&inst);
                let direct = algo.solve(&full);
                assert_eq!(
                    projected.retained,
                    direct.retained,
                    "{} seed {seed} m {m}: retained sets diverged",
                    algo.name()
                );
                assert_eq!(projected.satisfied, direct.satisfied);
            }
        }
    }
}

#[test]
fn projected_heuristics_stay_valid_and_never_beat_optimum() {
    for seed in 200..208u64 {
        let (log, t) = random_instance(seed, 20, 0.5);
        for m in [1, 3, 5] {
            let inst = SocInstance::new(&log, &t, m);
            let opt = BruteForce.solve(&inst).satisfied;
            for algo in [
                &Projected(ConsumeAttr) as &dyn SocAlgorithm,
                &Projected(ConsumeAttrCumul),
                &Projected(ConsumeQueries),
                &Projected(LocalSearch::default()),
            ] {
                let sol = algo.solve(&inst);
                assert!(
                    sol.satisfied <= opt,
                    "{} seed {seed} m {m} beat the optimum",
                    algo.name()
                );
                assert!(sol.retained.is_subset(t.attrs()));
                assert!(sol.retained.count() <= m);
            }
        }
    }
}

#[test]
fn projection_equivalence_holds_on_weighted_logs() {
    for seed in 300..306u64 {
        let (log, t) = random_instance(seed, 30, 0.6);
        let weighted = log.deduplicate(); // non-unit weights
        for m in [2, 4] {
            let inst = SocInstance::new(&weighted, &t, m);
            let want = BruteForce.solve(&inst).satisfied;
            let sol = Projected(IlpSolver::default()).solve(&inst);
            assert_eq!(sol.satisfied, want, "seed {seed} m {m}");
        }
    }
}
