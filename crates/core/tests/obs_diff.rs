//! Differential test for the observability layer: turning metrics and
//! tracing ON must not change a single solver or miner result. The
//! instruments only *observe* — same seeds in, bit-identical solutions
//! and itemsets out, whether recording is off, on, or on-with-spans.
//!
//! Runs in its own integration-test process because the enable flags
//! are process-global.

use soc_core::{
    solve_batch, ConsumeAttrCumul, IlpSolver, MfiSolver, SocAlgorithm, SocInstance, Solution,
};
use soc_data::{AttrSet, QueryLog, Tuple};
use soc_rng::StdRng;

const M: usize = 10;

fn random_instance(seed: u64, num_queries: usize) -> (QueryLog, Tuple) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sets = Vec::with_capacity(num_queries);
    for _ in 0..num_queries {
        let len = rng.random_range(1..=4usize);
        let mut attrs = AttrSet::empty(M);
        while attrs.count() < len {
            attrs.insert(rng.random_range(0..M));
        }
        sets.push(attrs);
    }
    let tuple = Tuple::new(AttrSet::from_indices(
        M,
        (0..M).filter(|_| rng.random_bool(0.6)),
    ));
    (QueryLog::from_attr_sets(M, sets), tuple)
}

/// Solves every (seed, m) cell with every algorithm under the current
/// flag state and returns the flat result vector.
fn solve_all() -> Vec<Solution> {
    let mut out = Vec::new();
    for seed in 0..4u64 {
        let (log, t) = random_instance(seed, 24);
        for m in [1, 3, 5] {
            let inst = SocInstance::new(&log, &t, m);
            for algo in [
                &IlpSolver::default() as &dyn SocAlgorithm,
                &MfiSolver::default(), // fixed internal seed: deterministic
                &MfiSolver::deterministic(),
                &ConsumeAttrCumul,
            ] {
                out.push(algo.solve(&inst));
            }
        }
    }
    out
}

fn mine_all() -> Vec<Vec<soc_itemsets::FrequentItemset>> {
    (0..4u64)
        .map(|seed| {
            let (log, _) = random_instance(seed, 24);
            MfiSolver::default().mine(&log, 3)
        })
        .collect()
}

fn batch_all() -> Vec<Solution> {
    let (log, _) = random_instance(7, 30);
    let tuples: Vec<Tuple> = (0..8u64).map(|s| random_instance(s + 50, 1).1).collect();
    solve_batch(&IlpSolver::default(), &log, &tuples, 4, 3)
}

#[test]
fn instrumentation_changes_no_result() {
    soc_obs::disable_all();
    let base_solutions = solve_all();
    let base_mfis = mine_all();
    let base_batch = batch_all();

    soc_obs::enable_metrics();
    assert_eq!(solve_all(), base_solutions, "metrics-on diverged");
    assert_eq!(mine_all(), base_mfis, "metrics-on MFI diverged");
    assert_eq!(batch_all(), base_batch, "metrics-on batch diverged");

    soc_obs::enable_tracing();
    assert_eq!(solve_all(), base_solutions, "tracing-on diverged");
    assert_eq!(mine_all(), base_mfis, "tracing-on MFI diverged");
    assert_eq!(batch_all(), base_batch, "tracing-on batch diverged");

    // The run above must actually have exercised the instruments —
    // otherwise this test proves nothing.
    assert!(soc_obs::registry()
        .snapshot()
        .to_json()
        .contains("mfi.walk_rounds"));
    let spans = soc_obs::drain_spans();
    assert!(spans.iter().any(|s| s.name == "solve_batch"));
    assert!(spans.iter().any(|s| s.name == "mine_mfi"));
    soc_obs::disable_all();
}
