//! `MaxFreqItemSets-SOC-CB-QL` (§IV.C): the scalable exact algorithm.
//!
//! Pipeline (Fig 5 of the paper):
//!
//! 1. View the complemented log `~Q` as a virtual transaction table
//!    ([`soc_itemsets::ComplementedLog`] — never materialized).
//! 2. Mine its maximal frequent itemsets at threshold `r` with the
//!    two-phase top-down random walk, stopping when every itemset has
//!    been rediscovered (Good–Turing heuristic).
//! 3. Among all itemsets `I` with `|I| = M − m`, `I ⊇ ~t`, and `I` a
//!    subset of some mined maximal itemset, pick the one with the highest
//!    frequency; the answer is `t' = ~I`.
//! 4. If no such `I` exists the optimum satisfies fewer than `r` queries:
//!    the adaptive threshold strategy halves `r` and retries (guaranteed
//!    optimal once `r = 1`), while fixed strategies report failure.
//!
//! Mining is tuple-independent, so step 2 can be *preprocessed* once per
//! query log and reused across new tuples ([`MfiPreprocessed`]) — the
//! paper's "0.015 seconds for any m value" observation in Fig 6.

use std::collections::{BTreeMap, HashSet};

use soc_data::{AttrSet, Combinations, QueryLog};
use soc_itemsets::{
    backtracking_mfi, BacktrackLimits, ComplementedLog, FrequentItemset, MfiConfig, MfiMiner,
    StopRule, ThresholdStrategy, WalkDirection,
};
use soc_rng::StdRng;

use crate::{SocAlgorithm, SocInstance, Solution};

/// Which maximal-frequent-itemset miner the solver runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MinerKind {
    /// The paper's repeated two-phase random walk (§IV.C): fast, complete
    /// with high probability in the walk budget.
    RandomWalk,
    /// Deterministic GenMax-style backtracking enumeration: provably
    /// complete, usually slower on dense complements.
    Backtracking,
}

/// The maximal-frequent-itemset-based exact algorithm.
#[derive(Clone, Debug)]
pub struct MfiSolver {
    /// How the support threshold is chosen / revised. The default
    /// (adaptive halving) guarantees an optimal answer.
    pub threshold: ThresholdStrategy,
    /// Mining engine (random walk by default, per the paper).
    pub miner: MinerKind,
    /// Walk strategy; the paper's top-down two-phase walk by default.
    pub direction: WalkDirection,
    /// Walk stopping rule.
    pub stop: StopRule,
    /// Hard cap on walks per mining run.
    pub max_iterations: usize,
    /// Floor on walks before the seen-twice rule may stop the miner.
    pub min_iterations: usize,
    /// RNG seed (runs are deterministic given the seed).
    pub seed: u64,
    /// Worker threads for random-walk mining. `1` (the default) runs the
    /// classic serial miner; larger values fan the walks out over scoped
    /// threads with per-worker RNG streams and an asynchronous stream
    /// merge — still deterministic, given `(seed, workers)`. Ignored by
    /// the backtracking miner.
    pub workers: usize,
    /// When true (the default), degrade `workers` to `1` whenever the
    /// host has a single hardware thread or the log is too small
    /// (`num_attrs × len` below [`PARALLEL_MINE_FLOOR`]) for thread
    /// spawning to pay for itself. Set to `false` to force the
    /// configured worker count regardless of host or workload — useful
    /// for differential tests and the scaling grid.
    pub adaptive: bool,
}

/// Below this estimated mining work (`log.num_attrs() × log.len()`), an
/// adaptive [`MfiSolver`] mines serially no matter how many workers were
/// configured: a walk over a narrow or short log completes in far less
/// time than spawning threads costs. Tuned on the serving scaling grid
/// (EXPERIMENTS.md).
pub const PARALLEL_MINE_FLOOR: usize = 32_768;

impl Default for MfiSolver {
    fn default() -> Self {
        Self {
            threshold: ThresholdStrategy::AdaptiveHalving { initial: None },
            miner: MinerKind::RandomWalk,
            direction: WalkDirection::TopDown,
            stop: StopRule::SeenTwice,
            max_iterations: 5_000,
            min_iterations: 64,
            seed: 0x5eed_50c0,
            workers: 1,
            adaptive: true,
        }
    }
}

impl MfiSolver {
    /// A solver configured for provable exactness: deterministic
    /// backtracking enumeration plus the adaptive threshold.
    pub fn deterministic() -> Self {
        Self {
            miner: MinerKind::Backtracking,
            ..Default::default()
        }
    }
}

/// Maximal frequent itemsets of `~Q` mined per threshold, reusable across
/// tuples (the preprocessing opportunity of §IV.C).
#[derive(Clone, Debug, Default)]
pub struct MfiPreprocessed {
    by_threshold: BTreeMap<usize, Vec<FrequentItemset>>,
}

impl MfiPreprocessed {
    /// Mined thresholds currently cached.
    pub fn thresholds(&self) -> impl Iterator<Item = usize> + '_ {
        self.by_threshold.keys().copied()
    }

    /// The mined maximal itemsets for a threshold, if cached.
    pub fn get(&self, threshold: usize) -> Option<&[FrequentItemset]> {
        self.by_threshold.get(&threshold).map(Vec::as_slice)
    }
}

impl MfiSolver {
    /// The worker count mining will actually use for `log`: the
    /// configured `workers`, degraded to `1` by the adaptive cost model
    /// when the host is single-threaded or the log is below
    /// [`PARALLEL_MINE_FLOOR`].
    pub fn effective_workers(&self, log: &QueryLog) -> usize {
        let workers = self.workers.max(1);
        if !self.adaptive || workers == 1 {
            return workers;
        }
        if crate::batch::host_parallelism() == 1 {
            return 1; // no second core to run a second walk stream
        }
        if log.num_attrs().saturating_mul(log.len()) < PARALLEL_MINE_FLOOR {
            return 1; // mining finishes before thread spawning pays off
        }
        workers
    }

    /// Mines the maximal frequent itemsets of `~Q` at `threshold`.
    pub fn mine(&self, log: &QueryLog, threshold: usize) -> Vec<FrequentItemset> {
        let oracle = ComplementedLog::new(log);
        match self.miner {
            MinerKind::RandomWalk => {
                let miner = MfiMiner::new(MfiConfig {
                    threshold,
                    max_iterations: self.max_iterations,
                    min_iterations: self.min_iterations,
                    direction: self.direction,
                    stop: self.stop,
                });
                let mine_seed = self.seed ^ threshold as u64;
                let workers = self.effective_workers(log);
                if workers > 1 {
                    miner.mine_parallel(&oracle, mine_seed, workers).itemsets
                } else {
                    let mut rng = StdRng::seed_from_u64(mine_seed);
                    miner.mine(&oracle, &mut rng).itemsets
                }
            }
            MinerKind::Backtracking => {
                backtracking_mfi(&oracle, threshold, &BacktrackLimits::default())
                    .itemsets()
                    .to_vec()
            }
        }
    }

    /// Ensures the preprocessing cache holds the itemsets for `threshold`.
    pub fn preprocess(&self, pre: &mut MfiPreprocessed, log: &QueryLog, threshold: usize) {
        pre.by_threshold
            .entry(threshold)
            .or_insert_with(|| self.mine(log, threshold));
    }

    /// One attempt at a given threshold: scan the mined maximal itemsets
    /// for the best level-`M − m` superset of `~t`. Returns `None` when
    /// no qualifying itemset exists (optimum < threshold).
    fn attempt(&self, instance: &SocInstance<'_>, mfis: &[FrequentItemset]) -> Option<Solution> {
        let m_attrs = instance.log.num_attrs();
        let t = instance.tuple.attrs();
        let not_t = t.complement();
        let target = m_attrs - instance.effective_m();
        // k = attributes of t that must be *dropped*.
        let k = target - not_t.count();

        let mut best: Option<(AttrSet, usize)> = None;
        let mut seen: HashSet<AttrSet> = HashSet::new();
        for mfi in mfis {
            if mfi.items.count() < target || !not_t.is_subset(&mfi.items) {
                continue;
            }
            // Candidate drops come from J ∩ t.
            let pool = mfi.items.intersection(t).to_indices();
            debug_assert!(pool.len() >= k);
            for combo in Combinations::new(pool.len(), k) {
                let mut itemset = not_t.clone();
                for &ci in &combo {
                    itemset.insert(pool[ci]);
                }
                if !seen.insert(itemset.clone()) {
                    continue;
                }
                let freq = instance.log.complement_support(&itemset);
                if best.as_ref().is_none_or(|&(_, bf)| freq > bf) {
                    best = Some((itemset, freq));
                }
            }
        }
        best.map(|(itemset, freq)| {
            instance.solution_with_known_objective(itemset.complement(), freq)
        })
    }

    /// Solves using (and extending) a preprocessing cache.
    pub fn solve_preprocessed(
        &self,
        pre: &mut MfiPreprocessed,
        instance: &SocInstance<'_>,
    ) -> Solution {
        let mut r = self.threshold.initial(instance.log.len().max(1));
        loop {
            self.preprocess(pre, instance.log, r);
            let mfis = pre.get(r).expect("just mined");
            if let Some(sol) = self.attempt(instance, mfis) {
                return sol;
            }
            match self.threshold.next(r) {
                Some(next) => r = next,
                // Optimum satisfies fewer queries than the final
                // threshold. For exhaustive strategies (r reached 1) that
                // means the optimum is 0 — any compression is optimal.
                // For fixed strategies this is the documented "algorithm
                // returns empty" outcome; we still return a valid
                // (possibly suboptimal) compression.
                None => return fallback_solution(instance),
            }
        }
    }
}

/// The budget-respecting compression returned when no frequent itemset
/// qualifies: retain the first `m` attributes of the tuple. Used when the
/// optimum is provably 0 (exhaustive strategies) or the fixed threshold
/// came back empty.
fn fallback_solution(instance: &SocInstance<'_>) -> Solution {
    let fallback: Vec<usize> = instance
        .tuple
        .attrs()
        .iter()
        .take(instance.effective_m())
        .collect();
    let retained = AttrSet::from_indices(instance.log.num_attrs(), fallback);
    instance.solution(retained)
}

/// A thread-safe wrapper sharing one preprocessing cache across many
/// solves — the deployment shape of the paper's preprocessing remark
/// (mine the log once, answer per-tuple requests cheaply). Implements
/// [`SocAlgorithm`], so it drops into batch drivers and benches.
pub struct SharedMfi {
    solver: MfiSolver,
    cache: std::sync::RwLock<MfiPreprocessed>,
}

impl SharedMfi {
    /// Wraps a solver with an empty shared cache.
    pub fn new(solver: MfiSolver) -> Self {
        Self {
            solver,
            cache: std::sync::RwLock::new(MfiPreprocessed::default()),
        }
    }

    /// Pre-mines the cache for the thresholds the adaptive strategy will
    /// visit first (call before spawning workers to avoid a thundering
    /// herd on the first solve).
    ///
    /// Mining happens *outside* the write lock — the lock is taken only
    /// to install the finished result, so concurrent readers (cached
    /// solves on other threads) never stall behind a mining run.
    pub fn prime(&self, log: &QueryLog) {
        let r = self.solver.threshold.initial(log.len().max(1));
        let cached = self
            .cache
            .read()
            .expect("cache lock poisoned")
            .get(r)
            .is_some();
        if cached {
            return;
        }
        let mined = self.solver.mine(log, r);
        let mut cache = self.cache.write().expect("cache lock poisoned");
        cache.by_threshold.entry(r).or_insert(mined);
    }

    /// Number of thresholds currently cached.
    pub fn cached_thresholds(&self) -> usize {
        self.cache
            .read()
            .expect("cache lock poisoned")
            .thresholds()
            .count()
    }
}

impl SocAlgorithm for SharedMfi {
    fn name(&self) -> &'static str {
        "MaxFreqItemSets(shared)"
    }

    fn is_exact(&self) -> bool {
        self.solver.is_exact()
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let mut r = self.solver.threshold.initial(instance.log.len().max(1));
        loop {
            // Fast path: solve against the read-locked cache.
            let hit = {
                let cache = self.cache.read().expect("cache lock poisoned");
                cache.get(r).map(|mfis| self.solver.attempt(instance, mfis))
            };
            match hit {
                Some(Some(sol)) => return sol,
                Some(None) => match self.solver.threshold.next(r) {
                    Some(next) => r = next,
                    None => return fallback_solution(instance),
                },
                None => {
                    // Miss: mine outside the read lock, then install.
                    let mined = self.solver.mine(instance.log, r);
                    let mut cache = self.cache.write().expect("cache lock poisoned");
                    cache.by_threshold.entry(r).or_insert(mined);
                }
            }
        }
    }
}

impl SocAlgorithm for MfiSolver {
    fn name(&self) -> &'static str {
        match self.miner {
            MinerKind::RandomWalk => "MaxFreqItemSets",
            MinerKind::Backtracking => "MaxFreqItemSets(det)",
        }
    }

    fn is_exact(&self) -> bool {
        // Exact whenever the threshold strategy is exhaustive and the walk
        // budget suffices to discover all maximal itemsets (the paper's
        // high-probability guarantee).
        self.threshold.exhaustive()
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let mut pre = MfiPreprocessed::default();
        self.solve_preprocessed(&mut pre, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::Tuple;

    fn fig1() -> (QueryLog, Tuple) {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        (log, t)
    }

    #[test]
    fn solves_fig1() {
        let (log, t) = fig1();
        let sol = MfiSolver::default().solve(&SocInstance::new(&log, &t, 3));
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 3]);
    }

    #[test]
    fn matches_brute_force_across_m() {
        let (log, t) = fig1();
        for m in 0..=6 {
            let inst = SocInstance::new(&log, &t, m);
            let got = MfiSolver::default().solve(&inst);
            let want = BruteForce.solve(&inst);
            assert_eq!(got.satisfied, want.satisfied, "m = {m}");
        }
    }

    #[test]
    fn exact_threshold_strategy() {
        let (log, t) = fig1();
        let solver = MfiSolver {
            threshold: ThresholdStrategy::Exact,
            ..Default::default()
        };
        for m in 1..=5 {
            let inst = SocInstance::new(&log, &t, m);
            assert_eq!(
                solver.solve(&inst).satisfied,
                BruteForce.solve(&inst).satisfied,
                "m = {m}"
            );
        }
    }

    #[test]
    fn fixed_threshold_may_fall_back() {
        let (log, t) = fig1();
        // Threshold 4: no 3-attribute compression satisfies 4 of the 5
        // queries, so the fixed strategy falls back to a valid answer.
        let solver = MfiSolver {
            threshold: ThresholdStrategy::Fixed(4),
            ..Default::default()
        };
        let sol = solver.solve(&SocInstance::new(&log, &t, 3));
        assert!(sol.retained.count() <= 3);
        assert!(sol.retained.is_subset(t.attrs()));
        assert!(!solver.is_exact());
    }

    #[test]
    fn preprocessing_is_reused() {
        let (log, t) = fig1();
        let solver = MfiSolver::default();
        let mut pre = MfiPreprocessed::default();
        let inst = SocInstance::new(&log, &t, 3);
        let a = solver.solve_preprocessed(&mut pre, &inst);
        let cached: Vec<usize> = pre.thresholds().collect();
        assert!(!cached.is_empty());
        // Second tuple reuses the cache (no panic, same log).
        let t2 = Tuple::from_bitstring("010101").unwrap();
        let inst2 = SocInstance::new(&log, &t2, 2);
        let b = solver.solve_preprocessed(&mut pre, &inst2);
        assert_eq!(a.satisfied, 3);
        assert_eq!(b.satisfied, BruteForce.solve(&inst2).satisfied);
    }

    #[test]
    fn tuple_smaller_than_budget() {
        let (log, _) = fig1();
        let t = Tuple::from_bitstring("010100").unwrap(); // 2 ones
        let inst = SocInstance::new(&log, &t, 4);
        let sol = MfiSolver::default().solve(&inst);
        assert_eq!(sol.satisfied, BruteForce.solve(&inst).satisfied);
        assert_eq!(sol.retained.count(), 2); // keeps the whole tuple
    }

    #[test]
    fn zero_optimum_falls_back_gracefully() {
        // No query is a subset of t: optimum is 0.
        let log = QueryLog::from_bitstrings(&["0011", "0010"]).unwrap();
        let t = Tuple::from_bitstring("1100").unwrap();
        let inst = SocInstance::new(&log, &t, 1);
        let sol = MfiSolver::default().solve(&inst);
        assert_eq!(sol.satisfied, 0);
        assert!(sol.retained.count() <= 1);
    }
}

#[cfg(test)]
mod parallel_mining_tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::Tuple;

    fn workload(seed: u64, num_queries: usize, m_attrs: usize) -> QueryLog {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sets = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let len = rng.random_range(1..=3usize);
            let mut attrs = AttrSet::empty(m_attrs);
            while attrs.count() < len {
                attrs.insert(rng.random_range(0..m_attrs));
            }
            sets.push(attrs);
        }
        QueryLog::from_attr_sets(m_attrs, sets)
    }

    #[test]
    fn parallel_solver_objective_matches_serial_and_brute_force() {
        let log = workload(5, 24, 9);
        let generous = |workers| MfiSolver {
            stop: soc_itemsets::StopRule::FixedIterations(1500),
            max_iterations: 2000,
            workers,
            adaptive: false, // force the parallel path even on 1-core hosts
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(77);
        for _ in 0..4 {
            let t = Tuple::new(AttrSet::from_indices(9, (0..9).filter(|_| rng.random())));
            for m in [1, 3, 5] {
                let inst = SocInstance::new(&log, &t, m);
                let want = BruteForce.solve(&inst).satisfied;
                let serial = generous(1).solve(&inst);
                let parallel = generous(4).solve(&inst);
                assert_eq!(serial.satisfied, want, "serial missed the optimum, m {m}");
                assert_eq!(
                    parallel.satisfied, want,
                    "parallel missed the optimum, m {m}"
                );
            }
        }
    }

    #[test]
    fn parallel_solver_is_deterministic_given_workers() {
        let log = workload(9, 30, 10);
        let t = Tuple::from_bitstring("1101101101").unwrap();
        let inst = SocInstance::new(&log, &t, 4);
        for workers in [2, 4] {
            let solver = MfiSolver {
                workers,
                adaptive: false, // force the parallel path even on 1-core hosts
                ..Default::default()
            };
            let a = solver.solve(&inst);
            let b = solver.solve(&inst);
            assert_eq!(a.retained, b.retained, "workers {workers}");
            assert_eq!(a.satisfied, b.satisfied);
        }
    }

    #[test]
    fn shared_mfi_honors_parallel_mining() {
        let log = workload(13, 20, 8);
        let t = Tuple::from_bitstring("11011011").unwrap();
        let inst = SocInstance::new(&log, &t, 3);
        let shared = SharedMfi::new(MfiSolver {
            workers: 3,
            adaptive: false,
            ..Default::default()
        });
        shared.prime(&log);
        assert!(shared.cached_thresholds() >= 1);
        let sol = shared.solve(&inst);
        let direct = MfiSolver {
            workers: 3,
            adaptive: false,
            ..Default::default()
        }
        .solve(&inst);
        assert_eq!(sol.retained, direct.retained);
        assert_eq!(sol.satisfied, direct.satisfied);
    }
}

#[cfg(test)]
mod prime_contention_tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    /// Regression test for the `prime` cache-miss path: mining must run
    /// outside the write lock, so readers observe only brief lock holds
    /// while a miss is being mined on another thread.
    #[test]
    fn readers_do_not_stall_behind_prime() {
        // A workload whose mining run takes long enough to measure: many
        // rows over a wide universe, so each walk pays real support work.
        let mut rng = StdRng::seed_from_u64(0xC0_11EC);
        let m_attrs = 26;
        let mut sets = Vec::new();
        for _ in 0..3000 {
            let len = rng.random_range(2..=4usize);
            let mut attrs = AttrSet::empty(m_attrs);
            while attrs.count() < len {
                attrs.insert(rng.random_range(0..m_attrs));
            }
            sets.push(attrs);
        }
        let log = QueryLog::from_attr_sets(m_attrs, sets);
        let solver = MfiSolver::default();
        let r = solver.threshold.initial(log.len());

        // Calibrate: how long does one mining run take here? Too fast and
        // the test cannot discriminate a stall — skip rather than flake.
        let start = Instant::now();
        let _ = solver.mine(&log, r);
        let mining_time = start.elapsed();
        if mining_time < Duration::from_millis(50) {
            eprintln!("mining too fast to measure contention ({mining_time:?}); skipping");
            return;
        }

        let shared = SharedMfi::new(solver);
        let done = AtomicBool::new(false);
        let max_read_wait = std::thread::scope(|scope| {
            scope.spawn(|| {
                shared.prime(&log);
                done.store(true, Ordering::Release);
            });
            let mut worst = Duration::ZERO;
            while !done.load(Ordering::Acquire) {
                let begin = Instant::now();
                let _ = shared.cached_thresholds(); // takes the read lock
                worst = worst.max(begin.elapsed());
                std::thread::yield_now();
            }
            worst
        });
        assert!(
            max_read_wait < mining_time / 2,
            "a reader stalled {max_read_wait:?} behind a {mining_time:?} mining run — \
             prime is mining inside the write lock again"
        );
    }
}

#[cfg(test)]
mod backtracking_tests {
    use super::*;
    use crate::{BruteForce, SocAlgorithm};
    use soc_data::Tuple;

    #[test]
    fn deterministic_solver_matches_brute_force() {
        let log = QueryLog::from_bitstrings(&[
            "110000", "100100", "010100", "000101", "001010", "110100", "000110",
        ])
        .unwrap();
        let solver = MfiSolver::deterministic();
        assert!(solver.is_exact());
        for bits in ["110111", "111111", "010101"] {
            let t = Tuple::from_bitstring(bits).unwrap();
            for m in 0..=6 {
                let inst = SocInstance::new(&log, &t, m);
                assert_eq!(
                    solver.solve(&inst).satisfied,
                    BruteForce.solve(&inst).satisfied,
                    "t = {bits}, m = {m}"
                );
            }
        }
    }
}
