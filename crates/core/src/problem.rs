//! Problem SOC-CB-QL: instances, solutions, and the algorithm trait.

use std::fmt;

use soc_data::{AttrSet, QueryLog, Tuple};

/// An instance of problem **SOC-CB-QL** (§II.A): given a query log `Q`
/// with conjunctive Boolean retrieval semantics, a new tuple `t`, and an
/// integer `m`, compute a compressed tuple `t'` retaining at most `m`
/// attributes such that the number of queries retrieving `t'` is maximal.
#[derive(Clone, Copy)]
pub struct SocInstance<'a> {
    /// The query log (the workload to be visible to).
    pub log: &'a QueryLog,
    /// The new tuple to advertise.
    pub tuple: &'a Tuple,
    /// Attribute budget.
    pub m: usize,
}

impl<'a> SocInstance<'a> {
    /// Creates an instance.
    ///
    /// # Panics
    /// Panics if the tuple's universe differs from the log's width.
    pub fn new(log: &'a QueryLog, tuple: &'a Tuple, m: usize) -> Self {
        assert_eq!(
            tuple.universe(),
            log.num_attrs(),
            "tuple universe must match query-log width"
        );
        Self { log, tuple, m }
    }

    /// The effective budget: never more than the tuple's 1-count (a
    /// compression cannot invent attributes).
    pub fn effective_m(&self) -> usize {
        self.m.min(self.tuple.count())
    }

    /// Objective value of a retained attribute set.
    pub fn objective(&self, retained: &AttrSet) -> usize {
        self.log.satisfied_count(&Tuple::new(retained.clone()))
    }

    /// Wraps a retained set into a checked [`Solution`].
    ///
    /// # Panics
    /// Panics if `retained` is not a subset of the tuple or exceeds the
    /// budget — algorithms must never produce such sets.
    pub fn solution(&self, retained: AttrSet) -> Solution {
        assert!(
            retained.is_subset(self.tuple.attrs()),
            "solution retains attributes the tuple does not have"
        );
        assert!(
            retained.count() <= self.m,
            "solution exceeds the attribute budget"
        );
        let satisfied = self.objective(&retained);
        Solution {
            retained,
            satisfied,
        }
    }

    /// Wraps a retained set whose objective the caller *already computed*
    /// into a checked [`Solution`], skipping the recount that
    /// [`SocInstance::solution`] pays. Exact solvers (ILP, MFI, brute
    /// force) and the projection wrapper all finish with the objective in
    /// hand; recounting it doubled the per-solve counting work.
    ///
    /// # Panics
    /// Panics if `retained` is not a subset of the tuple or exceeds the
    /// budget. Debug builds additionally recount and assert the claimed
    /// objective — differential tests run in debug, so a solver that
    /// miscounts cannot slip through.
    pub fn solution_with_known_objective(&self, retained: AttrSet, satisfied: usize) -> Solution {
        assert!(
            retained.is_subset(self.tuple.attrs()),
            "solution retains attributes the tuple does not have"
        );
        assert!(
            retained.count() <= self.m,
            "solution exceeds the attribute budget"
        );
        debug_assert_eq!(
            self.objective(&retained),
            satisfied,
            "claimed objective does not match a recount for {retained}"
        );
        Solution {
            retained,
            satisfied,
        }
    }
}

impl fmt::Debug for SocInstance<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SocInstance")
            .field("queries", &self.log.len())
            .field("attrs", &self.log.num_attrs())
            .field("m", &self.m)
            .finish()
    }
}

/// A (candidate) solution: the retained attributes and the number of
/// queries the compressed tuple satisfies.
#[derive(Clone, PartialEq, Eq)]
pub struct Solution {
    /// Attributes retained in the compressed tuple `t'`.
    pub retained: AttrSet,
    /// Number of queries of the log that retrieve `t'`.
    pub satisfied: usize,
}

impl Solution {
    /// The compressed tuple `t'`.
    pub fn tuple(&self) -> Tuple {
        Tuple::new(self.retained.clone())
    }
}

impl fmt::Debug for Solution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Solution(retained={}, satisfied={})",
            self.retained, self.satisfied
        )
    }
}

/// A SOC-CB-QL algorithm: exact or heuristic.
pub trait SocAlgorithm {
    /// Short stable name used in benchmark output (matches the paper's
    /// figure legends, e.g. `"ILP"`, `"MaxFreqItemSets"`, `"ConsumeAttr"`).
    fn name(&self) -> &'static str;

    /// Whether the algorithm guarantees optimality.
    fn is_exact(&self) -> bool;

    /// Solves the instance.
    fn solve(&self, instance: &SocInstance<'_>) -> Solution;
}

impl<A: SocAlgorithm + ?Sized> SocAlgorithm for &A {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn is_exact(&self) -> bool {
        (**self).is_exact()
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        (**self).solve(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1() -> (QueryLog, Tuple) {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        (log, t)
    }

    #[test]
    fn objective_matches_paper() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 3);
        let retained = AttrSet::from_indices(6, [0, 1, 3]);
        assert_eq!(inst.objective(&retained), 3);
        let sol = inst.solution(retained);
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.tuple().attrs().to_bitstring(), "110100");
    }

    #[test]
    fn effective_m_caps_at_tuple_size() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 10);
        assert_eq!(inst.effective_m(), 5);
    }

    #[test]
    #[should_panic(expected = "does not have")]
    fn solution_must_be_subset() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 3);
        let _ = inst.solution(AttrSet::from_indices(6, [2])); // turbo not in t
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn solution_must_respect_budget() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 2);
        let _ = inst.solution(AttrSet::from_indices(6, [0, 1, 3]));
    }
}
