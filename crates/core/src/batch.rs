//! Parallel batch solving: score many candidate tuples against one query
//! log. This is the deployment shape of a seller-side recommendation
//! service — one workload, a stream of new listings — and the shape the
//! paper's experiments take (averages over 100 randomly selected cars).

use soc_data::{QueryLog, Tuple};

use crate::{SocAlgorithm, SocInstance, Solution};

/// Solves one instance per tuple, in parallel over `threads` scoped
/// worker threads (input order is preserved in the output).
///
/// Algorithms are shared immutably across threads; use
/// [`crate::SharedMfi`] to share the MFI preprocessing cache as well.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_batch<A>(
    algorithm: &A,
    log: &QueryLog,
    tuples: &[Tuple],
    m: usize,
    threads: usize,
) -> Vec<Solution>
where
    A: SocAlgorithm + Sync + ?Sized,
{
    assert!(threads > 0, "need at least one worker thread");
    if tuples.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(tuples.len());
    let mut results: Vec<Option<Solution>> = vec![None; tuples.len()];
    let chunk = tuples.len().div_ceil(threads);

    std::thread::scope(|scope| {
        for (slot_chunk, tuple_chunk) in results.chunks_mut(chunk).zip(tuples.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, tuple) in slot_chunk.iter_mut().zip(tuple_chunk) {
                    let inst = SocInstance::new(log, tuple, m);
                    *slot = Some(algorithm.solve(&inst));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|s| s.expect("every slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, ConsumeAttr, MfiSolver, SharedMfi};
    use soc_data::{AttrSet, QueryLog};

    fn setup() -> (QueryLog, Vec<Tuple>) {
        let log = QueryLog::from_bitstrings(&[
            "110000", "100100", "010100", "000101", "001010", "110100",
        ])
        .unwrap();
        let tuples = (0..12u32)
            .map(|i| {
                Tuple::new(AttrSet::from_indices(
                    6,
                    (0..6).filter(move |&j| (i >> (j % 4)) & 1 == 1 || j == (i as usize % 6)),
                ))
            })
            .collect();
        (log, tuples)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (log, tuples) = setup();
        for threads in [1, 2, 4, 16] {
            let batch = solve_batch(&BruteForce, &log, &tuples, 3, threads);
            assert_eq!(batch.len(), tuples.len());
            for (tuple, sol) in tuples.iter().zip(&batch) {
                let seq = BruteForce.solve(&SocInstance::new(&log, tuple, 3));
                assert_eq!(sol.satisfied, seq.satisfied, "threads = {threads}");
            }
        }
    }

    #[test]
    fn shared_mfi_cache_is_safe_and_exact() {
        let (log, tuples) = setup();
        let shared = SharedMfi::new(MfiSolver::default());
        shared.prime(&log);
        let batch = solve_batch(&shared, &log, &tuples, 3, 4);
        for (tuple, sol) in tuples.iter().zip(&batch) {
            let want = BruteForce.solve(&SocInstance::new(&log, tuple, 3));
            assert_eq!(sol.satisfied, want.satisfied);
        }
        assert!(shared.cached_thresholds() >= 1);
    }

    #[test]
    fn greedy_batch() {
        let (log, tuples) = setup();
        let batch = solve_batch(&ConsumeAttr, &log, &tuples, 2, 3);
        for sol in &batch {
            assert!(sol.retained.count() <= 2);
        }
    }

    #[test]
    fn empty_input() {
        let (log, _) = setup();
        assert!(solve_batch(&BruteForce, &log, &[], 3, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let (log, tuples) = setup();
        let _ = solve_batch(&BruteForce, &log, &tuples, 3, 0);
    }
}
