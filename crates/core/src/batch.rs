//! Parallel batch solving: score many candidate tuples against one query
//! log. This is the deployment shape of a seller-side recommendation
//! service — one workload, a stream of new listings — and the shape the
//! paper's experiments take (averages over 100 randomly selected cars).

use soc_data::{QueryLog, Tuple};
use soc_obs::{counter, histogram};
use soc_pool::Pool;

use crate::{SocAlgorithm, SocInstance, Solution};

/// How [`solve_batch_with`] schedules its task groups.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Cost-model driven (the default, what [`solve_batch`] uses): run
    /// on the work-stealing pool when the batch's estimated work clears
    /// [`INLINE_FLOOR`] per worker *and* the host has more than one
    /// hardware thread; otherwise execute inline on the calling thread.
    /// Below the crossover, parallel machinery is pure overhead — the
    /// inline path is the measured-serial cost plus one cheap estimate.
    Adaptive,
    /// Always schedule on the work-stealing pool, regardless of scale.
    /// Benchmarks use this to measure the machinery head-on (and to
    /// locate the crossover the adaptive floor is tuned against).
    ForcePool,
    /// Always execute inline on the calling thread (the serial
    /// baseline).
    ForceSerial,
}

/// Estimated batch work (in [`plan_groups`] cost units — roughly
/// "projected attribute widths") below which, per worker thread, the
/// adaptive policy solves inline. Tuned on the serving scaling grid
/// (see `BENCH_serving.json` `grid`/`crossover`): at Quick scale a
/// 10-car projected batch costs ~150 units and measures at single-digit
/// milliseconds, where pool spawn + queue synchronisation never repaid
/// themselves on any measured host.
const INLINE_FLOOR: usize = 192;

/// Solves one instance per tuple (input order is preserved in the
/// output), scheduling adaptively: batches whose estimated work can pay
/// for parallelism run across a work-stealing pool; batches below the
/// crossover (or on single-core hosts, where parallelism cannot pay at
/// any scale) run inline at plain serial cost.
///
/// On the pool path, tuples are grouped into contiguous stealable tasks
/// by [`plan_groups`]: small instances are batched together so per-task
/// pool overhead (queue push, steal synchronisation, result routing)
/// stops dominating when the batch is a stream of tiny instances, while
/// expensive instances still close their group early and remain
/// individually stealable — per-instance cost varies by orders of
/// magnitude across tuples (and algorithms), which starves the static
/// split of [`solve_batch_chunked`]. The result is identical to the
/// sequential solve in every slot under every policy; only the schedule
/// differs.
///
/// Algorithms are shared immutably across threads; use
/// [`crate::SharedMfi`] to share the MFI preprocessing cache as well.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_batch<A>(
    algorithm: &A,
    log: &QueryLog,
    tuples: &[Tuple],
    m: usize,
    threads: usize,
) -> Vec<Solution>
where
    A: SocAlgorithm + Sync + ?Sized,
{
    solve_batch_with(algorithm, log, tuples, m, threads, BatchPolicy::Adaptive)
}

/// [`solve_batch`] with an explicit scheduling policy. Results are
/// identical across policies; only cost differs.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_batch_with<A>(
    algorithm: &A,
    log: &QueryLog,
    tuples: &[Tuple],
    m: usize,
    threads: usize,
    policy: BatchPolicy,
) -> Vec<Solution>
where
    A: SocAlgorithm + Sync + ?Sized,
{
    assert!(threads > 0, "need at least one worker thread");
    if tuples.is_empty() {
        return Vec::new();
    }
    let _span = soc_obs::span("solve_batch");
    let solve_one = |tuple: &Tuple| {
        let t0 = soc_obs::metrics_then_now();
        let solution = algorithm.solve(&SocInstance::new(log, tuple, m));
        if let Some(t0) = t0 {
            histogram!("serving.instance_us").record(soc_obs::clock::elapsed_us(t0));
        }
        solution
    };
    let groups = plan_groups(tuples, threads);
    let pool_pays = match policy {
        BatchPolicy::ForcePool => true,
        BatchPolicy::ForceSerial => false,
        BatchPolicy::Adaptive => {
            let total: usize = tuples.iter().map(tuple_cost).sum();
            threads > 1
                && groups.len() > 1
                && host_parallelism() > 1
                && total >= INLINE_FLOOR * threads
        }
    };
    if !pool_pays {
        counter!("serving.batch_inline").inc();
        return tuples.iter().map(solve_one).collect();
    }
    counter!("serving.batch_pool").inc();
    let pool = Pool::new(threads.min(groups.len()));
    let nested = pool.map(&groups, |group| {
        tuples[group.clone()]
            .iter()
            .map(solve_one)
            .collect::<Vec<_>>()
    });
    nested.into_iter().flatten().collect()
}

/// Cached `std::thread::available_parallelism` (the syscall shows up in
/// profiles when every small batch pays it).
pub(crate) fn host_parallelism() -> usize {
    use std::sync::OnceLock;
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// The per-tuple cost estimate: `|t| + 1`, the width of the instance
/// after projection onto the tuple ([`QueryLog::project_onto`] keeps
/// exactly the attributes of `t`), which is the universe every solver
/// effectively runs in.
fn tuple_cost(t: &Tuple) -> usize {
    t.attrs().count() + 1
}

/// Splits the batch into contiguous groups, each one stealable pool
/// task, by accumulated [`tuple_cost`]: a group closes once it holds a
/// quarter of one thread's fair share. Tiny instances batch up —
/// roughly `4 × threads` tasks total, enough granularity for stealing
/// to balance — while a wide tuple blows through the target on its own
/// and never hides a straggler inside a large batch.
fn plan_groups(tuples: &[Tuple], threads: usize) -> Vec<std::ops::Range<usize>> {
    let total: usize = tuples.iter().map(tuple_cost).sum();
    let target = (total / (threads * 4)).max(1);
    let mut groups = Vec::new();
    let mut start = 0;
    let mut acc = 0;
    for (i, t) in tuples.iter().enumerate() {
        acc += tuple_cost(t);
        if acc >= target {
            groups.push(start..i + 1);
            start = i + 1;
            acc = 0;
        }
    }
    if start < tuples.len() {
        groups.push(start..tuples.len());
    }
    groups
}

/// The pre-PR-2 static path: split the batch into `threads` contiguous
/// chunks, one scoped thread each. Kept as the differential baseline for
/// [`solve_batch`] tests and the `batch_serving` bench — stragglers
/// dominate its wall-clock on skewed workloads.
///
/// # Panics
/// Panics if `threads == 0`.
pub fn solve_batch_chunked<A>(
    algorithm: &A,
    log: &QueryLog,
    tuples: &[Tuple],
    m: usize,
    threads: usize,
) -> Vec<Solution>
where
    A: SocAlgorithm + Sync + ?Sized,
{
    assert!(threads > 0, "need at least one worker thread");
    if tuples.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(tuples.len());
    let mut results: Vec<Option<Solution>> = vec![None; tuples.len()];
    let chunk = tuples.len().div_ceil(threads);

    std::thread::scope(|scope| {
        for (slot_chunk, tuple_chunk) in results.chunks_mut(chunk).zip(tuples.chunks(chunk)) {
            scope.spawn(move || {
                for (slot, tuple) in slot_chunk.iter_mut().zip(tuple_chunk) {
                    let inst = SocInstance::new(log, tuple, m);
                    *slot = Some(algorithm.solve(&inst));
                }
            });
        }
    });

    results
        .into_iter()
        .map(|s| s.expect("every slot is filled by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BruteForce, ConsumeAttr, LocalSearch, MfiSolver, SharedMfi};
    use soc_data::{AttrSet, QueryLog};

    fn setup() -> (QueryLog, Vec<Tuple>) {
        let log = QueryLog::from_bitstrings(&[
            "110000", "100100", "010100", "000101", "001010", "110100",
        ])
        .unwrap();
        let tuples = (0..12u32)
            .map(|i| {
                Tuple::new(AttrSet::from_indices(
                    6,
                    (0..6).filter(move |&j| (i >> (j % 4)) & 1 == 1 || j == (i as usize % 6)),
                ))
            })
            .collect();
        (log, tuples)
    }

    #[test]
    fn parallel_matches_sequential() {
        let (log, tuples) = setup();
        for threads in [1, 2, 4, 16] {
            for policy in [
                BatchPolicy::Adaptive,
                BatchPolicy::ForcePool,
                BatchPolicy::ForceSerial,
            ] {
                let batch = solve_batch_with(&BruteForce, &log, &tuples, 3, threads, policy);
                assert_eq!(batch.len(), tuples.len());
                for (tuple, sol) in tuples.iter().zip(&batch) {
                    let seq = BruteForce.solve(&SocInstance::new(&log, tuple, 3));
                    assert_eq!(
                        sol.satisfied, seq.satisfied,
                        "threads = {threads}, {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn stealing_result_order_matches_sequential_order() {
        // Deterministic solutions (BruteForce) let us compare retained
        // sets slot by slot, proving every result landed in the slot of
        // the tuple that produced it regardless of who stole what.
        // ForcePool so the pool path is exercised even on single-core
        // hosts, where the adaptive policy would solve inline.
        let (log, tuples) = setup();
        let sequential: Vec<Solution> = tuples
            .iter()
            .map(|t| BruteForce.solve(&SocInstance::new(&log, t, 3)))
            .collect();
        for threads in [2, 4, 7] {
            let batch = solve_batch_with(
                &BruteForce,
                &log,
                &tuples,
                3,
                threads,
                BatchPolicy::ForcePool,
            );
            for (i, (got, want)) in batch.iter().zip(&sequential).enumerate() {
                assert_eq!(got.retained, want.retained, "slot {i}, threads {threads}");
                assert_eq!(got.satisfied, want.satisfied);
            }
        }
    }

    #[test]
    fn more_threads_than_tuples() {
        let (log, tuples) = setup();
        let few = &tuples[..3];
        let batch = solve_batch(&BruteForce, &log, few, 3, 32);
        assert_eq!(batch.len(), 3);
        for (tuple, sol) in few.iter().zip(&batch) {
            let seq = BruteForce.solve(&SocInstance::new(&log, tuple, 3));
            assert_eq!(sol.retained, seq.retained);
        }
    }

    #[test]
    fn skewed_cost_workload_stays_correct_and_ordered() {
        // First tuples are wide (expensive LocalSearch instances), the
        // tail is cheap — the shape that straggles under static chunking
        // because one chunk holds all the expensive work.
        let log = QueryLog::from_bitstrings(&[
            "11000000000000",
            "00110000000000",
            "00001100000000",
            "00000011000000",
            "00000000110000",
            "00000000001100",
            "10000000000010",
            "01000000000001",
        ])
        .unwrap();
        let mut tuples = vec![Tuple::new(AttrSet::full(14)); 4];
        tuples.extend((0..20).map(|i| Tuple::new(AttrSet::from_indices(14, [i % 14]))));
        let algo = LocalSearch::default();
        let stealing = solve_batch_with(&algo, &log, &tuples, 5, 4, BatchPolicy::ForcePool);
        let chunked = solve_batch_chunked(&algo, &log, &tuples, 5, 4);
        assert_eq!(stealing.len(), chunked.len());
        for (i, (a, b)) in stealing.iter().zip(&chunked).enumerate() {
            assert_eq!(a.retained, b.retained, "slot {i}");
            assert_eq!(a.satisfied, b.satisfied, "slot {i}");
        }
    }

    #[test]
    fn chunked_and_stealing_agree() {
        let (log, tuples) = setup();
        for threads in [1, 3, 8] {
            let a = solve_batch_with(
                &BruteForce,
                &log,
                &tuples,
                2,
                threads,
                BatchPolicy::ForcePool,
            );
            let b = solve_batch_chunked(&BruteForce, &log, &tuples, 2, threads);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.retained, y.retained);
                assert_eq!(x.satisfied, y.satisfied);
            }
        }
    }

    #[test]
    fn adaptive_boundary_mixed_batch_matches_chunked() {
        // The adaptive-grouping boundary case: one huge instance among a
        // stream of tiny ones, sized to straddle the inline floor. Both
        // sides of the floor (and both scheduling outcomes) must produce
        // results and ordering identical to the static chunked split.
        let log = QueryLog::from_bitstrings(&[
            "11000000000000",
            "00110000000000",
            "00001100000000",
            "00000011000000",
            "00000000110000",
            "00000000001100",
            "10000000000010",
            "01000000000001",
        ])
        .unwrap();
        // 40 tiny tuples (cost 2 each) + 1 full-width tuple: total cost
        // ~95 — below the floor at 2 threads, above nothing; then a
        // repetition factor pushes a second batch over the floor.
        let mut small: Vec<Tuple> = (0..40)
            .map(|i| Tuple::new(AttrSet::from_indices(14, [i % 14])))
            .collect();
        small.insert(17, Tuple::new(AttrSet::full(14)));
        let mut big = small.clone();
        for rep in 0..12 {
            big.extend(small.iter().cloned());
            big.insert(rep * 3, Tuple::new(AttrSet::full(14)));
        }
        let algo = LocalSearch::default();
        for tuples in [&small, &big] {
            let adaptive = solve_batch(&algo, &log, tuples, 5, 4);
            let chunked = solve_batch_chunked(&algo, &log, tuples, 5, 4);
            assert_eq!(adaptive.len(), chunked.len());
            for (i, (a, b)) in adaptive.iter().zip(&chunked).enumerate() {
                assert_eq!(a.retained, b.retained, "slot {i} ({} tuples)", tuples.len());
                assert_eq!(a.satisfied, b.satisfied, "slot {i}");
            }
        }
    }

    #[test]
    fn shared_mfi_cache_is_safe_and_exact() {
        let (log, tuples) = setup();
        let shared = SharedMfi::new(MfiSolver::default());
        shared.prime(&log);
        let batch = solve_batch(&shared, &log, &tuples, 3, 4);
        for (tuple, sol) in tuples.iter().zip(&batch) {
            let want = BruteForce.solve(&SocInstance::new(&log, tuple, 3));
            assert_eq!(sol.satisfied, want.satisfied);
        }
        assert!(shared.cached_thresholds() >= 1);
    }

    #[test]
    fn greedy_batch() {
        let (log, tuples) = setup();
        let batch = solve_batch(&ConsumeAttr, &log, &tuples, 2, 3);
        for sol in &batch {
            assert!(sol.retained.count() <= 2);
        }
    }

    #[test]
    fn plan_groups_is_an_ordered_partition() {
        let tuples: Vec<Tuple> = (0..57)
            .map(|i| Tuple::new(AttrSet::from_indices(10, [i % 10])))
            .collect();
        for threads in [1, 2, 4, 13] {
            let groups = plan_groups(&tuples, threads);
            assert!(!groups.is_empty());
            let mut next = 0;
            for g in &groups {
                assert_eq!(g.start, next, "groups must tile the batch in order");
                assert!(g.end > g.start, "no empty groups");
                next = g.end;
            }
            assert_eq!(next, tuples.len());
        }
    }

    #[test]
    fn plan_groups_batches_small_and_isolates_wide() {
        // 64 one-attribute tuples plus 2 full-width tuples, 4 threads:
        // the tiny tuples must share tasks (fewer groups than tuples)
        // and a wide tuple must close its group at once, so the group
        // containing a wide tuple never extends past it.
        let mut tuples: Vec<Tuple> = (0..32)
            .map(|i| Tuple::new(AttrSet::from_indices(24, [i % 24])))
            .collect();
        tuples.push(Tuple::new(AttrSet::full(24)));
        tuples.extend((0..32).map(|i| Tuple::new(AttrSet::from_indices(24, [i % 24]))));
        tuples.push(Tuple::new(AttrSet::full(24)));
        let groups = plan_groups(&tuples, 4);
        assert!(
            groups.len() < tuples.len(),
            "small instances must batch: {} groups for {} tuples",
            groups.len(),
            tuples.len()
        );
        for (i, t) in tuples.iter().enumerate() {
            if t.attrs().count() == 24 {
                let g = groups.iter().find(|g| g.contains(&i)).unwrap();
                assert_eq!(g.end, i + 1, "wide tuple at {i} must close its group");
            }
        }
    }

    #[test]
    fn many_tiny_tuples_match_sequential() {
        // The shape the grouping targets: a long stream of cheap
        // instances. Results must still land slot-for-slot.
        let (log, _) = setup();
        let tuples: Vec<Tuple> = (0..100)
            .map(|i| Tuple::new(AttrSet::from_indices(6, [i % 6, (i / 6) % 6])))
            .collect();
        let batch = solve_batch(&BruteForce, &log, &tuples, 2, 3);
        assert_eq!(batch.len(), tuples.len());
        for (tuple, sol) in tuples.iter().zip(&batch) {
            let seq = BruteForce.solve(&SocInstance::new(&log, tuple, 2));
            assert_eq!(sol.retained, seq.retained);
            assert_eq!(sol.satisfied, seq.satisfied);
        }
    }

    #[test]
    fn empty_input() {
        let (log, _) = setup();
        assert!(solve_batch(&BruteForce, &log, &[], 3, 4).is_empty());
        assert!(solve_batch_chunked(&BruteForce, &log, &[], 3, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let (log, tuples) = setup();
        let _ = solve_batch(&BruteForce, &log, &tuples, 3, 0);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn chunked_zero_threads_panics() {
        let (log, tuples) = setup();
        let _ = solve_batch_chunked(&BruteForce, &log, &tuples, 3, 0);
    }
}
