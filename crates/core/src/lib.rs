//! # soc-core
//!
//! Algorithms for *"Standing Out in a Crowd: Selecting Attributes for
//! Maximum Visibility"* (ICDE 2008): given a query log `Q`, a new tuple
//! `t`, and a budget `m`, retain the `m` attributes of `t` that maximize
//! the number of queries retrieving the compressed tuple (problem
//! **SOC-CB-QL**, NP-complete by reduction from Clique).
//!
//! Exact algorithms:
//! - [`BruteForce`] — enumerate all `C(|t|, m)` compressions (§IV.A);
//! - [`IlpSolver`] — the integer linear program of §IV.B, solved by the
//!   from-scratch branch-and-bound in [`soc_solver`];
//! - [`MfiSolver`] — the maximal-frequent-itemset algorithm of §IV.C,
//!   built on the random-walk miner in [`soc_itemsets`], with
//!   preprocessing support ([`MfiPreprocessed`]).
//!
//! Greedy heuristics (§IV.D): [`ConsumeAttr`], [`ConsumeAttrCumul`],
//! [`ConsumeQueries`].
//!
//! Variants (§II.B, §V) live in [`variants`]: per-attribute objective,
//! SOC-CB-D domination, SOC-Topk with global scoring, disjunctive
//! retrieval, and categorical / numeric reductions.
//!
//! ```
//! use soc_core::{BruteForce, SocAlgorithm, SocInstance};
//! use soc_data::{QueryLog, Tuple};
//!
//! // The paper's Fig 1 example.
//! let log = QueryLog::from_bitstrings(&[
//!     "110000", "100100", "010100", "000101", "001010",
//! ]).unwrap();
//! let t = Tuple::from_bitstring("110111").unwrap();
//! let sol = BruteForce.solve(&SocInstance::new(&log, &t, 3));
//! assert_eq!(sol.satisfied, 3); // AC, FourDoor, PowerDoors
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod batch;
mod brute_force;
mod greedy;
mod ilp;
mod local_search;
mod mfi;
mod problem;
mod reduce;
pub mod variants;

pub use batch::{solve_batch, solve_batch_chunked, solve_batch_with, BatchPolicy};
pub use brute_force::BruteForce;
pub use greedy::{ConsumeAttr, ConsumeAttrCumul, ConsumeQueries};
pub use ilp::IlpSolver;
pub use local_search::LocalSearch;
pub use mfi::{MfiPreprocessed, MfiSolver, MinerKind, SharedMfi};
pub use problem::{SocAlgorithm, SocInstance, Solution};
pub use reduce::{Projected, ReducedInstance};
pub use soc_solver::SolveStats;
