//! Swap-based local search: an extension beyond the paper's three
//! greedies (§IV.D).
//!
//! Starts from the best greedy solution and hill-climbs: repeatedly swap
//! one retained attribute for one unretained attribute of the tuple if
//! the swap strictly increases the satisfied weight, until no improving
//! swap exists (a 1-swap local optimum). Cost per round is
//! `O(m · (|t| − m))` objective evaluations; quality is sandwiched
//! between the seeding greedy and the exact optimum by construction —
//! property-tested in the crate tests.

use crate::{ConsumeAttr, ConsumeAttrCumul, SocAlgorithm, SocInstance, Solution};

/// Greedy-seeded 1-swap hill climber.
#[derive(Clone, Debug)]
pub struct LocalSearch {
    /// Cap on improvement rounds (each round scans all swaps once).
    pub max_rounds: usize,
}

impl Default for LocalSearch {
    fn default() -> Self {
        Self { max_rounds: 64 }
    }
}

impl LocalSearch {
    /// Improves `start` to a 1-swap local optimum.
    pub fn improve(&self, instance: &SocInstance<'_>, start: Solution) -> Solution {
        let t = instance.tuple.attrs();
        let mut retained = start.retained;
        let mut best = start.satisfied;

        for _ in 0..self.max_rounds {
            let mut improved = false;
            let inside: Vec<usize> = retained.iter().collect();
            let outside: Vec<usize> = t.iter().filter(|&j| !retained.contains(j)).collect();
            'scan: for &out in &inside {
                for &in_ in &outside {
                    let candidate = retained.without(out).with(in_);
                    let value = instance.objective(&candidate);
                    if value > best {
                        retained = candidate;
                        best = value;
                        improved = true;
                        break 'scan; // restart the scan from the new point
                    }
                }
            }
            if !improved {
                break;
            }
        }
        instance.solution_with_known_objective(retained, best)
    }
}

impl SocAlgorithm for LocalSearch {
    fn name(&self) -> &'static str {
        "LocalSearch"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        // Seed with the better of the two frequency greedies.
        let a = ConsumeAttr.solve(instance);
        let b = ConsumeAttrCumul.solve(instance);
        let seed = if a.satisfied >= b.satisfied { a } else { b };
        self.improve(instance, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::{QueryLog, Tuple};

    fn setup() -> (QueryLog, Tuple) {
        // A workload where frequency greedies are suboptimal: attribute 0
        // is individually popular but never co-occurs usefully.
        let log = QueryLog::from_bitstrings(&[
            "10000", "10000", "10000", "01100", "01100", "01010", "00110",
        ])
        .unwrap();
        let t = Tuple::from_bitstring("11111").unwrap();
        (log, t)
    }

    #[test]
    fn improves_on_greedy_seed() {
        let (log, t) = setup();
        let inst = SocInstance::new(&log, &t, 3);
        let greedy = ConsumeAttr.solve(&inst);
        let local = LocalSearch::default().solve(&inst);
        let opt = BruteForce.solve(&inst);
        assert!(local.satisfied >= greedy.satisfied);
        assert!(local.satisfied <= opt.satisfied);
        // On this instance the climber actually reaches the optimum.
        assert_eq!(local.satisfied, opt.satisfied);
    }

    #[test]
    fn never_worse_than_seed_on_fig1() {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        for m in 0..=5 {
            let inst = SocInstance::new(&log, &t, m);
            let seed = ConsumeAttrCumul.solve(&inst);
            let improved = LocalSearch::default().improve(&inst, seed.clone());
            assert!(improved.satisfied >= seed.satisfied, "m = {m}");
            assert!(improved.retained.is_subset(t.attrs()));
            assert!(improved.retained.count() <= m);
        }
    }

    #[test]
    fn empty_budget() {
        let (log, t) = setup();
        let inst = SocInstance::new(&log, &t, 0);
        let sol = LocalSearch::default().solve(&inst);
        assert_eq!(sol.satisfied, 0);
        assert_eq!(sol.retained.count(), 0);
    }
}
