//! Problem SOC-CB-D (§II.B): maximize the number of *database tuples
//! dominated* by the compressed tuple — the variant for sellers who can
//! see the competition but not the query log.
//!
//! Solved exactly as §V prescribes: "replace the query log with the
//! database" (each competitor tuple becomes a conjunctive query; `t'`
//! dominates it iff that query retrieves `t'`).

use crate::{SocAlgorithm, SocInstance, Solution};
use soc_data::{Database, Tuple};

/// Result of the SOC-CB-D variant.
#[derive(Clone, Debug)]
pub struct DominationSolution {
    /// The winning compression.
    pub solution: Solution,
    /// Number of database tuples dominated (equals
    /// `solution.satisfied` by the reduction; kept for clarity).
    pub dominated: usize,
}

/// Solves SOC-CB-D with any SOC-CB-QL algorithm via the §V reduction.
pub fn solve_soc_cb_d<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    db: &Database,
    tuple: &Tuple,
    m: usize,
) -> DominationSolution {
    let log = db.as_query_log();
    let inst = SocInstance::new(&log, tuple, m);
    let solution = algorithm.solve(&inst);
    let dominated = db.dominated_count(&solution.tuple());
    debug_assert_eq!(dominated, solution.satisfied);
    DominationSolution {
        dominated,
        solution,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    #[test]
    fn paper_example_m4() {
        // §II.B: retaining {AC, FourDoor, PowerDoors, PowerBrakes}
        // dominates t1, t4, t5, t6 — and nothing does better.
        let db = Database::from_bitstrings(&[
            "010100", "011000", "100111", "110101", "110000", "010100", "001100",
        ])
        .unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        let r = solve_soc_cb_d(&BruteForce, &db, &t, 4);
        assert_eq!(r.dominated, 4);
        assert_eq!(r.solution.retained.to_indices(), vec![0, 1, 3, 5]);
    }

    #[test]
    fn domination_monotone_in_budget() {
        let db = Database::from_bitstrings(&["1100", "0110", "1010", "0001"]).unwrap();
        let t = Tuple::from_bitstring("1111").unwrap();
        let mut last = 0;
        for m in 0..=4 {
            let r = solve_soc_cb_d(&BruteForce, &db, &t, m);
            assert!(r.dominated >= last, "m = {m}");
            last = r.dominated;
        }
        assert_eq!(last, 4); // full tuple dominates everything here
    }
}
