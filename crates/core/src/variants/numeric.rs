//! Numeric-data variant (§II.B, §V): publish `m` numeric attribute values
//! to maximize satisfied range queries. Reduced exactly to SOC-CB-QL via
//! [`soc_data::numeric::reduce_numeric`].

use soc_data::numeric::{reduce_numeric, NumTuple, RangeQuery};
use soc_data::AttrSet;

use crate::{SocAlgorithm, SocInstance, Solution};

/// Result of a numeric solve.
#[derive(Clone, Debug)]
pub struct NumericSolution {
    /// Attributes whose values should be published.
    pub publish: AttrSet,
    /// Number of range queries satisfied by the published subset.
    pub satisfied: usize,
}

/// Solves the numeric variant with any SOC-CB-QL algorithm.
pub fn solve_numeric<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    queries: &[RangeQuery],
    tuple: &NumTuple,
    m: usize,
) -> NumericSolution {
    let red = reduce_numeric(queries, tuple);
    let inst = SocInstance::new(&red.log, &red.tuple, m);
    let Solution {
        retained,
        satisfied,
    } = algorithm.solve(&inst);
    NumericSolution {
        publish: retained,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::numeric::Range;

    #[test]
    fn camera_shop() {
        // Attributes: price, megapixels, weight (grams), zoom.
        let t = NumTuple {
            values: vec![450.0, 12.0, 300.0, 5.0],
        };
        let queries = vec![
            RangeQuery {
                conditions: vec![Some(Range::new(0.0, 500.0)), None, None, None],
            },
            RangeQuery {
                conditions: vec![
                    Some(Range::new(0.0, 500.0)),
                    Some(Range::new(10.0, 20.0)),
                    None,
                    None,
                ],
            },
            RangeQuery {
                conditions: vec![None, None, Some(Range::new(0.0, 250.0)), None], // too heavy
            },
            RangeQuery {
                conditions: vec![None, None, None, Some(Range::new(3.0, 10.0))],
            },
        ];
        let r = solve_numeric(&BruteForce, &queries, &t, 2);
        // Publishing {price, megapixels} satisfies queries 1 and 2.
        assert_eq!(r.satisfied, 2);
        let direct = queries.iter().filter(|q| q.matches(&t, &r.publish)).count();
        assert_eq!(direct, 2);
    }

    #[test]
    fn budget_of_one() {
        let t = NumTuple {
            values: vec![100.0, 5.0],
        };
        let queries = vec![
            RangeQuery {
                conditions: vec![Some(Range::new(50.0, 150.0)), None],
            },
            RangeQuery {
                conditions: vec![Some(Range::new(50.0, 150.0)), None],
            },
            RangeQuery {
                conditions: vec![None, Some(Range::new(0.0, 10.0))],
            },
        ];
        let r = solve_numeric(&BruteForce, &queries, &t, 1);
        assert_eq!(r.publish.to_indices(), vec![0]);
        assert_eq!(r.satisfied, 2);
    }
}

/// Ranking direction for the numeric SOC-Topk composition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankDirection {
    /// Lower values rank higher (e.g. ordering by Price).
    Ascending,
    /// Higher values rank higher (e.g. ordering by Megapixels).
    Descending,
}

/// Result of a numeric top-k solve.
#[derive(Clone, Debug)]
pub struct NumericTopkSolution {
    /// Attributes whose values should be published.
    pub publish: AttrSet,
    /// Number of range queries that retrieve the listing within their
    /// top-k.
    pub visible_in: usize,
    /// Number of winnable queries.
    pub winnable_queries: usize,
}

/// The §II.B camera scenario composed end-to-end: buyers issue *range*
/// queries and results are ranked by a numeric attribute (e.g. price),
/// with only the top-k shown. A query retrieves the new listing iff every
/// constrained attribute is published and in range *and* fewer than `k`
/// matching catalog items outrank it on `rank_attr`.
///
/// Ranking is computed by the marketplace, so the ranking attribute's
/// value participates whether or not it is published. Because the rank is
/// a global score (the listing's own `rank_attr` value, independent of
/// the published subset), the winnable-query reduction of §V applies:
/// drop unwinnable queries, then solve the exact SOC-CB-QL reduction.
///
/// Ties are resolved in the new listing's favour.
#[allow(clippy::too_many_arguments)]
pub fn solve_numeric_topk<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    catalog: &[NumTuple],
    queries: &[RangeQuery],
    rank_attr: usize,
    direction: RankDirection,
    k: usize,
    tuple: &NumTuple,
    m: usize,
) -> NumericTopkSolution {
    assert!(k > 0, "top-k retrieval needs k >= 1");
    assert!(
        rank_attr < tuple.values.len(),
        "rank attribute out of range"
    );
    let my_rank = tuple.values[rank_attr];
    let outranks = |v: f64| match direction {
        RankDirection::Ascending => v < my_rank,
        RankDirection::Descending => v > my_rank,
    };

    // Winnable range queries: compatible with the tuple, and with fewer
    // than k better-ranked catalog matches. Catalog items are fully
    // published, so they match a query iff every constrained value is in
    // range.
    let full = AttrSet::full(tuple.values.len());
    let winnable: Vec<RangeQuery> = queries
        .iter()
        .filter(|q| {
            q.compatible_with(tuple) && {
                let better = catalog
                    .iter()
                    .filter(|u| q.matches(u, &full) && outranks(u.values[rank_attr]))
                    .count();
                better < k
            }
        })
        .cloned()
        .collect();
    let winnable_queries = winnable.len();

    let sol = solve_numeric(algorithm, &winnable, tuple, m);
    NumericTopkSolution {
        visible_in: sol.satisfied,
        publish: sol.publish,
        winnable_queries,
    }
}

#[cfg(test)]
mod topk_tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::numeric::Range;

    fn catalog() -> Vec<NumTuple> {
        vec![
            NumTuple {
                values: vec![300.0, 10.0],
            }, // cheap, 10 MP
            NumTuple {
                values: vec![400.0, 20.0],
            },
            NumTuple {
                values: vec![800.0, 30.0],
            }, // pricey, 30 MP
        ]
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            // price <= 500
            RangeQuery {
                conditions: vec![Some(Range::new(0.0, 500.0)), None],
            },
            // mp >= 15
            RangeQuery {
                conditions: vec![None, Some(Range::new(15.0, 100.0))],
            },
            // price <= 600 and mp >= 10
            RangeQuery {
                conditions: vec![Some(Range::new(0.0, 600.0)), Some(Range::new(10.0, 100.0))],
            },
        ]
    }

    #[test]
    fn price_ranking_filters_crowded_queries() {
        // New camera: $450, 18 MP. Ranked by ascending price, k = 1.
        let cam = NumTuple {
            values: vec![450.0, 18.0],
        };
        let r = solve_numeric_topk(
            &BruteForce,
            &catalog(),
            &queries(),
            0,
            RankDirection::Ascending,
            1,
            &cam,
            2,
        );
        // q1 (price<=500): cheaper matches at 300, 400 → 2 ≥ 1, unwinnable.
        // q2 (mp>=15): matching catalog = 400 & 800; cheaper-than-450 match
        //   at 400 → 1 ≥ 1, unwinnable.
        // q3: matches 300, 400 (both cheaper) → unwinnable.
        assert_eq!(r.winnable_queries, 0);
        assert_eq!(r.visible_in, 0);

        // With k = 3 everything opens up.
        let r3 = solve_numeric_topk(
            &BruteForce,
            &catalog(),
            &queries(),
            0,
            RankDirection::Ascending,
            3,
            &cam,
            2,
        );
        assert_eq!(r3.winnable_queries, 3);
        assert_eq!(r3.visible_in, 3); // publishing both attrs covers all
    }

    #[test]
    fn descending_rank_flips_the_competition() {
        // Rank by megapixels descending: the 30 MP model outranks us.
        let cam = NumTuple {
            values: vec![450.0, 18.0],
        };
        let r = solve_numeric_topk(
            &BruteForce,
            &catalog(),
            &queries(),
            1,
            RankDirection::Descending,
            1,
            &cam,
            2,
        );
        // q1 (price<=500): higher-MP matches? 300→10MP no, 400→20MP yes → 1 ≥ 1 unwinnable.
        // q2 (mp>=15): 800 (30MP) and 400 (20MP) both higher → unwinnable.
        // q3: 400 (20MP) higher → unwinnable.
        assert_eq!(r.winnable_queries, 0);
        let r2 = solve_numeric_topk(
            &BruteForce,
            &catalog(),
            &queries(),
            1,
            RankDirection::Descending,
            2,
            &cam,
            2,
        );
        // k = 2: q1 has 1 better → winnable; q3 has 1 better → winnable.
        assert_eq!(r2.winnable_queries, 2);
    }

    #[test]
    fn budget_still_binds() {
        let cam = NumTuple {
            values: vec![450.0, 18.0],
        };
        let r = solve_numeric_topk(
            &BruteForce,
            &catalog(),
            &queries(),
            0,
            RankDirection::Ascending,
            3,
            &cam,
            1,
        );
        // Only one attribute may be published; q3 needs both.
        assert!(r.visible_in <= 2);
        assert_eq!(r.publish.count(), 1);
    }
}
