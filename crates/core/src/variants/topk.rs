//! Problem SOC-Topk (§II.B, §V): queries retrieve only the top-`k`
//! matching tuples under a scoring function, so visibility requires both
//! matching the query *and* out-ranking enough of the competition.
//!
//! The paper notes that for **global** scoring functions — `score(t)`
//! depends on the tuple alone, not the query — exact solutions remain
//! possible. We implement that case. Because a compression retaining
//! exactly `m` attributes has a *fixed* global score, each query is either
//! **winnable** (fewer than `k` matching database tuples out-rank the
//! compressed tuple) or not, independent of *which* attributes are
//! retained — with one subtlety: the compressed tuple must still match
//! the query, which is precisely the SOC-CB-QL condition. So the variant
//! reduces exactly to SOC-CB-QL over the winnable queries.

use crate::{SocAlgorithm, SocInstance, Solution};
use soc_data::{Database, QueryLog, Tuple};

/// How ties between the new tuple and an incumbent are resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TieBreak {
    /// The new tuple wins ties (optimistic: an equal-scored incumbent does
    /// not push it out of the top-k).
    NewTupleWins,
    /// Incumbents win ties (pessimistic).
    IncumbentWins,
}

/// A global scoring function over database tuples.
pub trait GlobalScore {
    /// Score of an existing database tuple.
    fn score_tuple(&self, t: &Tuple) -> f64;
    /// Score of the compressed new tuple, given it retains `retained`
    /// attributes. Global ⇒ may depend on the tuple only.
    fn score_compressed(&self, retained_count: usize) -> f64;
}

/// "Number of available features" — the example global score of §V
/// (top-10 cars ordered by decreasing number of features).
#[derive(Clone, Copy, Debug, Default)]
pub struct FeatureCountScore;

impl GlobalScore for FeatureCountScore {
    fn score_tuple(&self, t: &Tuple) -> f64 {
        t.count() as f64
    }

    fn score_compressed(&self, retained_count: usize) -> f64 {
        retained_count as f64
    }
}

/// A fixed external score (e.g. ordering by Price, which compression does
/// not change): per-tuple scores supplied by the caller.
#[derive(Clone, Debug)]
pub struct ExternalScore {
    /// Score of each database tuple, aligned with the database order.
    pub db_scores: Vec<f64>,
    /// Score of the new tuple (compression-independent).
    pub candidate_score: f64,
}

/// Result of a SOC-Topk solve.
#[derive(Clone, Debug)]
pub struct TopkSolution {
    /// The winning compression.
    pub solution: Solution,
    /// Number of log queries that retrieve the compressed tuple within
    /// their top-k.
    pub visible_in: usize,
    /// How many queries were winnable at all.
    pub winnable_queries: usize,
}

/// Solves SOC-Topk for the feature-count global score.
///
/// The compressed tuple's score is `min(m, |t|)`, so winnability is
/// computed against that constant.
pub fn solve_topk_feature_count<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    db: &Database,
    log: &QueryLog,
    k: usize,
    ties: TieBreak,
    tuple: &Tuple,
    m: usize,
) -> TopkSolution {
    let score = FeatureCountScore;
    let candidate = score.score_compressed(m.min(tuple.count()));
    let db_scores: Vec<f64> = db.tuples().iter().map(|t| score.score_tuple(t)).collect();
    solve_topk_with_scores(algorithm, db, log, k, &db_scores, candidate, ties, tuple, m)
}

/// Solves SOC-Topk for an arbitrary global score given per-tuple scores.
///
/// # Panics
/// Panics if `db_scores.len() != db.len()` or `k == 0`.
#[allow(clippy::too_many_arguments)]
pub fn solve_topk_with_scores<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    db: &Database,
    log: &QueryLog,
    k: usize,
    db_scores: &[f64],
    candidate_score: f64,
    ties: TieBreak,
    tuple: &Tuple,
    m: usize,
) -> TopkSolution {
    assert_eq!(db_scores.len(), db.len(), "one score per database tuple");
    assert!(k > 0, "top-k retrieval needs k >= 1");

    // A query is winnable iff fewer than k matching incumbents out-rank
    // the compressed tuple.
    let winnable = log.filter(|q| {
        let outranking = db
            .iter()
            .filter(|(id, u)| {
                q.matches(u) && {
                    let s = db_scores[id.0 as usize];
                    match ties {
                        TieBreak::NewTupleWins => s > candidate_score,
                        TieBreak::IncumbentWins => s >= candidate_score,
                    }
                }
            })
            .count();
        outranking < k
    });

    let winnable_queries = winnable.len();
    let inst = SocInstance::new(&winnable, tuple, m);
    let solution = algorithm.solve(&inst);
    let visible_in = solution.satisfied;
    TopkSolution {
        solution,
        visible_in,
        winnable_queries,
    }
}

/// Reference evaluator used by tests: does query `q` retrieve `t'` in its
/// top-k when `t'` is inserted into `db`?
pub fn retrieves_in_topk(
    db: &Database,
    db_scores: &[f64],
    q: &soc_data::Query,
    compressed: &Tuple,
    candidate_score: f64,
    k: usize,
    ties: TieBreak,
) -> bool {
    if !q.matches(compressed) {
        return false;
    }
    let outranking = db
        .iter()
        .filter(|(id, u)| {
            q.matches(u) && {
                let s = db_scores[id.0 as usize];
                match ties {
                    TieBreak::NewTupleWins => s > candidate_score,
                    TieBreak::IncumbentWins => s >= candidate_score,
                }
            }
        })
        .count();
    outranking < k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    fn setup() -> (Database, QueryLog, Tuple) {
        let db = Database::from_bitstrings(&[
            "111100", // 4 features
            "110110", // 4 features
            "110000", // 2 features
            "001111", // 4 features
        ])
        .unwrap();
        let log = QueryLog::from_bitstrings(&["110000", "001100", "000011", "100000"]).unwrap();
        let t = Tuple::from_bitstring("111111").unwrap();
        (db, log, t)
    }

    #[test]
    fn winnability_filters_crowded_queries() {
        let (db, log, t) = setup();
        // m = 2 → compressed score 2. k = 1, new tuple wins ties.
        // q1 {0,1}: matchers with score > 2: t0, t1 → 2 ≥ 1 → not winnable.
        // q4 {0}: matchers > 2: t0, t1 → not winnable.
        // q2 {2,3}: matchers: t0 (score 4), t3 (4) → not winnable.
        // q3 {4,5}: matchers: t3 (4) … and t1 matches {4}? t1 = 110110 has
        // a4=1, a5=0 → no. So only t3 → 1 ≥ k=1 → not winnable either.
        let r = solve_topk_feature_count(&BruteForce, &db, &log, 1, TieBreak::NewTupleWins, &t, 2);
        assert_eq!(r.winnable_queries, 0);
        assert_eq!(r.visible_in, 0);
    }

    #[test]
    fn larger_k_opens_queries() {
        let (db, log, t) = setup();
        let r = solve_topk_feature_count(&BruteForce, &db, &log, 3, TieBreak::NewTupleWins, &t, 2);
        // With k = 3 every query has < 3 higher-scored matchers.
        assert_eq!(r.winnable_queries, 4);
        // Best 2 attributes: {0,1} satisfies q1 and q4 → 2 queries.
        assert_eq!(r.visible_in, 2);
    }

    #[test]
    fn solution_agrees_with_reference_evaluator() {
        let (db, log, t) = setup();
        let k = 2;
        let ties = TieBreak::NewTupleWins;
        let r = solve_topk_feature_count(&BruteForce, &db, &log, k, ties, &t, 3);
        let scores: Vec<f64> = db.tuples().iter().map(|u| u.count() as f64).collect();
        let cand = 3.0;
        let direct = log
            .queries()
            .iter()
            .filter(|q| retrieves_in_topk(&db, &scores, q, &r.solution.tuple(), cand, k, ties))
            .count();
        assert_eq!(direct, r.visible_in);
    }

    #[test]
    fn tie_break_matters() {
        let db = Database::from_bitstrings(&["110"]).unwrap();
        let log = QueryLog::from_bitstrings(&["100"]).unwrap();
        let t = Tuple::from_bitstring("110").unwrap();
        // Incumbent score = 2, candidate (m=2) score = 2, k = 1.
        let optimistic =
            solve_topk_feature_count(&BruteForce, &db, &log, 1, TieBreak::NewTupleWins, &t, 2);
        let pessimistic =
            solve_topk_feature_count(&BruteForce, &db, &log, 1, TieBreak::IncumbentWins, &t, 2);
        assert_eq!(optimistic.visible_in, 1);
        assert_eq!(pessimistic.visible_in, 0);
    }

    #[test]
    fn external_scores() {
        // Price ordering: lower is better modeled as negated score.
        let db = Database::from_bitstrings(&["11", "10"]).unwrap();
        let log = QueryLog::from_bitstrings(&["10"]).unwrap();
        let t = Tuple::from_bitstring("11").unwrap();
        let db_scores = vec![-10_000.0, -8_000.0]; // both cheaper... higher score
        let candidate = -9_000.0; // cheaper than t0, pricier than t1
        let r = solve_topk_with_scores(
            &BruteForce,
            &db,
            &log,
            1,
            &db_scores,
            candidate,
            TieBreak::NewTupleWins,
            &t,
            1,
        );
        // k=1: one matcher (t1 at -8000) outranks −9000 → not winnable.
        assert_eq!(r.winnable_queries, 0);
        let r2 = solve_topk_with_scores(
            &BruteForce,
            &db,
            &log,
            2,
            &db_scores,
            candidate,
            TieBreak::NewTupleWins,
            &t,
            1,
        );
        assert_eq!(r2.visible_in, 1);
    }
}
