//! Categorical-data variant (§II.B, §V): publish `m` of the tuple's
//! attribute *values* to maximize satisfied equality queries. Reduced
//! exactly to SOC-CB-QL via [`soc_data::categorical::reduce_categorical`].

use soc_data::categorical::{reduce_categorical, CatQuery, CatSchema, CatTuple};
use soc_data::AttrSet;

use crate::{SocAlgorithm, SocInstance, Solution};

/// Result of a categorical solve.
#[derive(Clone, Debug)]
pub struct CategoricalSolution {
    /// Attributes whose values should be published.
    pub publish: AttrSet,
    /// Number of log queries satisfied by the published subset.
    pub satisfied: usize,
}

/// Solves the categorical variant with any SOC-CB-QL algorithm.
pub fn solve_categorical<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    schema: &CatSchema,
    queries: &[CatQuery],
    tuple: &CatTuple,
    m: usize,
) -> CategoricalSolution {
    let red = reduce_categorical(schema, queries, tuple);
    let inst = SocInstance::new(&red.log, &red.tuple, m);
    let Solution {
        retained,
        satisfied,
    } = algorithm.solve(&inst);
    CategoricalSolution {
        publish: retained,
        satisfied,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    fn schema() -> CatSchema {
        CatSchema::new([
            ("make", vec!["honda", "toyota"]),
            ("color", vec!["red", "blue"]),
            ("trans", vec!["auto", "manual"]),
            ("body", vec!["sedan", "suv"]),
        ])
    }

    #[test]
    fn picks_popular_compatible_conditions() {
        let s = schema();
        let t = CatTuple {
            values: vec![0, 1, 0, 0], // honda, blue, auto, sedan
        };
        let queries = vec![
            CatQuery {
                conditions: vec![Some(0), None, None, None],
            }, // make=honda ✓
            CatQuery {
                conditions: vec![Some(0), Some(1), None, None],
            }, // honda+blue ✓
            CatQuery {
                conditions: vec![Some(1), None, None, None],
            }, // toyota ✗
            CatQuery {
                conditions: vec![None, None, Some(0), Some(1)],
            }, // auto+suv ✗ (body)
            CatQuery {
                conditions: vec![None, None, Some(0), None],
            }, // auto ✓
        ];
        let r = solve_categorical(&BruteForce, &s, &queries, &t, 2);
        // Publishing {make, color} satisfies queries 1 and 2 = 2;
        // {make, trans} satisfies 1 and 5 = 2; both optimal.
        assert_eq!(r.satisfied, 2);
        assert_eq!(r.publish.count(), 2);
        assert!(r.publish.contains(0));
    }

    #[test]
    fn direct_evaluation_agrees() {
        let s = schema();
        let t = CatTuple {
            values: vec![0, 0, 1, 1],
        };
        let queries = vec![
            CatQuery {
                conditions: vec![Some(0), Some(0), None, None],
            },
            CatQuery {
                conditions: vec![None, Some(0), Some(1), None],
            },
            CatQuery {
                conditions: vec![None, None, None, Some(1)],
            },
        ];
        let r = solve_categorical(&BruteForce, &s, &queries, &t, 2);
        let direct = queries.iter().filter(|q| q.matches(&t, &r.publish)).count();
        assert_eq!(direct, r.satisfied);
    }
}
