//! The per-attribute variant of SOC-CB-QL (§II.B): no budget is given;
//! maximize satisfied queries *per retained attribute* — "the number of
//! potential buyers per unit cost". Solved as the paper prescribes (§V):
//! try every `m` from 1 to `M` and keep the best ratio.

use crate::{SocAlgorithm, SocInstance, Solution};
use soc_data::{QueryLog, Tuple};

/// Result of the per-attribute optimization.
#[derive(Clone, Debug)]
pub struct PerAttrSolution {
    /// The winning compression.
    pub solution: Solution,
    /// The budget `m` at which it was found.
    pub m: usize,
    /// `satisfied / |t'|` (0 when nothing is retained).
    pub ratio: f64,
}

/// Solves the per-attribute variant by sweeping `m = 1..=M` with the given
/// inner algorithm (exact inner algorithm ⇒ exact variant solution).
pub fn solve_per_attribute<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    log: &QueryLog,
    tuple: &Tuple,
) -> PerAttrSolution {
    let mut best: Option<PerAttrSolution> = None;
    for m in 1..=log.num_attrs() {
        let inst = SocInstance::new(log, tuple, m);
        let solution = algorithm.solve(&inst);
        let retained = solution.retained.count();
        let ratio = if retained == 0 {
            0.0
        } else {
            solution.satisfied as f64 / retained as f64
        };
        if best.as_ref().is_none_or(|b| ratio > b.ratio + 1e-12) {
            best = Some(PerAttrSolution { solution, m, ratio });
        }
        if m >= tuple.count() {
            break; // larger budgets change nothing
        }
    }
    best.expect("at least one budget is tried")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    #[test]
    fn prefers_dense_payoff() {
        // One attribute satisfies 3 queries alone; pairs add little.
        let log = QueryLog::from_bitstrings(&[
            "100", "100", "100", // a0 thrice
            "110", // {a0,a1} once
        ])
        .unwrap();
        let t = Tuple::from_bitstring("111").unwrap();
        let best = solve_per_attribute(&BruteForce, &log, &t);
        // m=1 keeping a0: 3 satisfied / 1 = 3.0; m=2 {a0,a1}: 4/2 = 2.0.
        assert_eq!(best.m, 1);
        assert_eq!(best.solution.retained.to_indices(), vec![0]);
        assert!((best.ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_satisfiable_gives_zero_ratio() {
        let log = QueryLog::from_bitstrings(&["01"]).unwrap();
        let t = Tuple::from_bitstring("10").unwrap();
        let best = solve_per_attribute(&BruteForce, &log, &t);
        assert_eq!(best.ratio, 0.0);
    }

    #[test]
    fn exhausts_budgets_up_to_tuple_size() {
        // Two attributes jointly needed: ratio 1/2 beats nothing at m=1.
        let log = QueryLog::from_bitstrings(&["110", "110", "110"]).unwrap();
        let t = Tuple::from_bitstring("110").unwrap();
        let best = solve_per_attribute(&BruteForce, &log, &t);
        assert_eq!(best.solution.satisfied, 3);
        assert_eq!(best.solution.retained.count(), 2);
        assert!((best.ratio - 1.5).abs() < 1e-12);
    }
}
