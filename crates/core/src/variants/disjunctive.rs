//! The disjunctive-retrieval variant (§II.B): a query retrieves `t'` if
//! *any* of its attributes is present. Choosing `m` attributes to maximize
//! the number of intersected queries is weighted maximum coverage —
//! NP-hard, with a classic `1 − 1/e` greedy and an exact ILP
//! (`y_i ≤ Σ_{j ∈ q_i} x_j`).

use soc_data::AttrSet;
use soc_solver::{Cmp, LinExpr, MipOptions, Model, Sense};

use crate::{SocInstance, Solution};

/// Objective under disjunctive semantics.
pub fn disjunctive_objective(instance: &SocInstance<'_>, retained: &AttrSet) -> usize {
    instance
        .log
        .satisfied_count_disjunctive(&soc_data::Tuple::new(retained.clone()))
}

/// Greedy maximum coverage: repeatedly retain the attribute of `t` that
/// covers the most still-uncovered queries. Guarantees a `1 − 1/e`
/// approximation of the optimum.
pub fn solve_disjunctive_greedy(instance: &SocInstance<'_>) -> Solution {
    let m_attrs = instance.log.num_attrs();
    let t = instance.tuple.attrs();
    let mut retained = AttrSet::empty(m_attrs);
    let mut uncovered: Vec<(&AttrSet, usize)> = instance
        .log
        .iter()
        .map(|(id, q)| (q.attrs(), instance.log.weight(id)))
        .filter(|(q, _)| !q.is_disjoint(t))
        .collect();

    for _ in 0..instance.effective_m() {
        let best = t
            .iter()
            .filter(|&j| !retained.contains(j))
            .max_by_key(|&j| {
                (
                    uncovered
                        .iter()
                        .filter(|(q, _)| q.contains(j))
                        .map(|&(_, w)| w)
                        .sum::<usize>(),
                    std::cmp::Reverse(j),
                )
            });
        let Some(j) = best else { break };
        retained.insert(j);
        uncovered.retain(|(q, _)| !q.contains(j));
    }

    let satisfied = disjunctive_objective(instance, &retained);
    Solution {
        retained,
        satisfied,
    }
}

/// Exact disjunctive solve by 0/1 ILP.
pub fn solve_disjunctive_ilp(instance: &SocInstance<'_>) -> Solution {
    let m_attrs = instance.log.num_attrs();
    let t = instance.tuple.attrs();
    let mut model = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..m_attrs)
        .map(|j| {
            if t.contains(j) {
                model.add_binary()
            } else {
                model.add_binary_fixed(false)
            }
        })
        .collect();
    let mut objective = LinExpr::new();
    for (id, q) in instance.log.iter() {
        if q.attrs().is_disjoint(t) {
            continue; // can never be covered
        }
        let y = model.add_binary();
        objective = objective.plus(instance.log.weight(id) as f64, y);
        // y ≤ Σ_{j ∈ q} x_j
        let mut link = LinExpr::new().plus(1.0, y);
        for j in q.attrs().iter() {
            link = link.plus(-1.0, xs[j]);
        }
        model.add_constraint(link, Cmp::Le, 0.0);
    }
    model.set_objective(objective);
    model.add_constraint(LinExpr::sum(xs.iter().copied()), Cmp::Le, instance.m as f64);
    let mip = model
        .solve_mip(&MipOptions {
            integral_objective: true,
            ..Default::default()
        })
        .expect("disjunctive ILP is always feasible");
    let retained = AttrSet::from_indices(m_attrs, (0..m_attrs).filter(|&j| mip.values[j] > 0.5));
    let satisfied = disjunctive_objective(instance, &retained);
    debug_assert_eq!(satisfied, mip.objective.round() as usize);
    Solution {
        retained,
        satisfied,
    }
}

/// Exhaustive disjunctive optimum — test oracle.
pub fn solve_disjunctive_brute_force(instance: &SocInstance<'_>) -> Solution {
    let mut best: Option<Solution> = None;
    for candidate in instance.tuple.compressions(instance.m) {
        let satisfied = instance.log.satisfied_count_disjunctive(&candidate);
        if best.as_ref().is_none_or(|b| satisfied > b.satisfied) {
            best = Some(Solution {
                retained: candidate.into_attrs(),
                satisfied,
            });
        }
    }
    best.expect("at least one compression exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_data::{QueryLog, Tuple};

    fn setup() -> (QueryLog, Tuple) {
        let log = QueryLog::from_bitstrings(&[
            "10000", "10000", "01000", "01000", "01000", "00110", "00001",
        ])
        .unwrap();
        let t = Tuple::from_bitstring("11011").unwrap();
        (log, t)
    }

    #[test]
    fn ilp_matches_brute_force() {
        let (log, t) = setup();
        for m in 0..=5 {
            let inst = SocInstance::new(&log, &t, m);
            let ilp = solve_disjunctive_ilp(&inst);
            let bf = solve_disjunctive_brute_force(&inst);
            assert_eq!(ilp.satisfied, bf.satisfied, "m = {m}");
        }
    }

    #[test]
    fn greedy_within_bound_and_never_better() {
        let (log, t) = setup();
        for m in 1..=5 {
            let inst = SocInstance::new(&log, &t, m);
            let greedy = solve_disjunctive_greedy(&inst);
            let opt = solve_disjunctive_brute_force(&inst);
            assert!(greedy.satisfied <= opt.satisfied);
            // Max coverage greedy guarantee.
            let bound = (1.0 - 1.0 / std::f64::consts::E) * opt.satisfied as f64;
            assert!(
                greedy.satisfied as f64 >= bound - 1e-9,
                "m={m}: greedy {} below bound {bound}",
                greedy.satisfied
            );
        }
    }

    #[test]
    fn greedy_picks_highest_coverage_first() {
        let (log, t) = setup();
        let inst = SocInstance::new(&log, &t, 1);
        let sol = solve_disjunctive_greedy(&inst);
        // a1 covers 3 queries — the best single choice of t's attributes.
        assert_eq!(sol.retained.to_indices(), vec![1]);
        assert_eq!(sol.satisfied, 3);
    }

    #[test]
    fn disjunctive_vs_conjunctive_semantics() {
        let (log, t) = setup();
        let inst = SocInstance::new(&log, &t, 2);
        let dis = solve_disjunctive_brute_force(&inst);
        // Disjunctive coverage is never below conjunctive satisfaction
        // for the same retained set.
        let conj = inst.objective(&dis.retained);
        assert!(dis.satisfied >= conj);
    }
}
