//! Problem variants beyond SOC-CB-QL (§II.B, §V): per-attribute objective,
//! data domination (SOC-CB-D), top-k retrieval with global scores,
//! disjunctive retrieval, and the categorical / numeric reductions.

pub mod categorical;
pub mod data_variant;
pub mod disjunctive;
pub mod numeric;
pub mod per_attribute;
pub mod topk;
