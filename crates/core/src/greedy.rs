//! The three greedy heuristics of §IV.D.
//!
//! - [`ConsumeAttr`] — retain the `m` attributes of `t` with the highest
//!   individual frequencies in the query log.
//! - [`ConsumeAttrCumul`] — cumulative variant: pick the most frequent
//!   attribute, then repeatedly the attribute co-occurring most often with
//!   everything picked so far.
//! - [`ConsumeQueries`] — consume whole queries: repeatedly pick the query
//!   needing the fewest *new* attributes and retain its attributes, until
//!   the budget is exhausted. (The paper finds this one both slow and
//!   low-quality; our benches reproduce that.)
//!
//! All three only ever retain attributes the tuple actually has.

use soc_data::AttrSet;

use crate::{SocAlgorithm, SocInstance, Solution};

/// Greedy by individual attribute frequency.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsumeAttr;

impl SocAlgorithm for ConsumeAttr {
    fn name(&self) -> &'static str {
        "ConsumeAttr"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let freq = instance.log.attribute_frequencies();
        let mut candidates: Vec<usize> = instance.tuple.attrs().iter().collect();
        // Highest frequency first; ties broken by attribute order for
        // determinism.
        candidates.sort_by_key(|&j| (std::cmp::Reverse(freq[j]), j));
        candidates.truncate(instance.effective_m());
        let retained = AttrSet::from_indices(instance.log.num_attrs(), candidates);
        instance.solution(retained)
    }
}

/// Greedy by cumulative co-occurrence.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsumeAttrCumul;

impl SocAlgorithm for ConsumeAttrCumul {
    fn name(&self) -> &'static str {
        "ConsumeAttrCumul"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let m_attrs = instance.log.num_attrs();
        let freq = instance.log.attribute_frequencies();
        let mut selected = AttrSet::empty(m_attrs);
        let mut remaining: Vec<usize> = instance.tuple.attrs().iter().collect();

        for round in 0..instance.effective_m() {
            // Co-occurrence ties (incl. zero) fall back to the individual
            // frequency, then to attribute order.
            let best = remaining.iter().copied().max_by_key(|&j| {
                let score = if round == 0 {
                    freq[j]
                } else {
                    instance.log.cooccurrence_count(&selected.with(j))
                };
                (score, freq[j], std::cmp::Reverse(j))
            });
            let Some(j) = best else { break };
            selected.insert(j);
            remaining.retain(|&x| x != j);
        }
        instance.solution(selected)
    }
}

/// Greedy by whole queries.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConsumeQueries;

impl SocAlgorithm for ConsumeQueries {
    fn name(&self) -> &'static str {
        "ConsumeQueries"
    }

    fn is_exact(&self) -> bool {
        false
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let m_attrs = instance.log.num_attrs();
        let t = instance.tuple.attrs();
        let budget = instance.effective_m();
        let freq = instance.log.attribute_frequencies();
        let mut selected = AttrSet::empty(m_attrs);

        // Only queries satisfiable by the full tuple can ever pay off.
        let mut open: Vec<(&soc_data::Query, usize)> = instance
            .log
            .iter()
            .filter(|(_, q)| q.attrs().is_subset(t) && !q.is_empty())
            .map(|(id, q)| (q, instance.log.weight(id)))
            .collect();

        while selected.count() < budget && !open.is_empty() {
            // The paper: "picks the query with minimum number of new
            // attributes" — a full pass over the workload per iteration,
            // which is why this heuristic is also the slowest. Ties fall
            // to the heavier (more frequent) query.
            let (idx, _) = open
                .iter()
                .enumerate()
                .map(|(i, (q, w))| {
                    (
                        i,
                        (
                            q.attrs().difference(&selected).count(),
                            std::cmp::Reverse(*w),
                        ),
                    )
                })
                .min_by_key(|&(_, key)| key)
                .expect("open is non-empty");
            let new_attrs = open[idx].0.attrs().difference(&selected);
            // If even the cheapest query no longer fits the remaining
            // budget, consuming an arbitrary ascending prefix of it can
            // never satisfy it; stop consuming queries and let the
            // frequency fallback below spend the leftover instead.
            if new_attrs.count() > budget - selected.count() {
                break;
            }
            open.swap_remove(idx);
            selected.union_with(&new_attrs);
        }

        // Spend any leftover budget on the highest-frequency attributes
        // rather than wasting it (few satisfiable queries, or the next
        // cheapest query no longer fits).
        if selected.count() < budget {
            let mut rest: Vec<usize> = t.iter().filter(|&j| !selected.contains(j)).collect();
            rest.sort_by_key(|&j| (std::cmp::Reverse(freq[j]), j));
            for j in rest {
                if selected.count() >= budget {
                    break;
                }
                selected.insert(j);
            }
        }
        instance.solution(selected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::{QueryLog, Tuple};

    fn fig1() -> (QueryLog, Tuple) {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        (log, t)
    }

    #[test]
    fn consume_attr_picks_top_frequencies() {
        let (log, t) = fig1();
        // Frequencies among t's attributes: a0=2, a1=2, a3=3, a4=1, a5=1.
        let sol = ConsumeAttr.solve(&SocInstance::new(&log, &t, 3));
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 3]);
        assert_eq!(sol.satisfied, 3); // happens to be optimal here
    }

    #[test]
    fn consume_attr_cumul_on_fig1() {
        let (log, t) = fig1();
        let sol = ConsumeAttrCumul.solve(&SocInstance::new(&log, &t, 3));
        // First pick a3 (freq 3); then the attribute co-occurring most
        // with a3 among {0,1,4,5}: a0 and a1 and a5 each co-occur once —
        // tie falls to higher individual frequency then lower index (a0);
        // then co-occurrence with {a3,a0}: a1 co-occurs 0… all zero, falls
        // back to frequency → a1.
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 3]);
        assert_eq!(sol.satisfied, 3);
    }

    #[test]
    fn consume_queries_on_fig1() {
        let (log, t) = fig1();
        let sol = ConsumeQueries.solve(&SocInstance::new(&log, &t, 3));
        // All candidate queries have 2 attributes; q1 = {0,1} is taken
        // first, then the query adding fewest new attributes.
        assert!(sol.retained.count() <= 3);
        assert!(sol.retained.is_subset(t.attrs()));
        assert!(sol.satisfied >= 1);
    }

    #[test]
    fn greedies_never_beat_optimal() {
        let (log, t) = fig1();
        for m in 0..=6 {
            let inst = SocInstance::new(&log, &t, m);
            let opt = BruteForce.solve(&inst).satisfied;
            for algo in [
                &ConsumeAttr as &dyn SocAlgorithm,
                &ConsumeAttrCumul,
                &ConsumeQueries,
            ] {
                let sol = algo.solve(&inst);
                assert!(
                    sol.satisfied <= opt,
                    "{} beat the optimum at m = {m}",
                    algo.name()
                );
                assert!(sol.retained.is_subset(t.attrs()));
                assert!(sol.retained.count() <= m);
            }
        }
    }

    #[test]
    fn empty_log_yields_zero() {
        let log = QueryLog::from_bitstrings(&[]).unwrap();
        let t = Tuple::from_bitstring("").unwrap();
        for algo in [
            &ConsumeAttr as &dyn SocAlgorithm,
            &ConsumeAttrCumul,
            &ConsumeQueries,
        ] {
            let sol = algo.solve(&SocInstance::new(&log, &t, 2));
            assert_eq!(sol.satisfied, 0, "{}", algo.name());
        }
    }

    #[test]
    fn leftover_budget_goes_to_frequent_attributes_not_a_prefix() {
        // t = {0,1,2,3}. The only satisfiable query needs 3 new
        // attributes but the budget is 2, so no selection can satisfy
        // it. The pre-fix code consumed it anyway and kept the arbitrary
        // ascending prefix {0, 1}; the fix stops consuming and spends
        // the leftover on the globally most frequent attributes — here
        // {2, 3}, whose frequencies are boosted by queries outside t.
        let log = QueryLog::from_bitstrings(&[
            "11100", // {0,1,2} ⊆ t, needs 3 > budget
            "00101", // {2,4} ⊄ t, boosts freq[2]
            "00101", // {2,4} ⊄ t, boosts freq[2]
            "00011", // {3,4} ⊄ t, boosts freq[3]
            "00011", // {3,4} ⊄ t, boosts freq[3]
        ])
        .unwrap();
        let t = Tuple::from_bitstring("11110").unwrap();
        // freq = [1, 1, 3, 2, 4]; among t's attributes, 2 then 3 win.
        let sol = ConsumeQueries.solve(&SocInstance::new(&log, &t, 2));
        assert_eq!(sol.retained.to_indices(), vec![2, 3]);
        // The objective itself is invariant under the final-fill choice:
        // a query still open at the final round needs more new
        // attributes than the remaining budget (anything cheaper would
        // have been the minimum and been consumed), so no room-sized
        // fill can complete one. The fix pins the *selection* to the
        // most promising attributes instead of an arbitrary prefix.
        assert_eq!(sol.satisfied, 0);
        let old_prefix = Tuple::from_bitstring("11000").unwrap();
        assert_eq!(log.satisfied_count(&old_prefix), sol.satisfied);
    }

    #[test]
    fn unfitting_query_is_not_consumed_before_smaller_ones() {
        // Budget 2: q = {2} (1 new attr) fits and is consumed; then
        // q = {0,1,2} needs 2 new attrs {0,1} and fits exactly, so it is
        // consumed too — full consumption must still work after the
        // truncation fix.
        let log = QueryLog::from_bitstrings(&["00100", "11100"]).unwrap();
        let t = Tuple::from_bitstring("11110").unwrap();
        let sol = ConsumeQueries.solve(&SocInstance::new(&log, &t, 3));
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 2]);
        assert_eq!(sol.satisfied, 2);
    }

    #[test]
    fn budget_larger_than_tuple() {
        let (log, _) = fig1();
        let t = Tuple::from_bitstring("110000").unwrap();
        for algo in [
            &ConsumeAttr as &dyn SocAlgorithm,
            &ConsumeAttrCumul,
            &ConsumeQueries,
        ] {
            let sol = algo.solve(&SocInstance::new(&log, &t, 5));
            assert_eq!(sol.retained.count(), 2, "{}", algo.name());
            assert_eq!(sol.satisfied, 1); // q1 = {0,1}
        }
    }
}
