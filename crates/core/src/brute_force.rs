//! `BruteForce-SOC-CB-QL` (§IV.A): enumerate all `C(|t|, m)` compressions.
//!
//! Exponential but exact — the ground-truth oracle every other algorithm
//! is validated against, and feasible whenever `C(|t|, m)` is modest.

use crate::{SocAlgorithm, SocInstance, Solution};

/// Exhaustive enumeration over every m-compression of the tuple.
#[derive(Clone, Copy, Debug, Default)]
pub struct BruteForce;

impl SocAlgorithm for BruteForce {
    fn name(&self) -> &'static str {
        "BruteForce"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        let mut best: Option<(soc_data::AttrSet, usize)> = None;
        for candidate in instance.tuple.compressions(instance.m) {
            let satisfied = instance.log.satisfied_count(&candidate);
            let better = best.as_ref().is_none_or(|&(_, b)| satisfied > b);
            if better {
                best = Some((candidate.into_attrs(), satisfied));
            }
        }
        let (retained, satisfied) =
            best.expect("compressions() always yields at least one candidate");
        instance.solution_with_known_objective(retained, satisfied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_data::{QueryLog, Tuple};

    #[test]
    fn solves_fig1() {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        let sol = BruteForce.solve(&SocInstance::new(&log, &t, 3));
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 3]);
    }

    #[test]
    fn m_zero_retains_nothing() {
        let log = QueryLog::from_bitstrings(&["10", "01"]).unwrap();
        let t = Tuple::from_bitstring("11").unwrap();
        let sol = BruteForce.solve(&SocInstance::new(&log, &t, 0));
        assert_eq!(sol.retained.count(), 0);
        assert_eq!(sol.satisfied, 0);
    }

    #[test]
    fn m_at_least_tuple_size_keeps_everything() {
        let log = QueryLog::from_bitstrings(&["1100", "0011", "1001"]).unwrap();
        let t = Tuple::from_bitstring("1111").unwrap();
        let sol = BruteForce.solve(&SocInstance::new(&log, &t, 9));
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.retained.count(), 4);
    }

    #[test]
    fn empty_log() {
        let log = QueryLog::from_bitstrings(&[]).unwrap();
        let t = Tuple::from_bitstring("").unwrap();
        let sol = BruteForce.solve(&SocInstance::new(&log, &t, 1));
        assert_eq!(sol.satisfied, 0);
    }
}
