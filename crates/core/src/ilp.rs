//! `ILP-SOC-CB-QL` (§IV.B): the integer *linear* programming formulation.
//!
//! Variables: a binary `x_j` per attribute of the new tuple (`x_j = 0`
//! pinned when `a_j(t) = 0`), a binary `y_i` per query. Maximize `Σ y_i`
//! subject to `Σ x_j ≤ m` and `y_i ≤ x_j` for every attribute `j` of
//! query `i`. The linearization makes a branch-and-bound solver practical
//! for moderate instances; the paper observed (and our benches reproduce)
//! that it degrades for long query logs.

use soc_solver::{Cmp, LinExpr, MipOptions, Model, Sense, SolveStats};

use crate::{SocAlgorithm, SocInstance, Solution};

/// The ILP-based exact algorithm.
#[derive(Clone, Debug)]
pub struct IlpSolver {
    /// Branch-and-bound options. `integral_objective` is forced on (the
    /// objective counts queries).
    pub options: MipOptions,
    /// Prune queries that reference attributes absent from the tuple
    /// before building the model (they can never be satisfied). On by
    /// default; off reproduces the paper's formulation verbatim.
    pub prune_hopeless_queries: bool,
    /// Seed branch-and-bound with the `ConsumeAttrCumul` greedy solution
    /// as a warm-start incumbent, so pruning bites from the root node.
    /// On by default; off reproduces the cold solver.
    pub warm_start: bool,
    /// Run the solver's presolve reductions before branch-and-bound. On
    /// by default; off (together with the other two flags) reproduces the
    /// behaviour of feeding the paper's raw §IV.B model to a plain
    /// branch-and-bound code, which is what the paper benchmarked.
    pub presolve: bool,
}

impl Default for IlpSolver {
    fn default() -> Self {
        Self {
            options: MipOptions {
                integral_objective: true,
                ..Default::default()
            },
            prune_hopeless_queries: true,
            warm_start: true,
            presolve: true,
        }
    }
}

impl IlpSolver {
    /// The paper-verbatim configuration: the raw §IV.B model with no
    /// query pruning, no warm start, and no presolve.
    pub fn verbatim() -> Self {
        Self {
            prune_hopeless_queries: false,
            warm_start: false,
            presolve: false,
            ..Default::default()
        }
    }
}

impl IlpSolver {
    /// Builds the §IV.B model for an instance. Public so benches can
    /// report model sizes.
    pub fn build_model(&self, instance: &SocInstance<'_>) -> Model {
        let t = instance.tuple.attrs();
        let m_attrs = instance.log.num_attrs();
        let mut model = Model::new(Sense::Maximize);

        // x_j: retain attribute j. Pinned to 0 when t lacks j.
        let xs: Vec<_> = (0..m_attrs)
            .map(|j| {
                if t.contains(j) {
                    model.add_binary()
                } else {
                    model.add_binary_fixed(false)
                }
            })
            .collect();

        // y_i per query, with the linking constraints. The objective
        // coefficient is the query's weight (1 for raw logs), so
        // deduplicated logs yield identical optima with far fewer rows.
        let mut objective = LinExpr::new();
        for (id, q) in instance.log.iter() {
            if self.prune_hopeless_queries && !q.attrs().is_subset(t) {
                continue;
            }
            let y = model.add_binary();
            objective = objective.plus(instance.log.weight(id) as f64, y);
            for j in q.attrs().iter() {
                model.add_constraint(LinExpr::new().plus(1.0, y).plus(-1.0, xs[j]), Cmp::Le, 0.0);
            }
        }
        model.set_objective(objective);
        model.add_constraint(LinExpr::sum(xs.iter().copied()), Cmp::Le, instance.m as f64);
        model
    }

    /// Builds a feasible warm-start point from the `ConsumeAttrCumul`
    /// greedy, laid out in the same variable order as
    /// [`IlpSolver::build_model`] (all `x_j`, then `y_i` in log order).
    fn warm_start_point(&self, instance: &SocInstance<'_>) -> Vec<f64> {
        let greedy = crate::ConsumeAttrCumul.solve(instance);
        let t = instance.tuple.attrs();
        let m_attrs = instance.log.num_attrs();
        let mut values = Vec::with_capacity(m_attrs + instance.log.len());
        for j in 0..m_attrs {
            values.push(f64::from(greedy.retained.contains(j)));
        }
        for (_, q) in instance.log.iter() {
            if self.prune_hopeless_queries && !q.attrs().is_subset(t) {
                continue;
            }
            values.push(f64::from(q.attrs().is_subset(&greedy.retained)));
        }
        values
    }
}

impl IlpSolver {
    /// Solves the instance and additionally returns the branch-and-bound
    /// counters (nodes, LP pivots, warm-start hit rate) — the
    /// observability hook used by the CLI's `--stats` flag and by the
    /// `BENCH_ilp.json` figures experiment.
    pub fn solve_with_stats(&self, instance: &SocInstance<'_>) -> (Solution, SolveStats) {
        let mut options = self.options.clone();
        options.integral_objective = true;
        let model = self.build_model(instance);
        if self.warm_start {
            options.initial_solution = Some(self.warm_start_point(instance));
        }
        let mip = if self.presolve {
            model.solve_mip(&options)
        } else {
            model.solve_mip_no_presolve(&options)
        }
        .expect("SOC ILP is always feasible (all-zero is a solution)");
        let m_attrs = instance.log.num_attrs();
        let retained =
            soc_data::AttrSet::from_indices(m_attrs, (0..m_attrs).filter(|&j| mip.values[j] > 0.5));
        // At the optimum every y_i is at its upper bound, so the MIP
        // objective already is the satisfied-weight count; rounding
        // absorbs solver epsilon (integral_objective is forced on).
        let solution =
            instance.solution_with_known_objective(retained, mip.objective.round() as usize);
        (solution, mip.stats)
    }
}

impl SocAlgorithm for IlpSolver {
    fn name(&self) -> &'static str {
        "ILP"
    }

    fn is_exact(&self) -> bool {
        true
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        self.solve_with_stats(instance).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use soc_data::{QueryLog, Tuple};

    fn fig1() -> (QueryLog, Tuple) {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        (log, t)
    }

    #[test]
    fn solves_fig1() {
        let (log, t) = fig1();
        let sol = IlpSolver::default().solve(&SocInstance::new(&log, &t, 3));
        assert_eq!(sol.satisfied, 3);
        assert_eq!(sol.retained.to_indices(), vec![0, 1, 3]);
    }

    #[test]
    fn matches_brute_force_across_m() {
        let (log, t) = fig1();
        for m in 0..=6 {
            let inst = SocInstance::new(&log, &t, m);
            let ilp = IlpSolver::default().solve(&inst);
            let bf = BruteForce.solve(&inst);
            assert_eq!(ilp.satisfied, bf.satisfied, "m = {m}");
        }
    }

    #[test]
    fn unpruned_formulation_agrees() {
        let (log, t) = fig1();
        let solver = IlpSolver {
            prune_hopeless_queries: false,
            ..Default::default()
        };
        for m in 0..=4 {
            let inst = SocInstance::new(&log, &t, m);
            assert_eq!(
                solver.solve(&inst).satisfied,
                BruteForce.solve(&inst).satisfied,
                "m = {m}"
            );
        }
    }

    #[test]
    fn model_shape() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 3);
        let model = IlpSolver::default().build_model(&inst);
        // 6 x vars + 4 candidate queries (q5 references turbo, pruned).
        assert_eq!(model.num_vars(), 6 + 4);
        // 2 link constraints per kept query + the budget row.
        assert_eq!(model.num_constraints(), 8 + 1);
    }
}

#[cfg(test)]
mod warm_start_tests {
    use super::*;
    use crate::{BruteForce, SocAlgorithm, SocInstance};
    use soc_data::{QueryLog, Tuple};

    #[test]
    fn warm_and_cold_reach_the_same_optimum() {
        let log = QueryLog::from_bitstrings(&[
            "1100000", "1010000", "0110000", "0001100", "0001010", "0000011", "1100000",
        ])
        .unwrap();
        let t = Tuple::from_bitstring("1111111").unwrap();
        for m in 0..=7 {
            let inst = SocInstance::new(&log, &t, m);
            let want = BruteForce.solve(&inst).satisfied;
            for (warm, prune) in [(true, true), (false, true), (true, false), (false, false)] {
                let solver = IlpSolver {
                    warm_start: warm,
                    prune_hopeless_queries: prune,
                    ..Default::default()
                };
                assert_eq!(
                    solver.solve(&inst).satisfied,
                    want,
                    "m = {m}, warm = {warm}, prune = {prune}"
                );
            }
        }
    }

    #[test]
    fn warm_start_point_is_feasible() {
        let log = QueryLog::from_bitstrings(&["110000", "100100", "010100"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        let inst = SocInstance::new(&log, &t, 3);
        let solver = IlpSolver::default();
        let model = solver.build_model(&inst);
        let point = solver.warm_start_point(&inst);
        assert!(model.is_feasible(&point, 1e-9));
    }
}

#[cfg(test)]
mod verbatim_tests {
    use super::*;
    use crate::{BruteForce, SocAlgorithm, SocInstance};
    use soc_data::{QueryLog, Tuple};

    #[test]
    fn verbatim_configuration_is_still_exact() {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        let v = IlpSolver::verbatim();
        assert!(!v.prune_hopeless_queries && !v.warm_start && !v.presolve);
        for m in 0..=6 {
            let inst = SocInstance::new(&log, &t, m);
            assert_eq!(
                v.solve(&inst).satisfied,
                BruteForce.solve(&inst).satisfied,
                "m = {m}"
            );
        }
    }

    #[test]
    fn verbatim_still_builds_the_raw_paper_model() {
        // The §IV.B model with no pruning: one x per attribute, one y per
        // query (hopeless or not), one link row per (query, attribute)
        // pair, plus the budget row.
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        let inst = SocInstance::new(&log, &t, 3);
        let model = IlpSolver::verbatim().build_model(&inst);
        assert_eq!(model.num_vars(), 6 + 5);
        assert_eq!(model.num_constraints(), 10 + 1);
    }

    /// Satellite regression: the warm-LP dual-simplex path must return
    /// objectives identical to the cold two-phase path on the seed
    /// examples, in every solver configuration, and the statistics must
    /// corroborate which LP path actually ran.
    #[test]
    fn warm_lp_matches_cold_lp_on_seed_instances() {
        let fig1 = (
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap(),
            Tuple::from_bitstring("110111").unwrap(),
        );
        let wide = (
            QueryLog::from_bitstrings(&[
                "1100000", "1010000", "0110000", "0001100", "0001010", "0000011", "1100000",
            ])
            .unwrap(),
            Tuple::from_bitstring("1111111").unwrap(),
        );
        for (log, t) in [&fig1, &wide] {
            for m in 0..=log.num_attrs() {
                let inst = SocInstance::new(log, t, m);
                let want = BruteForce.solve(&inst).satisfied;
                for verbatim in [false, true] {
                    let base = if verbatim {
                        IlpSolver::verbatim()
                    } else {
                        IlpSolver::default()
                    };
                    let mut cold = base.clone();
                    cold.options.warm_lp = false;
                    let mut warm = base;
                    warm.options.warm_lp = true;
                    let (cold_sol, cold_stats) = cold.solve_with_stats(&inst);
                    let (warm_sol, warm_stats) = warm.solve_with_stats(&inst);
                    assert_eq!(cold_sol.satisfied, want, "cold, m = {m}");
                    assert_eq!(warm_sol.satisfied, want, "warm, m = {m}");
                    assert_eq!(
                        cold_stats.warm_solves, 0,
                        "cold path must never warm-start (m = {m})"
                    );
                    if verbatim {
                        // Without presolve the root node is always
                        // explored; with it the model may be solved
                        // outright and report zero nodes.
                        assert!(cold_stats.nodes > 0, "stats must report node counts");
                        assert!(warm_stats.nodes > 0, "stats must report node counts");
                    }
                }
            }
        }
    }
}
