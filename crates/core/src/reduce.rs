//! Instance projection: solve SOC-CB-QL on the compact universe of the
//! tuple's own attributes and map the answer back.
//!
//! [`QueryLog::project_onto`] keeps only queries contained in `t`,
//! renumbers attributes down to `t`'s 1-positions, and merges duplicate
//! projected queries into weights. [`ReducedInstance`] packages the
//! result as a solvable instance; [`Projected`] lifts any
//! [`SocAlgorithm`] to run on it transparently.
//!
//! **Objective equivalence** (the argument enforced by
//! `tests/projection_diff.rs`): a compression retains `R ⊆ t`, and a
//! query `q` is satisfied iff `q ⊆ R`, which forces `q ⊆ t` — so
//! dropping non-contained queries changes no objective value. The
//! renumbering is an order-preserving bijection between subsets of `t`
//! and subsets of the compact universe, and containment is invariant
//! under bijective renaming. Merging duplicates sums their weights,
//! which is exactly how every counting kernel scores them. Hence for
//! every `R ⊆ t`, the projected objective of `map(R)` equals the
//! original objective of `R`; in particular optima correspond, so exact
//! solvers are unaffected, while heuristics become *decision-equivalent*
//! to running on the candidate-restricted, deduplicated full-width log
//! (usually an improvement: hopeless queries stop polluting frequency
//! counts).

use soc_data::{AttrMapping, AttrSet, QueryLog, Tuple};

use crate::{SocAlgorithm, SocInstance, Solution};

/// A projected SOC-CB-QL instance, owning the compact log and tuple,
/// plus the mapping back to the original universe.
#[derive(Debug)]
pub struct ReducedInstance {
    log: QueryLog,
    tuple: Tuple,
    m: usize,
    mapping: AttrMapping,
}

impl SocInstance<'_> {
    /// Projects this instance onto the tuple's attribute universe.
    ///
    /// The reduced instance has `|t|` attributes (its tuple is the full
    /// set — every compact attribute is present by construction) and
    /// only the queries a compression of `t` could ever satisfy, with
    /// duplicates merged into weights. Solve it with any algorithm via
    /// [`ReducedInstance::solve_with`], which maps the retained set back.
    pub fn reduced(&self) -> ReducedInstance {
        let (log, mapping) = self.log.project_onto(self.tuple);
        let tuple = Tuple::new(AttrSet::full(mapping.compact_universe()));
        ReducedInstance {
            log,
            tuple,
            m: self.m,
            mapping,
        }
    }
}

impl ReducedInstance {
    /// A borrowed [`SocInstance`] view over the compact log and tuple.
    pub fn instance(&self) -> SocInstance<'_> {
        SocInstance::new(&self.log, &self.tuple, self.m)
    }

    /// The compact query log.
    pub fn log(&self) -> &QueryLog {
        &self.log
    }

    /// The renumbering between the original and compact universes.
    pub fn mapping(&self) -> &AttrMapping {
        &self.mapping
    }

    /// Runs `algo` on the compact instance and returns the retained set
    /// lifted back into the original universe, keeping the objective the
    /// compact solve already computed (equal by the equivalence argument
    /// in the module docs; `original` must be the instance this was
    /// reduced from).
    pub fn solve_with<A: SocAlgorithm + ?Sized>(
        &self,
        algo: &A,
        original: &SocInstance<'_>,
    ) -> Solution {
        let compact = algo.solve(&self.instance());
        let retained = self.mapping.to_original(&compact.retained);
        original.solution_with_known_objective(retained, compact.satisfied)
    }
}

/// Lifts an algorithm to solve via projection: project the instance,
/// solve compactly, map the retained set back. Exact algorithms stay
/// exact; every algorithm sees smaller models (ILP rows/columns, MFI
/// transaction width, brute-force candidate count all shrink).
#[derive(Clone, Copy, Debug, Default)]
pub struct Projected<A>(pub A);

impl<A: SocAlgorithm> SocAlgorithm for Projected<A> {
    fn name(&self) -> &'static str {
        self.0.name()
    }

    fn is_exact(&self) -> bool {
        self.0.is_exact()
    }

    fn solve(&self, instance: &SocInstance<'_>) -> Solution {
        instance.reduced().solve_with(&self.0, instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;

    fn fig1() -> (QueryLog, Tuple) {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110111").unwrap();
        (log, t)
    }

    #[test]
    fn reduced_instance_shrinks_both_dimensions() {
        let (log, t) = fig1();
        let inst = SocInstance::new(&log, &t, 3);
        let reduced = inst.reduced();
        assert_eq!(reduced.log().num_attrs(), 5); // t has 5 attributes
        assert_eq!(reduced.log().len(), 4); // q5 {2,4} ⊄ t dropped
        assert_eq!(reduced.instance().tuple.count(), 5);
    }

    #[test]
    fn projected_brute_force_matches_direct() {
        let (log, t) = fig1();
        for m in 0..=6 {
            let inst = SocInstance::new(&log, &t, m);
            let direct = BruteForce.solve(&inst);
            let projected = Projected(BruteForce).solve(&inst);
            assert_eq!(projected.satisfied, direct.satisfied, "m = {m}");
            assert!(projected.retained.is_subset(t.attrs()));
            assert_eq!(projected.retained.universe(), 6);
            assert!(projected.retained.count() <= m);
        }
    }

    #[test]
    fn empty_tuple_projects_to_empty_universe() {
        let log = QueryLog::from_bitstrings(&["1100", "0011"]).unwrap();
        let t = Tuple::from_bitstring("0000").unwrap();
        let inst = SocInstance::new(&log, &t, 2);
        let sol = Projected(BruteForce).solve(&inst);
        assert_eq!(sol.satisfied, 0);
        assert_eq!(sol.retained, AttrSet::empty(4));
    }
}
