//! Maximal-frequent-itemset mining by random walks.
//!
//! Two walk strategies are provided:
//!
//! - [`bottom_up_walk`] — the classic GKMS walk (Gunopulos et al., TODS
//!   2003; the paper's reference [11]): start from a random frequent
//!   singleton and add random items while the set stays frequent.
//! - [`top_down_walk`] — the paper's contribution (§IV.C): a two-phase
//!   walk that starts from the *top* of the lattice, removes random items
//!   until the set becomes frequent (*Down Phase*), then adds random items
//!   while frequent (*Up Phase*). On dense tables (such as a complemented
//!   query log) the maximal itemsets live near the top, so this walk
//!   traverses far fewer levels — each walk's [`WalkStats`] records the
//!   count so the ablation bench can demonstrate it.
//!
//! [`MfiMiner`] repeats a walk until every discovered maximal itemset has
//! been seen at least twice (the paper's Good-Turing-motivated stopping
//! heuristic) or an iteration cap is hit.

use std::collections::HashMap;

use soc_data::AttrSet;
use soc_obs::{counter, histogram};
use soc_rng::StdRng;

use crate::{FrequentItemset, SupportCounter};

/// Per-walk trace statistics (level counts feed the walk-direction
/// ablation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkStats {
    /// Lattice levels traversed during the down phase.
    pub down_steps: usize,
    /// Lattice levels traversed during the up phase.
    pub up_steps: usize,
    /// Support evaluations performed.
    pub support_calls: usize,
}

impl WalkStats {
    /// Total lattice levels traversed.
    pub fn total_steps(&self) -> usize {
        self.down_steps + self.up_steps
    }
}

/// True iff `itemset` is frequent and no superset is (checked by single
/// additions — sufficient by downward closure).
pub fn is_maximal<S: SupportCounter>(data: &S, itemset: &AttrSet, threshold: usize) -> bool {
    if data.support(itemset) < threshold {
        return false;
    }
    (0..data.universe())
        .filter(|&i| !itemset.contains(i))
        .all(|i| data.support(&itemset.with(i)) < threshold)
}

/// Up phase shared by both walks: greedily add random items while the set
/// stays frequent. Terminates at a maximal frequent itemset.
fn up_phase<S: SupportCounter>(
    data: &S,
    start: AttrSet,
    threshold: usize,
    rng: &mut StdRng,
    stats: &mut WalkStats,
) -> AttrSet {
    let m = data.universe();
    let mut current = start;
    let mut candidates: Vec<usize> = (0..m).filter(|&i| !current.contains(i)).collect();
    rng.shuffle(&mut candidates);
    // One shuffled pass suffices: if adding `i` keeps the set frequent we
    // take it; if not, no later superset can make `i` frequent again
    // (supports only shrink as the set grows).
    for i in candidates {
        let attempt = current.with(i);
        stats.support_calls += 1;
        if data.support(&attempt) >= threshold {
            current = attempt;
            stats.up_steps += 1;
        }
    }
    current
}

/// The GKMS bottom-up random walk. Returns `None` when `threshold`
/// exceeds the row count (nothing, not even the empty itemset, is
/// frequent). When no *singleton* is frequent the empty itemset is the
/// unique maximal frequent itemset and is returned.
pub fn bottom_up_walk<S: SupportCounter>(
    data: &S,
    threshold: usize,
    rng: &mut StdRng,
) -> (Option<AttrSet>, WalkStats) {
    let m = data.universe();
    let mut stats = WalkStats::default();
    if threshold > data.num_rows() {
        return (None, stats);
    }
    let mut singletons: Vec<usize> = (0..m).collect();
    rng.shuffle(&mut singletons);
    let start = singletons.into_iter().find(|&i| {
        stats.support_calls += 1;
        data.support(&AttrSet::from_indices(m, [i])) >= threshold
    });
    let Some(first) = start else {
        return (Some(AttrSet::empty(m)), stats);
    };
    stats.up_steps += 1; // from ∅ to the singleton
    let mfi = up_phase(
        data,
        AttrSet::from_indices(m, [first]),
        threshold,
        rng,
        &mut stats,
    );
    (Some(mfi), stats)
}

/// The paper's two-phase top-down random walk (§IV.C, Fig 3).
///
/// Returns `None` when even the empty itemset is infrequent, i.e.
/// `threshold > num_rows` (nothing can be frequent).
pub fn top_down_walk<S: SupportCounter>(
    data: &S,
    threshold: usize,
    rng: &mut StdRng,
) -> (Option<AttrSet>, WalkStats) {
    let m = data.universe();
    let mut stats = WalkStats::default();
    if threshold > data.num_rows() {
        return (None, stats);
    }
    // Down phase: from the full itemset, remove random items until frequent.
    let mut current = AttrSet::full(m);
    stats.support_calls += 1;
    while data.support(&current) < threshold {
        let members = current.to_indices();
        debug_assert!(
            !members.is_empty(),
            "empty itemset has support = num_rows >= threshold"
        );
        let victim = members[rng.random_range(0..members.len())];
        current.remove(victim);
        stats.down_steps += 1;
        stats.support_calls += 1;
    }
    // Up phase: climb back to a maximal frequent itemset.
    let mfi = up_phase(data, current, threshold, rng, &mut stats);
    (Some(mfi), stats)
}

/// Which walk the miner repeats.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkDirection {
    /// The paper's two-phase top-down walk.
    TopDown,
    /// The GKMS bottom-up walk (baseline).
    BottomUp,
}

/// Stopping rule for the repeated walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopRule {
    /// Stop once every discovered MFI has been seen at least twice — the
    /// paper's Good-Turing heuristic ("the number of itemsets seen exactly
    /// once estimates the undiscovered mass"; see [`crate::good_turing`]).
    SeenTwice,
    /// Run exactly this many walks (ablation baseline).
    FixedIterations(usize),
}

/// Configuration of the repeated random-walk miner.
#[derive(Clone, Debug)]
pub struct MfiConfig {
    /// Support threshold `r`.
    pub threshold: usize,
    /// Hard cap on walk iterations.
    pub max_iterations: usize,
    /// Floor on walk iterations before [`StopRule::SeenTwice`] may fire.
    /// Two lucky repeats of a single itemset would otherwise stop the
    /// miner instantly; a modest floor makes missing an itemset unlikely
    /// while keeping the adaptive character of the rule.
    pub min_iterations: usize,
    /// Walk strategy.
    pub direction: WalkDirection,
    /// Stopping rule.
    pub stop: StopRule,
}

impl Default for MfiConfig {
    fn default() -> Self {
        Self {
            threshold: 1,
            max_iterations: 10_000,
            min_iterations: 64,
            direction: WalkDirection::TopDown,
            stop: StopRule::SeenTwice,
        }
    }
}

/// Result of a repeated random-walk mining run.
#[derive(Clone, Debug)]
pub struct MfiResult {
    /// Discovered maximal frequent itemsets with supports.
    pub itemsets: Vec<FrequentItemset>,
    /// How many times each itemset (index-aligned) was rediscovered.
    pub times_discovered: Vec<usize>,
    /// Walks performed.
    pub iterations: usize,
    /// True if the stop rule was satisfied (false = hit `max_iterations`).
    pub converged: bool,
    /// Aggregate walk statistics.
    pub stats: WalkStats,
}

impl MfiResult {
    /// The Good-Turing estimate of undiscovered probability mass at the
    /// end of the run.
    pub fn unseen_mass_estimate(&self) -> f64 {
        crate::good_turing::unseen_mass(self.times_discovered.iter().copied(), self.iterations)
    }
}

/// Mirrors a finished run's counters into the process-wide registry.
/// `dedup_hits` = walks that rediscovered an already-seen itemset.
fn publish_run_metrics(result: &MfiResult) {
    if !soc_obs::metrics_enabled() {
        return;
    }
    counter!("mfi.walk_rounds").add(result.iterations as u64);
    counter!("mfi.support_calls").add(result.stats.support_calls as u64);
    counter!("mfi.dedup_hits").add(result.iterations.saturating_sub(result.itemsets.len()) as u64);
}

/// Repeats a random walk until the stop rule fires, collecting distinct
/// maximal frequent itemsets — `ComputeMaxFreqItemsets` of the paper's
/// Fig 5 pseudo-code.
pub struct MfiMiner {
    config: MfiConfig,
}

impl MfiMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MfiConfig) -> Self {
        assert!(config.threshold > 0, "support threshold must be positive");
        assert!(config.max_iterations > 0, "need at least one iteration");
        Self { config }
    }

    /// Runs the repeated walk over `data`.
    pub fn mine<S: SupportCounter>(&self, data: &S, rng: &mut StdRng) -> MfiResult {
        let _span = soc_obs::span("mine_mfi");
        let cfg = &self.config;
        let mut seen: HashMap<AttrSet, (usize, usize)> = HashMap::new(); // set -> (support, count)
        let mut stats = WalkStats::default();
        let mut iterations = 0;
        let mut converged = false;

        while iterations < cfg.max_iterations {
            let should_stop = match cfg.stop {
                StopRule::SeenTwice => {
                    iterations >= cfg.min_iterations.max(1) && seen.values().all(|&(_, c)| c >= 2)
                }
                StopRule::FixedIterations(n) => iterations >= n,
            };
            if should_stop {
                converged = true;
                break;
            }

            let (found, wstats) = match cfg.direction {
                WalkDirection::TopDown => top_down_walk(data, cfg.threshold, rng),
                WalkDirection::BottomUp => bottom_up_walk(data, cfg.threshold, rng),
            };
            stats.down_steps += wstats.down_steps;
            stats.up_steps += wstats.up_steps;
            stats.support_calls += wstats.support_calls;
            iterations += 1;

            match found {
                Some(mfi) => {
                    let support = data.support(&mfi);
                    let entry = seen.entry(mfi).or_insert((support, 0));
                    entry.1 += 1;
                }
                None => {
                    // Nothing is frequent at this threshold; report empty.
                    converged = true;
                    break;
                }
            }
        }

        let mut itemsets = Vec::with_capacity(seen.len());
        let mut times = Vec::with_capacity(seen.len());
        let mut entries: Vec<(AttrSet, (usize, usize))> = seen.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic output order
        for (items, (support, count)) in entries {
            itemsets.push(FrequentItemset { items, support });
            times.push(count);
        }
        let result = MfiResult {
            itemsets,
            times_discovered: times,
            iterations,
            converged,
            stats,
        };
        publish_run_metrics(&result);
        result
    }
}

/// Walks per worker chunk in [`MfiMiner::mine_parallel`]. Large enough
/// to amortize buffer handoff, small enough that the merged stop rule is
/// evaluated often.
const WALKS_PER_CHUNK: usize = 8;

/// One worker's fixed-budget batch of walk results, identified by its
/// `(round, worker)` stream position.
struct WalkChunk {
    found: Vec<(AttrSet, usize)>,
    stats: WalkStats,
}

/// The deterministic walk schedule: how many walks worker `j` performs
/// in chunk round `round`, given a total budget of `target` walks over
/// `workers` streams. Depends on nothing but its arguments — never on
/// timing — so every worker and the coordinator can evaluate it
/// independently without synchronising.
fn chunk_walks(target: usize, workers: usize, round: usize, j: usize) -> usize {
    let scheduled_before = round.saturating_mul(workers * WALKS_PER_CHUNK);
    let round_total = target
        .saturating_sub(scheduled_before)
        .min(workers * WALKS_PER_CHUNK);
    let (base, extra) = (round_total / workers, round_total % workers);
    base + usize::from(j < extra)
}

/// Accumulates merged chunks in stream order and evaluates the stop rule
/// on the merged stream — shared by the threaded and the single-worker
/// inline paths of [`MfiMiner::mine_parallel`] so both see bit-identical
/// merge semantics.
struct MergeState {
    seen: HashMap<AttrSet, (usize, usize)>,
    stats: WalkStats,
    iterations: usize,
}

impl MergeState {
    fn new() -> Self {
        Self {
            seen: HashMap::new(),
            stats: WalkStats::default(),
            iterations: 0,
        }
    }

    /// Folds one chunk in; returns true when the stop rule now holds.
    fn merge(&mut self, chunk: WalkChunk, cfg: &MfiConfig) -> bool {
        self.iterations += chunk.found.len();
        self.stats.down_steps += chunk.stats.down_steps;
        self.stats.up_steps += chunk.stats.up_steps;
        self.stats.support_calls += chunk.stats.support_calls;
        for (mfi, support) in chunk.found {
            self.seen.entry(mfi).or_insert((support, 0)).1 += 1;
        }
        counter!("mfi.chunks_merged").inc();
        match cfg.stop {
            StopRule::SeenTwice => {
                self.iterations >= cfg.min_iterations.max(1)
                    && self.seen.values().all(|&(_, c)| c >= 2)
            }
            StopRule::FixedIterations(n) => self.iterations >= n && n < cfg.max_iterations,
        }
    }

    fn into_result(self, converged: bool) -> MfiResult {
        let mut itemsets = Vec::with_capacity(self.seen.len());
        let mut times = Vec::with_capacity(self.seen.len());
        let mut entries: Vec<(AttrSet, (usize, usize))> = self.seen.into_iter().collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0)); // same order as the serial miner
        for (items, (support, count)) in entries {
            itemsets.push(FrequentItemset { items, support });
            times.push(count);
        }
        let result = MfiResult {
            itemsets,
            times_discovered: times,
            iterations: self.iterations,
            converged,
            stats: self.stats,
        };
        publish_run_metrics(&result);
        result
    }
}

impl MfiMiner {
    /// Runs one fixed-budget chunk of walks on `rng`.
    fn run_chunk<S: SupportCounter>(&self, data: &S, rng: &mut StdRng, walks: usize) -> WalkChunk {
        let cfg = &self.config;
        let mut found: Vec<(AttrSet, usize)> = Vec::with_capacity(walks);
        let mut stats = WalkStats::default();
        for _ in 0..walks {
            let (mfi, s) = match cfg.direction {
                WalkDirection::TopDown => top_down_walk(data, cfg.threshold, rng),
                WalkDirection::BottomUp => bottom_up_walk(data, cfg.threshold, rng),
            };
            stats.down_steps += s.down_steps;
            stats.up_steps += s.up_steps;
            stats.support_calls += s.support_calls;
            let mfi = mfi.expect("threshold <= num_rows was checked upfront");
            let support = data.support(&mfi);
            found.push((mfi, support));
        }
        WalkChunk { found, stats }
    }

    /// Runs the repeated walk across `workers` threads with an
    /// **asynchronous stream merge**: there is no stop-the-world round
    /// barrier. Each worker races ahead through its own fixed-budget
    /// chunk schedule and deposits finished chunks into a shared ordered
    /// buffer; the calling thread merges chunks strictly in
    /// `(round, worker)` stream order *as they arrive* and evaluates the
    /// duplicate-seen stop rule on the merged stream after every chunk.
    /// When it fires, a stop flag drains the workers; chunks past the
    /// stop point are discarded (counted in `mfi.walks_discarded`), so
    /// wasted work costs time, never determinism.
    ///
    /// Determinism rules (documented in DESIGN.md):
    ///
    /// - worker `j` draws from its own [`StdRng::stream`]`(seed, j)` —
    ///   no worker ever touches another's generator;
    /// - chunk sizes come from [`chunk_walks`], a pure function of the
    ///   budget — never from timing;
    /// - the merge consumes chunks in `(round, worker)`-lexicographic
    ///   order no matter their arrival order, and the stop rule is
    ///   evaluated only on that merged prefix.
    ///
    /// Consequently the result depends only on `(seed, workers)` — never
    /// on scheduling — and `workers == 1` runs inline (no threads, no
    /// buffers) yet produces the byte-identical result the threaded path
    /// would.
    pub fn mine_parallel<S: SupportCounter + Sync>(
        &self,
        data: &S,
        seed: u64,
        workers: usize,
    ) -> MfiResult {
        assert!(workers > 0, "need at least one mining worker");
        let _span = soc_obs::span("mine_mfi");
        let cfg = &self.config;
        let mut merged = MergeState::new();

        // Nothing (not even ∅) is frequent: every walk would report None,
        // matching the serial miner's immediate empty-and-converged exit.
        if cfg.threshold > data.num_rows() {
            return merged.into_result(true);
        }
        let target = match cfg.stop {
            StopRule::FixedIterations(n) => n.min(cfg.max_iterations),
            StopRule::SeenTwice => cfg.max_iterations,
        };

        if workers == 1 {
            // Inline fast path: chunk, merge, re-check — the same
            // chunk-granularity stop evaluation as the threaded merge.
            let mut rng = StdRng::stream(seed, 0);
            let mut converged = false;
            for round in 0.. {
                let walks = chunk_walks(target, 1, round, 0);
                if walks == 0 || converged {
                    break;
                }
                let chunk = self.run_chunk(data, &mut rng, walks);
                converged = merged.merge(chunk, cfg);
            }
            return merged.into_result(converged);
        }

        use std::sync::atomic::{AtomicBool, Ordering};
        use std::sync::{Condvar, Mutex};

        struct Buffers {
            /// Finished chunks not yet merged, keyed by stream position.
            ready: Mutex<std::collections::BTreeMap<(usize, usize), WalkChunk>>,
            /// Signals the coordinator that a chunk arrived.
            arrived: Condvar,
            /// Set by the coordinator once the stop rule fired (or the
            /// schedule is exhausted); workers drain out at their next
            /// chunk boundary.
            stop: AtomicBool,
        }
        let buffers = Buffers {
            ready: Mutex::new(std::collections::BTreeMap::new()),
            arrived: Condvar::new(),
            stop: AtomicBool::new(false),
        };

        let converged = std::thread::scope(|scope| {
            for j in 1..workers {
                let buffers = &buffers;
                scope.spawn(move || {
                    let mut rng = StdRng::stream(seed, j as u64);
                    for round in 0.. {
                        let walks = chunk_walks(target, workers, round, j);
                        if walks == 0 || buffers.stop.load(Ordering::Acquire) {
                            break;
                        }
                        let chunk = self.run_chunk(data, &mut rng, walks);
                        let mut ready = buffers.ready.lock().expect("chunk buffer poisoned");
                        ready.insert((round, j), chunk);
                        drop(ready);
                        buffers.arrived.notify_all();
                    }
                });
            }

            // The calling thread doubles as worker 0 *and* coordinator:
            // it walks its own chunks, then merges everything that is
            // ready in stream order, blocking only when the next chunk in
            // stream order is still being walked by a peer.
            let mut rng = StdRng::stream(seed, 0);
            let mut converged = false;
            let mut next = (0usize, 0usize); // next (round, worker) to merge
            'mine: for round in 0.. {
                let walks = chunk_walks(target, workers, round, 0);
                if walks == 0 {
                    break;
                }
                let own = self.run_chunk(data, &mut rng, walks);
                {
                    let mut ready = buffers.ready.lock().expect("chunk buffer poisoned");
                    ready.insert((round, 0), own);
                }
                // Merge every chunk that is ready *and* next in stream
                // order. Chunks merge as they arrive — no barrier: worker
                // 0 proceeds to its round r+1 chunk even while slower
                // peers still owe chunks from round r.
                loop {
                    let mut ready = buffers.ready.lock().expect("chunk buffer poisoned");
                    let chunk = loop {
                        if let Some(chunk) = ready.remove(&next) {
                            // Buffered-but-unmergeable chunks measure how
                            // far arrival order ran ahead of stream order.
                            histogram!("mfi.merge_lag").record(ready.len() as u64);
                            break chunk;
                        }
                        if next.0 > round {
                            // The next chunk in stream order is ours to
                            // produce: go walk it.
                            drop(ready);
                            continue 'mine;
                        }
                        // A peer still owes this chunk. It is scheduled
                        // (its round <= our round <= last scheduled
                        // round) and the stop flag is still clear, so the
                        // peer is guaranteed to deliver: wait, don't spin.
                        ready = buffers.arrived.wait(ready).expect("chunk buffer poisoned");
                    };
                    drop(ready);
                    converged = merged.merge(chunk, cfg);
                    if converged {
                        break 'mine;
                    }
                    next = if next.1 + 1 < workers {
                        (next.0, next.1 + 1)
                    } else {
                        (next.0 + 1, 0)
                    };
                    if chunk_walks(target, workers, next.0, next.1) == 0 {
                        // Schedule exhausted and every chunk merged.
                        break 'mine;
                    }
                }
            }
            buffers.stop.store(true, Ordering::Release);
            converged
        });

        // Chunks walked past the stop point are deterministic waste:
        // account for them so the scaling grid can see over-mining.
        if soc_obs::metrics_enabled() {
            let leftover = buffers.ready.lock().expect("chunk buffer poisoned");
            let wasted: usize = leftover.values().map(|c| c.found.len()).sum();
            counter!("mfi.walks_discarded").add(wasted as u64);
        }
        merged.into_result(converged)
    }
}

/// Exhaustive MFI enumeration — test oracle for tiny universes.
///
/// # Panics
/// Panics if the universe exceeds 20 items or `threshold == 0`.
pub fn enumerate_maximal<S: SupportCounter>(data: &S, threshold: usize) -> Vec<FrequentItemset> {
    let frequent = crate::apriori::enumerate_frequent(data, threshold);
    let mut out: Vec<FrequentItemset> = frequent
        .iter()
        .filter(|f| is_maximal(data, &f.items, threshold))
        .cloned()
        .collect();
    // `enumerate_frequent` skips the empty itemset (Apriori convention);
    // it is nonetheless the unique MFI when no singleton is frequent.
    let empty = AttrSet::empty(data.universe());
    if out.is_empty() && is_maximal(data, &empty, threshold) {
        out.push(FrequentItemset {
            support: data.support(&empty),
            items: empty,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionSet;

    fn sample() -> TransactionSet {
        TransactionSet::new(
            6,
            vec![
                AttrSet::from_indices(6, [0, 1, 2, 3]),
                AttrSet::from_indices(6, [0, 1, 2]),
                AttrSet::from_indices(6, [0, 1, 4]),
                AttrSet::from_indices(6, [2, 3, 4]),
                AttrSet::from_indices(6, [0, 1, 2, 3, 4]),
            ],
        )
    }

    fn canon(mut v: Vec<FrequentItemset>) -> Vec<String> {
        v.sort_by_key(|f| f.items.to_bitstring());
        v.into_iter().map(|f| f.items.to_bitstring()).collect()
    }

    #[test]
    fn walks_return_maximal_itemsets() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(42);
        for threshold in 1..=3 {
            for _ in 0..20 {
                let (td, _) = top_down_walk(&t, threshold, &mut rng);
                assert!(is_maximal(&t, &td.unwrap(), threshold));
                let (bu, _) = bottom_up_walk(&t, threshold, &mut rng);
                assert!(is_maximal(&t, &bu.unwrap(), threshold));
            }
        }
    }

    #[test]
    fn miner_discovers_all_mfis() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(7);
        for threshold in 1..=3 {
            let expected = canon(enumerate_maximal(&t, threshold));
            let miner = MfiMiner::new(MfiConfig {
                threshold,
                max_iterations: 2_000,
                min_iterations: 1,
                direction: WalkDirection::TopDown,
                stop: StopRule::FixedIterations(500),
            });
            let result = miner.mine(&t, &mut rng);
            assert_eq!(canon(result.itemsets), expected, "threshold {threshold}");
        }
    }

    #[test]
    fn seen_twice_stop_rule_converges() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(3);
        let miner = MfiMiner::new(MfiConfig {
            threshold: 2,
            max_iterations: 5_000,
            min_iterations: 1,
            direction: WalkDirection::TopDown,
            stop: StopRule::SeenTwice,
        });
        let result = miner.mine(&t, &mut rng);
        assert!(result.converged);
        assert!(result.times_discovered.iter().all(|&c| c >= 2));
        assert!((result.unseen_mass_estimate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn bottom_up_agrees_with_top_down() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(11);
        let run = |dir| {
            let miner = MfiMiner::new(MfiConfig {
                threshold: 2,
                max_iterations: 2_000,
                min_iterations: 1,
                direction: dir,
                stop: StopRule::FixedIterations(400),
            });
            canon(miner.mine(&t, &mut StdRng::seed_from_u64(5)).itemsets)
        };
        let _ = &mut rng;
        assert_eq!(run(WalkDirection::TopDown), run(WalkDirection::BottomUp));
    }

    #[test]
    fn top_down_traverses_fewer_levels_on_dense_data() {
        // Dense table: complement of a sparse log, the paper's argument.
        // With a low threshold the maximal itemsets sit near the top of
        // the lattice, which is exactly the regime §IV.C argues about.
        let m = 30;
        let mut rows = Vec::new();
        for i in 0..20 {
            // Sparse rows of 2 items → dense complements of 28 items.
            rows.push(AttrSet::from_indices(m, [i % m, (i * 7 + 1) % m]).complement());
        }
        let t = TransactionSet::new(m, rows);
        let threshold = 2;
        let mut td_steps = 0;
        let mut bu_steps = 0;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let (r1, s1) = top_down_walk(&t, threshold, &mut rng);
            let (r2, s2) = bottom_up_walk(&t, threshold, &mut rng);
            assert!(r1.is_some() && r2.is_some());
            td_steps += s1.total_steps();
            bu_steps += s2.total_steps();
        }
        assert!(
            td_steps < bu_steps,
            "top-down {td_steps} should beat bottom-up {bu_steps} on dense data"
        );
    }

    #[test]
    fn impossible_threshold_reports_empty() {
        let t = sample();
        let mut rng = StdRng::seed_from_u64(1);
        let (r, _) = top_down_walk(&t, 100, &mut rng);
        assert!(r.is_none());
        let miner = MfiMiner::new(MfiConfig {
            threshold: 100,
            ..Default::default()
        });
        let result = miner.mine(&t, &mut rng);
        assert!(result.itemsets.is_empty());
        assert!(result.converged);
    }

    #[test]
    fn full_set_frequent_is_sole_mfi() {
        let t = TransactionSet::new(4, vec![AttrSet::full(4); 3]);
        let mut rng = StdRng::seed_from_u64(2);
        let (r, stats) = top_down_walk(&t, 2, &mut rng);
        assert_eq!(r.unwrap(), AttrSet::full(4));
        assert_eq!(stats.down_steps, 0);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::TransactionSet;

    fn sample() -> TransactionSet {
        TransactionSet::new(
            6,
            vec![
                AttrSet::from_indices(6, [0, 1, 2, 3]),
                AttrSet::from_indices(6, [0, 1, 2]),
                AttrSet::from_indices(6, [0, 1, 4]),
                AttrSet::from_indices(6, [2, 3, 4]),
                AttrSet::from_indices(6, [0, 1, 2, 3, 4]),
            ],
        )
    }

    fn canon(mut v: Vec<FrequentItemset>) -> Vec<String> {
        v.sort_by_key(|f| f.items.to_bitstring());
        v.into_iter().map(|f| f.items.to_bitstring()).collect()
    }

    fn miner(threshold: usize, stop: StopRule) -> MfiMiner {
        MfiMiner::new(MfiConfig {
            threshold,
            max_iterations: 2_000,
            min_iterations: 1,
            direction: WalkDirection::TopDown,
            stop,
        })
    }

    #[test]
    fn parallel_discovers_all_mfis() {
        let t = sample();
        for threshold in 1..=3 {
            let expected = canon(enumerate_maximal(&t, threshold));
            let result = miner(threshold, StopRule::FixedIterations(500)).mine_parallel(&t, 42, 4);
            assert!(result.converged);
            assert_eq!(result.iterations, 500);
            assert_eq!(canon(result.itemsets), expected, "threshold {threshold}");
        }
    }

    /// The determinism contract of the async merge: for a fixed
    /// `(seed, workers)` the full result — itemsets, discovery counts,
    /// iteration count, convergence flag, walk statistics — is
    /// bit-identical across repeated runs, no matter how the OS
    /// schedules the worker threads.
    #[test]
    fn parallel_is_deterministic_given_seed_and_workers() {
        let t = sample();
        for workers in [1, 2, 4] {
            let run = || miner(2, StopRule::SeenTwice).mine_parallel(&t, 0x000D_5EED, workers);
            let first = run();
            for _ in 0..2 {
                let again = run();
                assert_eq!(
                    canon(first.itemsets.clone()),
                    canon(again.itemsets.clone()),
                    "workers {workers}"
                );
                assert_eq!(first.times_discovered, again.times_discovered);
                assert_eq!(first.iterations, again.iterations);
                assert_eq!(first.converged, again.converged);
                assert_eq!(first.stats, again.stats);
            }
        }
    }

    #[test]
    fn worker_count_does_not_change_the_itemsets() {
        let t = sample();
        let with_workers = |w: usize| {
            canon(
                miner(2, StopRule::FixedIterations(400))
                    .mine_parallel(&t, 7, w)
                    .itemsets,
            )
        };
        // Discovery counts differ across worker counts, but a generous
        // budget makes the discovered *set* complete either way.
        assert_eq!(with_workers(1), with_workers(4));
    }

    #[test]
    fn parallel_seen_twice_converges() {
        let t = sample();
        let result = miner(2, StopRule::SeenTwice).mine_parallel(&t, 3, 3);
        assert!(result.converged);
        assert!(result.times_discovered.iter().all(|&c| c >= 2));
        assert!((result.unseen_mass_estimate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_impossible_threshold_reports_empty() {
        let t = sample();
        let result = miner(100, StopRule::SeenTwice).mine_parallel(&t, 1, 2);
        assert!(result.itemsets.is_empty());
        assert!(result.converged);
        assert_eq!(result.iterations, 0);
    }

    /// The deterministic chunk schedule must cover the budget exactly:
    /// summed over workers and rounds it equals the target, and it is
    /// zero forever after exhaustion.
    #[test]
    fn chunk_schedule_partitions_the_budget() {
        for workers in [1, 2, 3, 4, 7] {
            for target in [0, 1, 5, 8, 17, 64, 500] {
                let mut total = 0;
                for round in 0..=(target / WALKS_PER_CHUNK + 2) {
                    for j in 0..workers {
                        total += chunk_walks(target, workers, round, j);
                    }
                }
                assert_eq!(total, target, "workers {workers} target {target}");
                let spent_rounds = target / (workers * WALKS_PER_CHUNK) + 2;
                for j in 0..workers {
                    assert_eq!(chunk_walks(target, workers, spent_rounds, j), 0);
                }
            }
        }
    }
}
