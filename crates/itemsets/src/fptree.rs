//! FP-growth frequent-itemset mining (Han, Pei & Yin, SIGMOD 2000).
//!
//! The second classic baseline the paper discusses in §IV.C ("the sheer
//! number of frequent itemsets will also prevent other algorithms such as
//! FP-Tree from being effective" on dense tables). Implemented over an
//! arena-allocated prefix tree with per-item header chains.

use std::collections::HashMap;

use soc_data::AttrSet;

use crate::{FrequentItemset, TransactionSet};

const NO_NODE: usize = usize::MAX;

struct Node {
    item: usize,
    count: usize,
    parent: usize,
    /// `(item, node)` pairs; trees are shallow and narrow enough that a
    /// linear scan beats a hash map per node.
    children: Vec<(usize, usize)>,
}

struct FpTree {
    arena: Vec<Node>,
    /// All nodes carrying each item, for conditional-base extraction.
    header: HashMap<usize, Vec<usize>>,
    /// Items in increasing frequency order (mining order).
    items_ascending: Vec<usize>,
}

impl FpTree {
    fn new() -> Self {
        Self {
            arena: vec![Node {
                item: NO_NODE,
                count: 0,
                parent: NO_NODE,
                children: Vec::new(),
            }],
            header: HashMap::new(),
            items_ascending: Vec::new(),
        }
    }

    /// Builds a tree from weighted transactions already filtered and
    /// sorted by descending global frequency.
    fn build(transactions: &[(Vec<usize>, usize)], item_freq: &HashMap<usize, usize>) -> Self {
        let mut tree = Self::new();
        let mut items: Vec<usize> = item_freq.keys().copied().collect();
        items.sort_by_key(|i| (item_freq[i], *i));
        tree.items_ascending = items;
        for (path, weight) in transactions {
            tree.insert(path, *weight);
        }
        tree
    }

    fn insert(&mut self, path: &[usize], weight: usize) {
        let mut cur = 0usize;
        for &item in path {
            let found = self.arena[cur]
                .children
                .iter()
                .find(|&&(it, _)| it == item)
                .map(|&(_, n)| n);
            let child = match found {
                Some(n) => n,
                None => {
                    let n = self.arena.len();
                    self.arena.push(Node {
                        item,
                        count: 0,
                        parent: cur,
                        children: Vec::new(),
                    });
                    self.arena[cur].children.push((item, n));
                    self.header.entry(item).or_default().push(n);
                    n
                }
            };
            self.arena[child].count += weight;
            cur = child;
        }
    }

    /// Extracts the conditional pattern base of `item`: for each node
    /// carrying `item`, the path to the root with the node's count.
    fn conditional_base(&self, item: usize) -> Vec<(Vec<usize>, usize)> {
        let mut base = Vec::new();
        for &n in self.header.get(&item).map_or(&[][..], |v| v) {
            let count = self.arena[n].count;
            let mut path = Vec::new();
            let mut cur = self.arena[n].parent;
            while cur != 0 && cur != NO_NODE {
                path.push(self.arena[cur].item);
                cur = self.arena[cur].parent;
            }
            path.reverse();
            if !path.is_empty() {
                base.push((path, count));
            }
        }
        base
    }

    fn item_support(&self, item: usize) -> usize {
        self.header
            .get(&item)
            .map_or(0, |nodes| nodes.iter().map(|&n| self.arena[n].count).sum())
    }
}

/// Mines all itemsets with `support >= threshold` using FP-growth.
///
/// # Panics
/// Panics if `threshold == 0`.
pub fn fp_growth(data: &TransactionSet, threshold: usize) -> Vec<FrequentItemset> {
    assert!(threshold > 0, "support threshold must be positive");
    let universe = data_universe(data);

    // Global singleton frequencies.
    let mut freq: HashMap<usize, usize> = HashMap::new();
    for row in data.rows() {
        for i in row.iter() {
            *freq.entry(i).or_default() += 1;
        }
    }
    freq.retain(|_, c| *c >= threshold);

    // Project transactions onto frequent items, sorted by descending
    // frequency (ties by ascending item id for determinism).
    let transactions: Vec<(Vec<usize>, usize)> = data
        .rows()
        .iter()
        .map(|row| {
            let mut path: Vec<usize> = row.iter().filter(|i| freq.contains_key(i)).collect();
            path.sort_by_key(|i| (std::cmp::Reverse(freq[i]), *i));
            (path, 1)
        })
        .filter(|(p, _)| !p.is_empty())
        .collect();

    let tree = FpTree::build(&transactions, &freq);
    let mut out = Vec::new();
    mine(&tree, threshold, &[], universe, &mut out);
    out
}

fn data_universe(data: &TransactionSet) -> usize {
    use crate::SupportCounter;
    data.universe()
}

fn mine(
    tree: &FpTree,
    threshold: usize,
    suffix: &[usize],
    universe: usize,
    out: &mut Vec<FrequentItemset>,
) {
    for &item in &tree.items_ascending {
        let support = tree.item_support(item);
        if support < threshold {
            continue;
        }
        let mut itemset: Vec<usize> = suffix.to_vec();
        itemset.push(item);
        out.push(FrequentItemset {
            items: AttrSet::from_indices(universe, itemset.iter().copied()),
            support,
        });

        // Conditional tree on `item`.
        let base = tree.conditional_base(item);
        if base.is_empty() {
            continue;
        }
        let mut cond_freq: HashMap<usize, usize> = HashMap::new();
        for (path, w) in &base {
            for &i in path {
                *cond_freq.entry(i).or_default() += w;
            }
        }
        cond_freq.retain(|_, c| *c >= threshold);
        if cond_freq.is_empty() {
            continue;
        }
        let cond_transactions: Vec<(Vec<usize>, usize)> = base
            .iter()
            .map(|(path, w)| {
                let mut p: Vec<usize> = path
                    .iter()
                    .copied()
                    .filter(|i| cond_freq.contains_key(i))
                    .collect();
                p.sort_by_key(|i| (std::cmp::Reverse(cond_freq[i]), *i));
                (p, *w)
            })
            .filter(|(p, _)| !p.is_empty())
            .collect();
        let cond_tree = FpTree::build(&cond_transactions, &cond_freq);
        mine(&cond_tree, threshold, &itemset, universe, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apriori::{apriori, enumerate_frequent, AprioriLimits};

    fn sample() -> TransactionSet {
        TransactionSet::new(
            6,
            vec![
                AttrSet::from_indices(6, [0, 1, 4]),
                AttrSet::from_indices(6, [1, 3]),
                AttrSet::from_indices(6, [1, 2]),
                AttrSet::from_indices(6, [0, 1, 3]),
                AttrSet::from_indices(6, [0, 2]),
                AttrSet::from_indices(6, [1, 2]),
                AttrSet::from_indices(6, [0, 2]),
                AttrSet::from_indices(6, [0, 1, 2, 4]),
                AttrSet::from_indices(6, [0, 1, 2]),
                AttrSet::from_indices(6, [5]),
            ],
        )
    }

    fn canon(mut v: Vec<FrequentItemset>) -> Vec<(String, usize)> {
        v.sort_by_key(|f| f.items.to_bitstring());
        v.into_iter()
            .map(|f| (f.items.to_bitstring(), f.support))
            .collect()
    }

    #[test]
    fn agrees_with_apriori_and_enumeration() {
        let t = sample();
        for threshold in 1..=4 {
            let fp = fp_growth(&t, threshold);
            let ap = match apriori(&t, threshold, &AprioriLimits::default()) {
                crate::apriori::AprioriOutcome::Complete(v) => v,
                other => panic!("{other:?}"),
            };
            let en = enumerate_frequent(&t, threshold);
            assert_eq!(
                canon(fp.clone()),
                canon(en),
                "fp vs enum, threshold {threshold}"
            );
            assert_eq!(canon(fp), canon(ap), "fp vs apriori, threshold {threshold}");
        }
    }

    #[test]
    fn empty_result_above_max_support() {
        let t = sample();
        assert!(fp_growth(&t, 11).is_empty());
    }

    #[test]
    fn single_transaction() {
        let t = TransactionSet::new(3, vec![AttrSet::from_indices(3, [0, 2])]);
        let fp = fp_growth(&t, 1);
        assert_eq!(fp.len(), 3); // {0}, {2}, {0,2}
    }
}
