//! Transaction collections and support counting.
//!
//! Mining algorithms in this crate are generic over a [`SupportCounter`]
//! so that the SOC layer can mine the *complement* of a query log without
//! materializing the dense table `~Q` (§IV.C of the paper): for an itemset
//! `I`, `freq_{~Q}(I) = |{q ∈ Q : q ∩ I = ∅}|`.

use soc_data::{AttrSet, QueryLog};

/// Anything that can report the support of an itemset.
pub trait SupportCounter {
    /// Number of items in the universe (`M`).
    fn universe(&self) -> usize;
    /// Total number of transactions.
    fn num_rows(&self) -> usize;
    /// Number of transactions supporting (⊇) the itemset.
    fn support(&self, itemset: &AttrSet) -> usize;
}

/// A plain in-memory transaction table: each row is the set of items it
/// contains; a row supports an itemset iff the row is a superset of it.
#[derive(Clone, Debug)]
pub struct TransactionSet {
    universe: usize,
    rows: Vec<AttrSet>,
}

impl TransactionSet {
    /// Builds a transaction set.
    ///
    /// # Panics
    /// Panics if any row's universe differs from `universe`.
    pub fn new(universe: usize, rows: Vec<AttrSet>) -> Self {
        for r in &rows {
            assert_eq!(r.universe(), universe, "row universe mismatch");
        }
        Self { universe, rows }
    }

    /// The rows.
    pub fn rows(&self) -> &[AttrSet] {
        &self.rows
    }

    /// Materializes the complement of a query log — the dense table `~Q`.
    /// Baselines and tests only; production mining uses
    /// [`ComplementedLog`] instead.
    pub fn complement_of_log(log: &QueryLog) -> Self {
        Self::new(
            log.num_attrs(),
            log.queries()
                .iter()
                .map(|q| q.attrs().complement())
                .collect(),
        )
    }

    /// Builds directly from a query log (each query's attribute set is a
    /// row).
    pub fn from_log(log: &QueryLog) -> Self {
        Self::new(
            log.num_attrs(),
            log.queries().iter().map(|q| q.attrs().clone()).collect(),
        )
    }
}

impl SupportCounter for TransactionSet {
    fn universe(&self) -> usize {
        self.universe
    }

    fn num_rows(&self) -> usize {
        self.rows.len()
    }

    fn support(&self, itemset: &AttrSet) -> usize {
        self.rows.iter().filter(|r| itemset.is_subset(r)).count()
    }
}

/// A *virtual* view of the complement `~Q` of a query log: supports are
/// counted by disjointness against the sparse original, so the dense table
/// never exists in memory.
#[derive(Clone, Debug)]
pub struct ComplementedLog<'a> {
    log: &'a QueryLog,
}

impl<'a> ComplementedLog<'a> {
    /// Wraps a query log as the virtual transaction table `~Q`.
    pub fn new(log: &'a QueryLog) -> Self {
        Self { log }
    }
}

impl SupportCounter for ComplementedLog<'_> {
    fn universe(&self) -> usize {
        self.log.num_attrs()
    }

    fn num_rows(&self) -> usize {
        self.log.len()
    }

    fn support(&self, itemset: &AttrSet) -> usize {
        self.log.complement_support(itemset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> TransactionSet {
        TransactionSet::new(
            5,
            vec![
                AttrSet::from_indices(5, [0, 1, 2]),
                AttrSet::from_indices(5, [0, 1]),
                AttrSet::from_indices(5, [1, 3]),
                AttrSet::from_indices(5, [0, 1, 2, 3, 4]),
            ],
        )
    }

    #[test]
    fn direct_support() {
        let t = rows();
        assert_eq!(t.support(&AttrSet::from_indices(5, [0, 1])), 3);
        assert_eq!(t.support(&AttrSet::from_indices(5, [1])), 4);
        assert_eq!(t.support(&AttrSet::from_indices(5, [4])), 1);
        assert_eq!(t.support(&AttrSet::empty(5)), 4);
    }

    #[test]
    fn virtual_complement_matches_materialized() {
        let log = QueryLog::from_bitstrings(&["11000", "00110", "10001", "01000"]).unwrap();
        let virt = ComplementedLog::new(&log);
        let mat = TransactionSet::complement_of_log(&log);
        assert_eq!(virt.num_rows(), mat.num_rows());
        // Exhaustive over all 32 itemsets.
        for mask in 0u32..32 {
            let set = AttrSet::from_indices(5, (0..5).filter(|&i| mask >> i & 1 == 1));
            assert_eq!(virt.support(&set), mat.support(&set), "itemset {set}");
        }
    }

    #[test]
    #[should_panic(expected = "row universe mismatch")]
    fn universe_mismatch_panics() {
        let _ = TransactionSet::new(4, vec![AttrSet::empty(5)]);
    }
}
