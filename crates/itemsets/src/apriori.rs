//! Level-wise frequent-itemset mining (Apriori, Agrawal & Srikant 1994).
//!
//! Included both as a correctness baseline for the random-walk miners and
//! to reproduce the paper's §IV.C argument: on the dense complement `~Q`
//! level-wise algorithms "will only progress past just a few initial
//! levels before being overcome by an intractable explosion in the size of
//! candidate sets". The [`AprioriLimits`] guards make that explosion a
//! reportable outcome instead of an OOM.

use std::collections::HashSet;

use soc_data::AttrSet;

use crate::SupportCounter;

/// Resource guards for a level-wise run.
#[derive(Clone, Debug)]
pub struct AprioriLimits {
    /// Stop after mining itemsets of this size (`usize::MAX` = no cap).
    pub max_level: usize,
    /// Abort if a candidate set at any level exceeds this cardinality.
    pub max_candidates: usize,
}

impl Default for AprioriLimits {
    fn default() -> Self {
        Self {
            max_level: usize::MAX,
            max_candidates: 2_000_000,
        }
    }
}

/// A frequent itemset with its support.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The itemset.
    pub items: AttrSet,
    /// Number of supporting transactions.
    pub support: usize,
}

/// Outcome of an Apriori run.
#[derive(Clone, Debug)]
pub enum AprioriOutcome {
    /// All frequent itemsets were enumerated.
    Complete(Vec<FrequentItemset>),
    /// The candidate explosion guard tripped; holds the itemsets mined up
    /// to (not including) the exploding level, and that level's candidate
    /// count.
    CandidateExplosion {
        /// Frequent itemsets found before the abort.
        partial: Vec<FrequentItemset>,
        /// Level at which the explosion occurred.
        level: usize,
        /// Number of candidates generated at that level.
        candidates: usize,
    },
    /// `max_level` reached; holds everything mined up to that level.
    LevelCapped(Vec<FrequentItemset>),
}

impl AprioriOutcome {
    /// The mined itemsets, however far the run got.
    pub fn itemsets(&self) -> &[FrequentItemset] {
        match self {
            AprioriOutcome::Complete(v)
            | AprioriOutcome::LevelCapped(v)
            | AprioriOutcome::CandidateExplosion { partial: v, .. } => v,
        }
    }

    /// True if every frequent itemset was enumerated.
    pub fn is_complete(&self) -> bool {
        matches!(self, AprioriOutcome::Complete(_))
    }
}

/// Mines all itemsets with `support >= threshold` level by level.
///
/// # Panics
/// Panics if `threshold == 0` (every itemset would be "frequent").
pub fn apriori<S: SupportCounter>(
    data: &S,
    threshold: usize,
    limits: &AprioriLimits,
) -> AprioriOutcome {
    assert!(threshold > 0, "support threshold must be positive");
    let m = data.universe();
    let mut result: Vec<FrequentItemset> = Vec::new();

    // Level 1.
    let mut frontier: Vec<AttrSet> = Vec::new();
    for i in 0..m {
        let s = AttrSet::from_indices(m, [i]);
        let sup = data.support(&s);
        if sup >= threshold {
            result.push(FrequentItemset {
                items: s.clone(),
                support: sup,
            });
            frontier.push(s);
        }
    }

    let mut level = 1;
    while !frontier.is_empty() {
        if level >= limits.max_level {
            return AprioriOutcome::LevelCapped(result);
        }
        level += 1;

        // Candidate generation: join frequent (k-1)-itemsets sharing a
        // (k-2)-prefix, then prune candidates with an infrequent subset.
        let frequent_prev: HashSet<&AttrSet> = frontier.iter().collect();
        let mut candidates: HashSet<AttrSet> = HashSet::new();
        for (ai, a) in frontier.iter().enumerate() {
            for b in &frontier[ai + 1..] {
                let joined = a.union(b);
                if joined.count() != level {
                    continue;
                }
                if candidates.contains(&joined) {
                    continue;
                }
                // Downward-closure prune: every (k-1)-subset must be frequent.
                let all_subsets_frequent = joined
                    .iter()
                    .all(|i| frequent_prev.contains(&joined.without(i)));
                if all_subsets_frequent {
                    candidates.insert(joined);
                    if candidates.len() > limits.max_candidates {
                        return AprioriOutcome::CandidateExplosion {
                            partial: result,
                            level,
                            candidates: candidates.len(),
                        };
                    }
                }
            }
        }

        let mut next = Vec::new();
        for c in candidates {
            let sup = data.support(&c);
            if sup >= threshold {
                result.push(FrequentItemset {
                    items: c.clone(),
                    support: sup,
                });
                next.push(c);
            }
        }
        frontier = next;
    }
    AprioriOutcome::Complete(result)
}

/// Reference miner: enumerates all `2^M` itemsets. Test oracle for tiny
/// universes only.
///
/// # Panics
/// Panics if the universe exceeds 20 items or `threshold == 0`.
pub fn enumerate_frequent<S: SupportCounter>(data: &S, threshold: usize) -> Vec<FrequentItemset> {
    assert!(threshold > 0, "support threshold must be positive");
    let m = data.universe();
    assert!(
        m <= 20,
        "enumerate_frequent is a test oracle for tiny universes"
    );
    let mut out = Vec::new();
    for mask in 0u64..(1 << m) {
        if mask == 0 {
            continue; // skip the empty itemset, as Apriori does
        }
        let set = AttrSet::from_indices(m, (0..m).filter(|&i| mask >> i & 1 == 1));
        let sup = data.support(&set);
        if sup >= threshold {
            out.push(FrequentItemset {
                items: set,
                support: sup,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransactionSet;
    use soc_data::AttrSet;

    fn sample() -> TransactionSet {
        // Classic market-basket example.
        TransactionSet::new(
            5,
            vec![
                AttrSet::from_indices(5, [0, 1, 4]),
                AttrSet::from_indices(5, [1, 3]),
                AttrSet::from_indices(5, [1, 2]),
                AttrSet::from_indices(5, [0, 1, 3]),
                AttrSet::from_indices(5, [0, 2]),
                AttrSet::from_indices(5, [1, 2]),
                AttrSet::from_indices(5, [0, 2]),
                AttrSet::from_indices(5, [0, 1, 2, 4]),
                AttrSet::from_indices(5, [0, 1, 2]),
            ],
        )
    }

    fn sorted(mut v: Vec<FrequentItemset>) -> Vec<(String, usize)> {
        v.sort_by_key(|f| f.items.to_bitstring());
        v.into_iter()
            .map(|f| (f.items.to_bitstring(), f.support))
            .collect()
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        let t = sample();
        for threshold in 1..=5 {
            let got = match apriori(&t, threshold, &AprioriLimits::default()) {
                AprioriOutcome::Complete(v) => v,
                other => panic!("unexpected outcome {other:?}"),
            };
            let want = enumerate_frequent(&t, threshold);
            assert_eq!(sorted(got), sorted(want), "threshold {threshold}");
        }
    }

    #[test]
    fn known_supports() {
        let t = sample();
        let out = apriori(&t, 2, &AprioriLimits::default());
        let items = out.itemsets();
        let find = |bits: &str| {
            items
                .iter()
                .find(|f| f.items.to_bitstring() == bits)
                .map(|f| f.support)
        };
        assert_eq!(find("11000"), Some(4)); // {0,1}
        assert_eq!(find("01100"), Some(4)); // {1,2}
        assert_eq!(find("11100"), Some(2)); // {0,1,2}
        assert_eq!(find("00011"), None); // {3,4} infrequent
    }

    #[test]
    fn level_cap() {
        let t = sample();
        let out = apriori(
            &t,
            1,
            &AprioriLimits {
                max_level: 1,
                ..Default::default()
            },
        );
        assert!(matches!(out, AprioriOutcome::LevelCapped(_)));
        assert!(out.itemsets().iter().all(|f| f.items.count() == 1));
    }

    #[test]
    fn candidate_explosion_guard() {
        // Dense table: all rows full → C(12,2)=66 candidates at level 2.
        let t = TransactionSet::new(12, vec![AttrSet::full(12); 3]);
        let out = apriori(
            &t,
            1,
            &AprioriLimits {
                max_level: usize::MAX,
                max_candidates: 50,
            },
        );
        match out {
            AprioriOutcome::CandidateExplosion {
                level, candidates, ..
            } => {
                assert_eq!(level, 2);
                assert!(candidates > 50);
            }
            other => panic!("expected explosion, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let t = sample();
        let _ = apriori(&t, 0, &AprioriLimits::default());
    }
}
