//! # soc-itemsets
//!
//! Frequent-itemset mining substrate for the `standout` workspace.
//!
//! Implements everything §IV.C of the ICDE 2008 paper builds on:
//!
//! - [`TransactionSet`] / [`ComplementedLog`] — transaction tables and the
//!   virtual complemented query log `~Q` (supports counted by
//!   disjointness, never materializing the dense table);
//! - [`apriori`] — level-wise mining with explosion guards (the baseline
//!   the paper argues cannot handle dense complements);
//! - [`fp_growth`] — pattern-growth mining (the second classic baseline);
//! - [`maximal`] — maximal-frequent-itemset random walks: the classic
//!   bottom-up GKMS walk and the paper's two-phase top-down walk, plus the
//!   repeated-walk miner with the Good–Turing stopping rule;
//! - [`good_turing`] — the unseen-mass estimate behind that rule;
//! - [`ThresholdStrategy`] — fixed / fractional / adaptive-halving
//!   threshold selection;
//! - [`backtracking_mfi`] — deterministic GenMax-style maximal-itemset
//!   enumeration (provably complete; the ground-truth miner).
//!
//! ```
//! use soc_data::AttrSet;
//! use soc_itemsets::{backtracking_mfi, BacktrackLimits, TransactionSet};
//!
//! let table = TransactionSet::new(4, vec![
//!     AttrSet::from_indices(4, [0, 1, 2]),
//!     AttrSet::from_indices(4, [0, 1]),
//!     AttrSet::from_indices(4, [2, 3]),
//! ]);
//! let mfis = backtracking_mfi(&table, 2, &BacktrackLimits::default());
//! assert!(mfis.is_complete());
//! assert_eq!(mfis.itemsets().len(), 2); // {0,1} and {2}
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod apriori;
mod backtrack;
mod fptree;
pub mod good_turing;
pub mod maximal;
mod threshold;
mod transactions;

pub use apriori::{apriori, AprioriLimits, AprioriOutcome, FrequentItemset};
pub use backtrack::{backtracking_mfi, BacktrackLimits, BacktrackOutcome};
pub use fptree::fp_growth;
pub use maximal::{
    bottom_up_walk, enumerate_maximal, is_maximal, top_down_walk, MfiConfig, MfiMiner, MfiResult,
    StopRule, WalkDirection, WalkStats,
};
pub use threshold::ThresholdStrategy;
pub use transactions::{ComplementedLog, SupportCounter, TransactionSet};
