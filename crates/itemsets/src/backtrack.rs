//! Deterministic maximal-frequent-itemset enumeration by backtracking
//! set-enumeration search (in the GenMax / MAFIA family — the paper's
//! references [4, 13]).
//!
//! The paper's two-phase random walk is fast but probabilistic: it may
//! miss a maximal itemset, which makes `MaxFreqItemSets-SOC-CB-QL` exact
//! only with high probability. This miner is the deterministic
//! complement: a depth-first search over the set-enumeration tree with
//!
//! - *dynamic reordering* — extensions sorted by ascending support so the
//!   most constrained branches are explored first;
//! - *HUTMFI pruning* — if `head ∪ tail` is frequent the whole subtree
//!   collapses into that single candidate;
//! - *subset pruning* — a candidate is maximal iff it is not a subset of
//!   an already-discovered maximal itemset (sound because supersets
//!   containing earlier-ordered items are enumerated first in DFS order).
//!
//! Worst-case exponential (the problem is #P-hard in general), so a
//! node budget turns pathological instances into a reported truncation
//! instead of a hang.

use soc_data::AttrSet;

use crate::{FrequentItemset, SupportCounter};

/// Resource limits for the backtracking search.
#[derive(Clone, Debug)]
pub struct BacktrackLimits {
    /// Abort after expanding this many search nodes.
    pub max_nodes: usize,
    /// Abort after collecting this many maximal itemsets.
    pub max_itemsets: usize,
}

impl Default for BacktrackLimits {
    fn default() -> Self {
        Self {
            max_nodes: 5_000_000,
            max_itemsets: 1_000_000,
        }
    }
}

/// Outcome of a backtracking mining run.
#[derive(Clone, Debug)]
pub enum BacktrackOutcome {
    /// Every maximal frequent itemset was enumerated.
    Complete(Vec<FrequentItemset>),
    /// A limit tripped; the collection is sound (every element is a
    /// maximal frequent itemset) but possibly incomplete.
    Truncated(Vec<FrequentItemset>),
}

impl BacktrackOutcome {
    /// The mined itemsets, complete or not.
    pub fn itemsets(&self) -> &[FrequentItemset] {
        match self {
            BacktrackOutcome::Complete(v) | BacktrackOutcome::Truncated(v) => v,
        }
    }

    /// True when the enumeration provably finished.
    pub fn is_complete(&self) -> bool {
        matches!(self, BacktrackOutcome::Complete(_))
    }
}

struct Search<'a, S: SupportCounter> {
    data: &'a S,
    threshold: usize,
    limits: &'a BacktrackLimits,
    found: Vec<FrequentItemset>,
    nodes: usize,
    truncated: bool,
}

impl<S: SupportCounter> Search<'_, S> {
    fn subset_of_found(&self, set: &AttrSet) -> bool {
        self.found.iter().any(|f| set.is_subset(&f.items))
    }

    /// Expands `head` (known frequent) with candidate extensions `tail`.
    fn expand(&mut self, head: &AttrSet, tail: &[usize]) {
        if self.truncated {
            return;
        }
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes || self.found.len() >= self.limits.max_itemsets {
            self.truncated = true;
            return;
        }

        // HUTMFI: if head ∪ tail is frequent, it subsumes the subtree.
        if !tail.is_empty() {
            let mut hut = head.clone();
            for &i in tail {
                hut.insert(i);
            }
            let support = self.data.support(&hut);
            if support >= self.threshold {
                if !self.subset_of_found(&hut) {
                    self.found.push(FrequentItemset {
                        items: hut,
                        support,
                    });
                }
                return;
            }
        }

        // Frequent single-item extensions, dynamically reordered by
        // ascending support (most constrained first).
        let mut extensions: Vec<(usize, usize)> = tail
            .iter()
            .filter_map(|&i| {
                let support = self.data.support(&head.with(i));
                (support >= self.threshold).then_some((i, support))
            })
            .collect();

        if extensions.is_empty() {
            // Leaf: head is locally maximal; global maximality holds iff
            // no previously-found itemset contains it.
            if !self.subset_of_found(head) {
                let support = self.data.support(head);
                self.found.push(FrequentItemset {
                    items: head.clone(),
                    support,
                });
            }
            return;
        }

        extensions.sort_by_key(|&(i, s)| (s, i));
        let order: Vec<usize> = extensions.iter().map(|&(i, _)| i).collect();
        for (pos, &i) in order.iter().enumerate() {
            let child = head.with(i);
            let child_tail: Vec<usize> = order[pos + 1..].to_vec();
            // Subset prune: if child ∪ child_tail is already covered by a
            // found MFI the subtree yields nothing new.
            let mut hull = child.clone();
            for &j in &child_tail {
                hull.insert(j);
            }
            if self.subset_of_found(&hull) {
                continue;
            }
            self.expand(&child, &child_tail);
            if self.truncated {
                return;
            }
        }
    }
}

/// Enumerates all maximal itemsets with `support >= threshold`.
///
/// # Panics
/// Panics if `threshold == 0`.
pub fn backtracking_mfi<S: SupportCounter>(
    data: &S,
    threshold: usize,
    limits: &BacktrackLimits,
) -> BacktrackOutcome {
    assert!(threshold > 0, "support threshold must be positive");
    let m = data.universe();
    let empty = AttrSet::empty(m);
    if data.support(&empty) < threshold {
        // Even the empty itemset is infrequent: nothing is.
        return BacktrackOutcome::Complete(Vec::new());
    }
    let mut search = Search {
        data,
        threshold,
        limits,
        found: Vec::new(),
        nodes: 0,
        truncated: false,
    };
    let tail: Vec<usize> = (0..m).collect();
    search.expand(&empty, &tail);

    // The empty head only survives as "maximal" when no singleton is
    // frequent; `expand` already handles that through the leaf path.
    let Search {
        mut found,
        truncated,
        ..
    } = search;
    found.sort_by(|a, b| a.items.cmp(&b.items));
    if truncated {
        BacktrackOutcome::Truncated(found)
    } else {
        BacktrackOutcome::Complete(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{enumerate_maximal, TransactionSet};

    fn canon(mut v: Vec<FrequentItemset>) -> Vec<(String, usize)> {
        v.sort_by_key(|f| f.items.to_bitstring());
        v.into_iter()
            .map(|f| (f.items.to_bitstring(), f.support))
            .collect()
    }

    fn sample() -> TransactionSet {
        TransactionSet::new(
            6,
            vec![
                AttrSet::from_indices(6, [0, 1, 2, 3]),
                AttrSet::from_indices(6, [0, 1, 2]),
                AttrSet::from_indices(6, [0, 1, 4]),
                AttrSet::from_indices(6, [2, 3, 4]),
                AttrSet::from_indices(6, [0, 1, 2, 3, 4]),
                AttrSet::from_indices(6, [5]),
            ],
        )
    }

    #[test]
    fn matches_exhaustive_enumeration() {
        let t = sample();
        for threshold in 1..=4 {
            let got = backtracking_mfi(&t, threshold, &BacktrackLimits::default());
            assert!(got.is_complete());
            assert_eq!(
                canon(got.itemsets().to_vec()),
                canon(enumerate_maximal(&t, threshold)),
                "threshold {threshold}"
            );
        }
    }

    #[test]
    fn empty_itemset_is_sole_mfi_when_nothing_frequent() {
        let t = TransactionSet::new(4, vec![AttrSet::empty(4); 3]);
        let got = backtracking_mfi(&t, 2, &BacktrackLimits::default());
        assert!(got.is_complete());
        assert_eq!(got.itemsets().len(), 1);
        assert!(got.itemsets()[0].items.is_empty());
        assert_eq!(got.itemsets()[0].support, 3);
    }

    #[test]
    fn impossible_threshold() {
        let t = sample();
        let got = backtracking_mfi(&t, 100, &BacktrackLimits::default());
        assert!(got.is_complete());
        assert!(got.itemsets().is_empty());
    }

    #[test]
    fn node_budget_truncates() {
        // Dense table with many MFIs at threshold 1.
        let rows: Vec<AttrSet> = (0..12)
            .map(|i| AttrSet::from_indices(12, (0..12).filter(move |&j| j != i)))
            .collect();
        let t = TransactionSet::new(12, rows);
        let got = backtracking_mfi(
            &t,
            1,
            &BacktrackLimits {
                max_nodes: 5,
                max_itemsets: 1_000_000,
            },
        );
        assert!(!got.is_complete());
        // Sound even when truncated.
        for f in got.itemsets() {
            assert!(crate::is_maximal(&t, &f.items, 1));
        }
    }

    #[test]
    fn hutmfi_collapses_uniform_table() {
        let t = TransactionSet::new(8, vec![AttrSet::full(8); 4]);
        let got = backtracking_mfi(&t, 2, &BacktrackLimits::default());
        assert!(got.is_complete());
        assert_eq!(got.itemsets().len(), 1);
        assert_eq!(got.itemsets()[0].items, AttrSet::full(8));
    }
}
