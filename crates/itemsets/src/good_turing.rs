//! Good–Turing estimation of undiscovered mass (Good, Biometrika 1953 —
//! the paper's reference [8]).
//!
//! After `n` random walks that each land on some maximal frequent itemset,
//! the probability that the *next* walk discovers a previously unseen
//! itemset is estimated by `N₁ / n`, where `N₁` is the number of itemsets
//! seen exactly once. The paper's stopping heuristic — "stop when every
//! discovered itemset has been seen at least twice" — is exactly the point
//! where this estimate reaches zero.

/// Good–Turing estimate of the unseen probability mass: `N₁ / n` for
/// `n = samples` draws, where `N₁` counts species observed exactly once.
///
/// Returns 1.0 when no samples have been drawn (everything is unseen).
pub fn unseen_mass(counts: impl IntoIterator<Item = usize>, samples: usize) -> f64 {
    if samples == 0 {
        return 1.0;
    }
    let singletons = counts.into_iter().filter(|&c| c == 1).count();
    singletons as f64 / samples as f64
}

/// The paper's stopping rule: every observed species seen at least twice
/// (equivalently, the Good–Turing unseen-mass estimate is zero).
pub fn all_seen_twice(counts: impl IntoIterator<Item = usize>) -> bool {
    counts.into_iter().all(|c| c >= 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_samples_means_everything_unseen() {
        assert_eq!(unseen_mass(Vec::<usize>::new(), 0), 1.0);
    }

    #[test]
    fn singleton_fraction() {
        // 5 samples: species counts 1, 1, 3 → N1 = 2 → estimate 0.4.
        let est = unseen_mass([1, 1, 3], 5);
        assert!((est - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_when_all_seen_twice() {
        assert_eq!(unseen_mass([2, 4, 3], 9), 0.0);
        assert!(all_seen_twice([2, 4, 3]));
        assert!(!all_seen_twice([2, 1, 3]));
        assert!(all_seen_twice(Vec::<usize>::new()));
    }
}
