//! Support-threshold strategies for MFI-based SOC solving (§IV.C,
//! "Setting of the Threshold Parameter").
//!
//! - `r = 1` solves SOC-CB-QL exactly but makes mining slow;
//! - a fixed fraction (e.g. 1% of the log) is fast but may come back empty
//!   when the optimum satisfies fewer queries than the threshold;
//! - the adaptive strategy starts high and halves until a solution exists,
//!   which "is guaranteed to discover the optimal t'".

/// How the support threshold `r` is chosen and revised.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdStrategy {
    /// Always `r = 1`: a single mining pass, guaranteed optimal.
    Exact,
    /// A fixed absolute threshold. The solve may return no solution if the
    /// optimum satisfies fewer than `r` queries.
    Fixed(usize),
    /// A fixed fraction of the number of transactions (the paper's "1% of
    /// the query log size" example). Same caveat as [`Self::Fixed`].
    Fraction(f64),
    /// Start at `initial` (or half the transaction count when `None`) and
    /// halve on failure down to 1. Guaranteed to find the optimum.
    AdaptiveHalving {
        /// First threshold to try; defaults to `num_rows / 2`.
        initial: Option<usize>,
    },
}

impl ThresholdStrategy {
    /// The first threshold to try for a table of `num_rows` transactions.
    /// Always at least 1.
    pub fn initial(&self, num_rows: usize) -> usize {
        match *self {
            ThresholdStrategy::Exact => 1,
            ThresholdStrategy::Fixed(r) => r.max(1),
            ThresholdStrategy::Fraction(f) => {
                assert!((0.0..=1.0).contains(&f), "fraction must be in [0, 1]");
                ((num_rows as f64 * f).ceil() as usize).max(1)
            }
            ThresholdStrategy::AdaptiveHalving { initial } => {
                initial.unwrap_or(num_rows / 2).max(1)
            }
        }
    }

    /// The next threshold to try after `current` failed, or `None` when
    /// the strategy does not retry (or cannot go lower).
    pub fn next(&self, current: usize) -> Option<usize> {
        match self {
            ThresholdStrategy::AdaptiveHalving { .. } if current > 1 => Some(current / 2),
            _ => None,
        }
    }

    /// Whether a failed solve at the final threshold proves that *no*
    /// solution exists (vs. merely that the threshold was too high).
    pub fn exhaustive(&self) -> bool {
        matches!(
            self,
            ThresholdStrategy::Exact | ThresholdStrategy::AdaptiveHalving { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_values() {
        assert_eq!(ThresholdStrategy::Exact.initial(1000), 1);
        assert_eq!(ThresholdStrategy::Fixed(25).initial(1000), 25);
        assert_eq!(ThresholdStrategy::Fixed(0).initial(1000), 1);
        assert_eq!(ThresholdStrategy::Fraction(0.01).initial(1000), 10);
        assert_eq!(ThresholdStrategy::Fraction(0.01).initial(5), 1);
        assert_eq!(
            ThresholdStrategy::AdaptiveHalving { initial: None }.initial(1000),
            500
        );
        assert_eq!(
            ThresholdStrategy::AdaptiveHalving { initial: Some(64) }.initial(1000),
            64
        );
    }

    #[test]
    fn halving_sequence() {
        let s = ThresholdStrategy::AdaptiveHalving { initial: Some(40) };
        let mut r = s.initial(100);
        let mut seq = vec![r];
        while let Some(nr) = s.next(r) {
            r = nr;
            seq.push(r);
        }
        assert_eq!(seq, vec![40, 20, 10, 5, 2, 1]);
    }

    #[test]
    fn non_adaptive_never_retries() {
        assert_eq!(ThresholdStrategy::Fixed(10).next(10), None);
        assert_eq!(ThresholdStrategy::Fraction(0.5).next(10), None);
        assert_eq!(ThresholdStrategy::Exact.next(1), None);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_panics() {
        let _ = ThresholdStrategy::Fraction(1.5).initial(100);
    }
}
