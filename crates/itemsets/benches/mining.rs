//! Micro-benchmarks for the mining substrate: support counting, the
//! classic miners, and the maximal-itemset random walks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_data::AttrSet;
use soc_itemsets::{
    apriori, backtracking_mfi, fp_growth, top_down_walk, AprioriLimits, BacktrackLimits,
    SupportCounter, TransactionSet,
};
use soc_rng::StdRng;
use std::hint::black_box;

/// Random sparse transactions: `rows` rows over `m` items, density `p`.
fn table(rows: usize, m: usize, p: f64, seed: u64) -> TransactionSet {
    let mut rng = StdRng::seed_from_u64(seed);
    TransactionSet::new(
        m,
        (0..rows)
            .map(|_| AttrSet::from_indices(m, (0..m).filter(|_| rng.random::<f64>() < p)))
            .collect(),
    )
}

fn bench_support(c: &mut Criterion) {
    let mut group = c.benchmark_group("support_counting");
    for rows in [500usize, 5_000, 50_000] {
        let t = table(rows, 64, 0.1, 1);
        let probe = AttrSet::from_indices(64, [3, 17, 40]);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &t, |b, t| {
            b.iter(|| black_box(t.support(&probe)))
        });
    }
    group.finish();
}

fn bench_miners(c: &mut Criterion) {
    let mut group = c.benchmark_group("frequent_itemset_miners");
    group.sample_size(10);
    let t = table(2_000, 24, 0.15, 2);
    let threshold = 40;
    group.bench_function("apriori", |b| {
        b.iter(|| black_box(apriori(&t, threshold, &AprioriLimits::default())))
    });
    group.bench_function("fp_growth", |b| {
        b.iter(|| black_box(fp_growth(&t, threshold)))
    });
    group.bench_function("backtracking_mfi", |b| {
        b.iter(|| black_box(backtracking_mfi(&t, threshold, &BacktrackLimits::default())))
    });
    group.finish();
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walk");
    // Dense rows, the MFI algorithm's home turf.
    let t = table(1_000, 48, 0.9, 3);
    for threshold in [50usize, 200] {
        group.bench_with_input(
            BenchmarkId::new("top_down", threshold),
            &threshold,
            |b, &r| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| black_box(top_down_walk(&t, r, &mut rng)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_support, bench_miners, bench_walk);
criterion_main!(benches);
