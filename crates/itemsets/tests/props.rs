//! Property-based cross-validation of the three miners: Apriori,
//! FP-growth, and the random-walk MFI miner must all agree with
//! exhaustive enumeration on random small transaction tables.

use proptest::prelude::*;
use soc_data::AttrSet;
use soc_itemsets::{
    apriori, enumerate_maximal, fp_growth, is_maximal, AprioriLimits, AprioriOutcome,
    ComplementedLog, FrequentItemset, MfiConfig, MfiMiner, StopRule, SupportCounter,
    TransactionSet, WalkDirection,
};
use soc_rng::StdRng;

const M: usize = 8;

fn table() -> impl Strategy<Value = TransactionSet> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), M), 1..14).prop_map(|rows| {
        TransactionSet::new(M, rows.iter().map(|r| AttrSet::from_bools(r)).collect())
    })
}

fn canon(mut v: Vec<FrequentItemset>) -> Vec<(String, usize)> {
    v.sort_by_key(|f| f.items.to_bitstring());
    v.into_iter()
        .map(|f| (f.items.to_bitstring(), f.support))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apriori_equals_enumeration(t in table(), threshold in 1usize..5) {
        let got = match apriori(&t, threshold, &AprioriLimits::default()) {
            AprioriOutcome::Complete(v) => v,
            other => panic!("{other:?}"),
        };
        let want = soc_itemsets::apriori::enumerate_frequent(&t, threshold);
        prop_assert_eq!(canon(got), canon(want));
    }

    #[test]
    fn fp_growth_equals_enumeration(t in table(), threshold in 1usize..5) {
        let got = fp_growth(&t, threshold);
        let want = soc_itemsets::apriori::enumerate_frequent(&t, threshold);
        prop_assert_eq!(canon(got), canon(want));
    }

    #[test]
    fn downward_closure_holds(t in table(), threshold in 1usize..5) {
        let frequent = soc_itemsets::apriori::enumerate_frequent(&t, threshold);
        for f in &frequent {
            for i in f.items.iter() {
                let sub = f.items.without(i);
                if !sub.is_empty() {
                    prop_assert!(t.support(&sub) >= threshold);
                }
            }
        }
    }

    /// The MFI miner with enough fixed iterations finds exactly the
    /// maximal frequent itemsets, with correct supports, in both walk
    /// directions.
    #[test]
    fn mfi_miner_complete_and_sound(t in table(), threshold in 1usize..4, seed in 0u64..1000) {
        let expected = canon(enumerate_maximal(&t, threshold));
        for direction in [WalkDirection::TopDown, WalkDirection::BottomUp] {
            let miner = MfiMiner::new(MfiConfig {
                threshold,
                max_iterations: 3000,
                min_iterations: 1,
                direction,
                stop: StopRule::FixedIterations(800),
            });
            let mut rng = StdRng::seed_from_u64(seed);
            let result = miner.mine(&t, &mut rng);
            for f in &result.itemsets {
                prop_assert!(is_maximal(&t, &f.items, threshold));
                prop_assert_eq!(f.support, t.support(&f.items));
            }
            prop_assert_eq!(canon(result.itemsets), expected.clone(), "{:?}", direction);
        }
    }

    /// Mining the virtual complement of a query log equals mining the
    /// materialized complement.
    #[test]
    fn virtual_complement_mining(rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), M), 1..10), threshold in 1usize..4) {
        let log = soc_data::QueryLog::from_attr_sets(
            M,
            rows.iter().map(|r| AttrSet::from_bools(r)).collect(),
        );
        let virt = ComplementedLog::new(&log);
        let mat = TransactionSet::complement_of_log(&log);
        let a = canon(enumerate_maximal(&virt, threshold));
        let b = canon(enumerate_maximal(&mat, threshold));
        prop_assert_eq!(a, b);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Backtracking MFI enumeration is deterministic-complete: it must
    /// equal exhaustive enumeration on every random table.
    #[test]
    fn backtracking_mfi_equals_enumeration(t in table(), threshold in 1usize..5) {
        let got = soc_itemsets::backtracking_mfi(
            &t,
            threshold,
            &soc_itemsets::BacktrackLimits::default(),
        );
        prop_assert!(got.is_complete());
        prop_assert_eq!(
            canon(got.itemsets().to_vec()),
            canon(enumerate_maximal(&t, threshold))
        );
    }
}
