//! # soc-pool
//!
//! A small, dependency-free work-stealing thread pool for the `standout`
//! workspace.
//!
//! The batch-serving layer solves one SOC instance per incoming tuple,
//! and per-instance cost varies by orders of magnitude across algorithms
//! and tuples (an MFI cache miss mines the whole log; a greedy solve is
//! microseconds). Static chunking over `std::thread::scope` therefore
//! straggles: one worker draws the expensive chunk while the others idle.
//! This pool replaces pre-chunking with per-task stealing:
//!
//! - a global **injector** FIFO seeded with all task indices, drained in
//!   adaptively sized batches (large while plenty of work remains, down
//!   to single tasks near the tail — classic guided scheduling, so the
//!   common cheap-task case still amortizes queue locking);
//! - a **per-worker deque** holding each worker's claimed batch; owners
//!   pop from the front (preserving index locality), idle workers steal
//!   the *back half* of a victim's deque in one locked batch;
//! - **spin-then-park idling**: a worker that finds nothing to run or
//!   steal yields for a few sweeps, then parks on a condvar. Producers
//!   wake a parker when they publish stealable work (an injector batch
//!   deposited into a deque, a steal redistribution) and the last
//!   finishing task wakes everyone — so an idle worker costs a parked
//!   thread, not a hot core, and the `pool.idle_ns` metric measures
//!   true starvation instead of scheduler churn;
//! - **deterministic result slots**: task `i` writes `f(i)` into slot
//!   `i`, so the output order equals the input order and — for a pure
//!   `f` — the result vector is bit-identical regardless of thread
//!   count or scheduling.
//!
//! The pool is *scoped*: workers are `std::thread::scope` threads, so
//! tasks may borrow from the caller's stack (no `'static` bounds, no
//! channels). Worker threads live for one `map` call; per-call spawn
//! cost is negligible against the per-task solve cost this pool exists
//! to balance.
//!
//! ```
//! use soc_pool::Pool;
//!
//! let squares = Pool::new(4).map_indexed(10, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod service;

pub use service::{Rejected, Service};

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use soc_obs::{counter, gauge, histogram};

/// Largest number of tasks a worker claims from the injector at once.
/// Bounds worst-case imbalance at the tail to `INJECTOR_BATCH_CAP − 1`
/// tasks stuck behind a straggler before stealing kicks in.
const INJECTOR_BATCH_CAP: usize = 32;

/// Failed acquisition attempts (own deque + injector + full steal sweep)
/// a worker burns through before parking. Spinning keeps the worker hot
/// across the common sub-microsecond gaps between tasks; anything longer
/// than a few sweeps means its peers are deep inside claimed tasks and
/// yielding only wastes a core the running tasks could use.
const SPIN_TRIES: usize = 16;

/// Upper bound on one parked wait. Parkers are woken explicitly when new
/// stealable work appears or the pool drains; the timeout is a backstop
/// against the narrow publish/park races, not the primary wake path, so
/// it can be generous without costing latency in the common case.
const PARK_TIMEOUT: Duration = Duration::from_micros(500);

/// A work-stealing thread pool of a fixed worker count.
///
/// Cheap to construct (no threads are spawned until a `map` call) and
/// reusable; each `map_indexed`/`map` call runs its tasks on a fresh
/// scoped worker set and blocks until every task has finished.
#[derive(Clone, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// Creates a pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        Self { threads }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`,
    /// falling back to 1 when unknown).
    pub fn with_available_parallelism() -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::new(threads)
    }

    /// The worker count.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Computes `f(i)` for every `i in 0..n` with work stealing and
    /// returns the results in index order. `f` runs concurrently on up
    /// to `threads` workers; for a pure `f` the result is identical to
    /// `(0..n).map(f).collect()` regardless of worker count.
    ///
    /// # Panics
    /// Propagates the first panic raised by `f` (remaining tasks may or
    /// may not run).
    pub fn map_indexed<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(n);
        if n == 0 {
            return Vec::new();
        }
        if workers == 1 {
            return (0..n).map(f).collect();
        }

        let slots = Slots::new(n);
        let queues = Queues::new(workers, n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|id| {
                    let queues = &queues;
                    let slots = &slots;
                    let f = &f;
                    scope.spawn(move || {
                        while let Some(task) = queues.next_task(id) {
                            // Decrement happens in Drop so that an unwinding
                            // task still releases its slot and parked peers
                            // waiting on `remaining` can terminate.
                            let _finish = Finish(queues);
                            counter!("pool.tasks_executed").inc();
                            let value = f(task);
                            // Safety: `next_task` hands out each index exactly
                            // once, so this worker is the sole writer of slot
                            // `task`.
                            unsafe { slots.write(task, value) };
                        }
                    })
                })
                .collect();
            // Join explicitly so a task panic resurfaces with its original
            // payload instead of scope's generic "a scoped thread panicked".
            for handle in handles {
                if let Err(payload) = handle.join() {
                    std::panic::resume_unwind(payload);
                }
            }
        });
        slots.into_results()
    }

    /// Maps `f` over a slice with work stealing; results are in input
    /// order. Convenience wrapper over [`Pool::map_indexed`].
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.map_indexed(items.len(), |i| f(&items[i]))
    }
}

/// Decrements the outstanding-task counter on drop (panic-safe). When
/// the count reaches zero the pool is drained, so any parked peers are
/// woken to observe termination.
struct Finish<'a>(&'a Queues);

impl Drop for Finish<'_> {
    fn drop(&mut self) {
        if self.0.remaining.fetch_sub(1, Ordering::Release) == 1 {
            self.0.wake_all();
        }
    }
}

/// The injector + per-worker deques + termination counter + parking lot.
struct Queues {
    /// Global FIFO of not-yet-claimed task indices.
    injector: Mutex<VecDeque<usize>>,
    /// One deque per worker: owner pops the front, thieves take the back.
    locals: Vec<Mutex<VecDeque<usize>>>,
    /// Tasks not yet *finished* (claimed tasks count until their `Finish`
    /// guard drops). Workers only exit once this reaches zero, because a
    /// task in flight proves no new work can appear afterwards.
    remaining: AtomicUsize,
    /// Workers currently parked (or committed to parking). Producers only
    /// touch the parking lot when this is non-zero, so the common
    /// everyone-busy case pays one relaxed load per publish.
    parked: AtomicUsize,
    /// Parking lot: protects nothing but the wait itself; work visibility
    /// is re-checked against the queues before sleeping and a timed wait
    /// backstops the remaining publish/park races.
    park_lock: Mutex<()>,
    park_cv: Condvar,
}

impl Queues {
    fn new(workers: usize, n: usize) -> Self {
        Self {
            injector: Mutex::new((0..n).collect()),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            remaining: AtomicUsize::new(n),
            parked: AtomicUsize::new(0),
            park_lock: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }

    /// Wakes every parked worker. Called with no queue locks held.
    fn wake_all(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            // Taking and dropping the lot lock fences against a worker
            // that has registered in `parked` but not yet begun waiting:
            // it holds the lock between those two steps, so by the time
            // we acquire it the worker is either asleep (and hears the
            // notify) or has re-checked the queues.
            drop(self.park_lock.lock().expect("park lock poisoned"));
            self.park_cv.notify_all();
        }
    }

    /// Wakes one parked worker after new stealable work was published.
    fn wake_one(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            drop(self.park_lock.lock().expect("park lock poisoned"));
            self.park_cv.notify_one();
        }
    }

    /// The next task for `worker`, or `None` once all tasks finished.
    /// Order: own deque front → injector batch → steal → spin → park.
    fn next_task(&self, worker: usize) -> Option<usize> {
        // Idle accounting: the stopwatch starts at the first failed
        // acquisition attempt and stops when a task arrives (or the pool
        // drains) — spin and park time, not queue-lock time.
        let mut idle_since: Option<u64> = None;
        let credit_idle = |idle_since: Option<u64>| {
            if let Some(t0) = idle_since {
                counter!("pool.idle_ns").add(soc_obs::clock::saturating_delta_ns(
                    t0,
                    soc_obs::clock::now_ns(),
                ));
            }
        };
        let mut spins = 0;
        loop {
            // Own-deque pop is a separate statement: its guard must drop
            // before `claim_from_injector`/`steal` re-lock local deques.
            let own = self.lock_local(worker).pop_front();
            let got = own
                .or_else(|| self.claim_from_injector(worker))
                .or_else(|| self.steal(worker));
            if let Some(t) = got {
                credit_idle(idle_since);
                return Some(t);
            }
            if self.remaining.load(Ordering::Acquire) == 0 {
                credit_idle(idle_since);
                return None;
            }
            if idle_since.is_none() {
                idle_since = soc_obs::metrics_then_now();
            }
            spins += 1;
            if spins < SPIN_TRIES {
                // Peers still execute claimed tasks (which we cannot
                // steal); yield briefly in case one finishes right away.
                std::thread::yield_now();
                continue;
            }
            // Park: register, re-check for work that raced in between the
            // failed steal sweep and here, then sleep until a producer
            // publishes stealable work or the pool drains. The timed wait
            // makes any residual race cost at most one PARK_TIMEOUT.
            spins = 0;
            let guard = self.park_lock.lock().expect("park lock poisoned");
            self.parked.fetch_add(1, Ordering::SeqCst);
            let racing_work = self.remaining.load(Ordering::Acquire) == 0
                || !self.injector.lock().expect("injector poisoned").is_empty()
                || (0..self.locals.len()).any(|v| !self.lock_local(v).is_empty());
            if racing_work {
                self.parked.fetch_sub(1, Ordering::SeqCst);
                continue; // drops `guard`
            }
            counter!("pool.parks").inc();
            let (guard, timeout) = self
                .park_cv
                .wait_timeout(guard, PARK_TIMEOUT)
                .expect("park lock poisoned");
            drop(guard);
            self.parked.fetch_sub(1, Ordering::SeqCst);
            if timeout.timed_out() {
                counter!("pool.park_timeouts").inc();
            } else {
                counter!("pool.park_wakes").inc();
            }
        }
    }

    /// Claims a guided-size batch from the injector: `1/(2·workers)` of
    /// what remains, clamped to `[1, INJECTOR_BATCH_CAP]`. The first task
    /// is returned, the rest deposited in the worker's own deque.
    fn claim_from_injector(&self, worker: usize) -> Option<usize> {
        let mut injector = self.injector.lock().expect("injector poisoned");
        let first = injector.pop_front()?;
        let batch = (injector.len() / (2 * self.locals.len())).clamp(1, INJECTOR_BATCH_CAP) - 1;
        let mut deposited = 0;
        if batch > 0 {
            let mut local = self.lock_local(worker);
            for _ in 0..batch {
                match injector.pop_front() {
                    Some(t) => {
                        local.push_back(t);
                        deposited += 1;
                    }
                    None => break,
                }
            }
        }
        gauge!("pool.queue_depth").set(injector.len() as i64);
        drop(injector);
        if deposited > 0 {
            // The deposit is stealable: hand a parked peer a chance at it.
            // Called with both queue locks released, so a parker's
            // re-check under the lot lock can never deadlock against us.
            self.wake_one();
        }
        Some(first)
    }

    /// Steals the back half of the first non-empty victim deque. Returns
    /// the lowest stolen index; the rest go to the thief's own deque.
    fn steal(&self, thief: usize) -> Option<usize> {
        let workers = self.locals.len();
        for k in 1..workers {
            let victim = (thief + k) % workers;
            let mut stolen: Vec<usize> = {
                let mut v = self.lock_local(victim);
                let take = v.len().div_ceil(2);
                // Back half = the tasks the owner would reach last.
                (0..take).filter_map(|_| v.pop_back()).collect()
            };
            if let Some(first) = stolen.pop() {
                counter!("pool.tasks_stolen").add((stolen.len() + 1) as u64);
                histogram!("pool.steal_batch").record((stolen.len() + 1) as u64);
                // `stolen` was popped back-to-front, so the remaining
                // entries are in descending index order; reverse to keep
                // the thief scanning ascending indices like an owner.
                let redistributed = !stolen.is_empty();
                let mut local = self.lock_local(thief);
                for t in stolen.into_iter().rev() {
                    local.push_back(t);
                }
                drop(local);
                if redistributed {
                    self.wake_one();
                }
                return Some(first);
            }
        }
        None
    }

    fn lock_local(&self, worker: usize) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        self.locals[worker].lock().expect("worker deque poisoned")
    }
}

/// One write-once result slot per task. `Sync` is sound because the
/// queues hand each index to exactly one worker, making every slot
/// single-writer, and the scope join synchronizes writes with the final
/// read.
struct Slots<T>(Vec<UnsafeCell<Option<T>>>);

unsafe impl<T: Send> Sync for Slots<T> {}

impl<T> Slots<T> {
    fn new(n: usize) -> Self {
        Self((0..n).map(|_| UnsafeCell::new(None)).collect())
    }

    /// # Safety
    /// The caller must be the unique writer of `index`.
    unsafe fn write(&self, index: usize, value: T) {
        *self.0[index].get() = Some(value);
    }

    fn into_results(self) -> Vec<T> {
        self.0
            .into_iter()
            .map(|c| {
                c.into_inner()
                    .expect("every task index is executed exactly once")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::time::Duration;

    #[test]
    fn results_are_in_input_order() {
        for threads in [1, 2, 3, 8, 32] {
            let out = Pool::new(threads).map_indexed(100, |i| i * 2);
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn more_threads_than_tasks() {
        let out = Pool::new(16).map_indexed(3, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_input() {
        assert!(Pool::new(4).map_indexed(0, |i| i).is_empty());
    }

    #[test]
    fn map_over_slice_borrows() {
        let words = ["a", "bb", "ccc"];
        let lens = Pool::new(2).map(&words, |w| w.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn skewed_costs_still_complete_and_stay_ordered() {
        // One task is 1000× the others; with static chunking the worker
        // that owns it would also serialize its whole chunk. Here the
        // rest of its batch gets stolen, and the output order must be
        // unaffected either way.
        let out = Pool::new(4).map_indexed(64, |i| {
            if i == 0 {
                std::thread::sleep(Duration::from_millis(50));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_across_runs_and_thread_counts() {
        let reference = Pool::new(1).map_indexed(257, |i| i.wrapping_mul(0x9E37) ^ 0b1010);
        for threads in [2, 5, 8] {
            for _ in 0..3 {
                let run = Pool::new(threads).map_indexed(257, |i| i.wrapping_mul(0x9E37) ^ 0b1010);
                assert_eq!(run, reference, "threads = {threads}");
            }
        }
    }

    #[test]
    fn stealing_actually_happens() {
        // Worker holding the first batch blocks; the rest of its deque
        // must be executed by thieves for the call to return quickly.
        let blocked = AtomicBool::new(false);
        let out = Pool::new(2).map_indexed(40, |i| {
            if i == 0 {
                blocked.store(true, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(100));
            }
            i
        });
        assert!(blocked.load(Ordering::SeqCst));
        assert_eq!(out.len(), 40);
    }

    #[test]
    fn parked_workers_wake_and_finish() {
        // One long task at the head starves the other workers after the
        // short tail drains; they must park and still wake to terminate
        // promptly when the straggler finishes (Finish -> wake_all).
        for _ in 0..4 {
            let out = Pool::new(3).map_indexed(12, |i| {
                if i == 0 {
                    std::thread::sleep(Duration::from_millis(20));
                }
                i * 3
            });
            assert_eq!(out, (0..12).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    #[should_panic(expected = "task zero failed")]
    fn task_panic_propagates() {
        let _ = Pool::new(4).map_indexed(16, |i| {
            if i == 0 {
                panic!("task zero failed");
            }
            i
        });
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let _ = Pool::new(0);
    }

    #[test]
    fn available_parallelism_pool_works() {
        let pool = Pool::with_available_parallelism();
        assert!(pool.threads() >= 1);
        assert_eq!(pool.map_indexed(5, |i| i), vec![0, 1, 2, 3, 4]);
    }
}
