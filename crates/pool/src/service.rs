//! A persistent worker service with an explicit, deadlock-free shutdown
//! path.
//!
//! [`Pool`](crate::Pool) is scoped: workers live for one `map` call and
//! the scope join *is* the shutdown. A long-running server cannot use
//! that shape — it needs workers that outlive any single request and a
//! teardown that is safe to run **while tasks are still queued**. PR 5's
//! audit found no such path existed: the only way to stop in-flight work
//! was to leak it. [`Service`] closes the gap:
//!
//! - [`Service::submit`] enqueues a boxed task; workers drain the queue
//!   in FIFO order. Submissions after shutdown begins are rejected with
//!   a typed error instead of being silently dropped.
//! - [`Service::shutdown_drain`] finishes every queued and running task,
//!   then joins all workers.
//! - `Drop` is the *abort* path: it signals shutdown, **rejects** all
//!   still-queued tasks (their destructors run, so oneshot-style
//!   completions can observe cancellation), waits for running tasks to
//!   finish, and joins every worker. It never deadlocks, no matter how
//!   many tasks are queued, because workers re-check the shutdown mode
//!   every time the queue goes empty and the queue is emptied before the
//!   join.
//! - A panicking task does not kill its worker: the panic is caught,
//!   counted (`pool.service.task_panics`), and the worker returns to the
//!   queue. A server must survive a poisoned request.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use soc_obs::{counter, gauge};

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Error returned by [`Service::submit`] once shutdown has begun. The
/// rejected job is handed back so the caller can run it inline or
/// complete its callbacks with an error.
pub struct Rejected(pub Job);

impl std::fmt::Debug for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Rejected(<job>)")
    }
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("service is shutting down; job rejected")
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Accepting and executing.
    Running,
    /// No new submissions; queued tasks still execute.
    Draining,
    /// No new submissions; the queue has been cleared.
    Aborting,
}

struct State {
    queue: VecDeque<Job>,
    mode: Mode,
    /// Tasks currently executing on a worker (claimed, not yet finished).
    running: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a job arrived or the mode changed.
    work: Condvar,
    /// Signals waiters: the service went idle (empty queue, none running).
    idle: Condvar,
}

impl Shared {
    /// True when no task is queued or executing.
    fn is_idle(state: &State) -> bool {
        state.queue.is_empty() && state.running == 0
    }
}

/// A fixed-size set of long-lived worker threads executing submitted
/// tasks FIFO, with drain and abort shutdown paths (see the module
/// docs). Cloning is not supported; share a `Service` via `Arc`.
pub struct Service {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Spawns `threads` worker threads.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one worker thread");
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                mode: Mode::Running,
                running: 0,
            }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("soc-pool-svc-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// The worker count.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues `job` for execution on some worker. Fails once shutdown
    /// has begun, returning the job untouched.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), Rejected> {
        let mut state = self.shared.state.lock().expect("service state poisoned");
        if state.mode != Mode::Running {
            drop(state);
            counter!("pool.service.rejected").inc();
            return Err(Rejected(Box::new(job)));
        }
        state.queue.push_back(Box::new(job));
        gauge!("pool.service.queue_depth").set(state.queue.len() as i64);
        drop(state);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Blocks until the queue is empty and no task is executing. New
    /// submissions may race in afterwards; this is a quiescence point,
    /// not a barrier.
    pub fn wait_idle(&self) {
        let state = self.shared.state.lock().expect("service state poisoned");
        let _unused = self
            .shared
            .idle
            .wait_while(state, |s| !Shared::is_idle(s))
            .expect("service state poisoned");
    }

    /// Graceful shutdown: stops accepting, finishes every queued and
    /// running task, joins all workers. Consumes the service.
    pub fn shutdown_drain(mut self) {
        self.begin(Mode::Draining);
        self.join_workers();
        // Drop now finds an already-terminated service and does nothing.
    }

    /// Flips the mode, wakes every worker, and (for aborts) clears the
    /// queue. Queued jobs are dropped *outside* the lock: a job's
    /// destructor may itself take locks or signal completions.
    fn begin(&self, mode: Mode) {
        let dropped = {
            let mut state = self.shared.state.lock().expect("service state poisoned");
            state.mode = mode;
            let dropped: Vec<Job> = if mode == Mode::Aborting {
                state.queue.drain(..).collect()
            } else {
                Vec::new()
            };
            gauge!("pool.service.queue_depth").set(state.queue.len() as i64);
            dropped
        };
        self.shared.work.notify_all();
        counter!("pool.service.dropped").add(dropped.len() as u64);
        drop(dropped);
    }

    fn join_workers(&mut self) {
        for handle in self.workers.drain(..) {
            // Worker bodies catch task panics, so join only fails if the
            // service machinery itself panicked — propagate that.
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
    }
}

impl Drop for Service {
    /// The abort path: reject queued tasks, finish the running ones,
    /// join every worker. Safe to run with an arbitrarily deep queue.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // already shut down via shutdown_drain
        }
        self.begin(Mode::Aborting);
        self.join_workers();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let state = shared.state.lock().expect("service state poisoned");
            let mut state = shared
                .work
                .wait_while(state, |s| s.queue.is_empty() && s.mode == Mode::Running)
                .expect("service state poisoned");
            match state.queue.pop_front() {
                Some(job) => {
                    state.running += 1;
                    gauge!("pool.service.queue_depth").set(state.queue.len() as i64);
                    job
                }
                // Empty queue and a non-Running mode: terminate. Under
                // Draining this is only reached once every queued task
                // has been claimed; claimed tasks finish below.
                None => return,
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        counter!("pool.service.executed").inc();
        if outcome.is_err() {
            counter!("pool.service.task_panics").inc();
        }
        let mut state = shared.state.lock().expect("service state poisoned");
        state.running -= 1;
        if Shared::is_idle(&state) {
            shared.idle.notify_all();
        }
        drop(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn executes_submitted_tasks() {
        let service = Service::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            service
                .submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        service.shutdown_drain();
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn wait_idle_sees_all_work_done() {
        let service = Service::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            service
                .submit(move || {
                    std::thread::sleep(Duration::from_millis(1));
                    counter.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        service.wait_idle();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    /// Tracks how many queued jobs were dropped unexecuted: the closure
    /// owns the guard, so dropping the un-run closure fires it.
    struct DropGuard(Arc<AtomicUsize>);
    impl Drop for DropGuard {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn drop_under_load_rejects_queue_and_joins_without_deadlock() {
        // The PR 5 regression test: tear the service down while the
        // queue is deep and tasks are mid-execution. Every job must be
        // accounted for (executed or dropped), and the teardown must
        // finish promptly — a deadlocked join would hang this test.
        let executed = Arc::new(AtomicUsize::new(0));
        let destroyed = Arc::new(AtomicUsize::new(0));
        const JOBS: usize = 200;

        let service = Service::new(2);
        let (started_tx, started_rx) = mpsc::channel();
        for i in 0..JOBS {
            let executed = Arc::clone(&executed);
            let guard = DropGuard(Arc::clone(&destroyed));
            let started = (i == 0).then(|| started_tx.clone());
            service
                .submit(move || {
                    let _guard = guard;
                    if let Some(tx) = started {
                        let _ = tx.send(());
                    }
                    std::thread::sleep(Duration::from_millis(2));
                    executed.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        // Make sure at least one task is genuinely mid-execution when
        // the teardown starts.
        started_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("first task never started");

        // Run the drop on a helper thread and watchdog it: deadlock in
        // Drop must fail the test, not hang the suite.
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            drop(service);
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(30))
            .expect("Service::drop deadlocked under load");

        let done = executed.load(Ordering::SeqCst);
        let gone = destroyed.load(Ordering::SeqCst);
        assert_eq!(gone, JOBS, "every job executed or rejected, none leaked");
        assert!(
            done < JOBS,
            "drop-under-load should cancel part of the queue"
        );
        assert!(done >= 1, "in-flight tasks finish, they are not aborted");
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let service = Service::new(1);
        // Reach into the shutdown path without consuming the service:
        // begin draining, then submit.
        service.begin(Mode::Draining);
        let hit = Arc::new(AtomicUsize::new(0));
        let hit2 = Arc::clone(&hit);
        let err = service
            .submit(move || {
                hit2.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap_err();
        // The job comes back intact and can still be run inline.
        (err.0)();
        assert_eq!(hit.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn shutdown_drain_finishes_queued_tasks() {
        let service = Service::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            service
                .submit(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        }
        service.shutdown_drain();
        assert_eq!(
            counter.load(Ordering::SeqCst),
            50,
            "drain runs the queue dry"
        );
    }

    #[test]
    fn panicking_task_does_not_kill_workers() {
        let service = Service::new(1);
        service.submit(|| panic!("poisoned request")).unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        service
            .submit(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        service.shutdown_drain();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn zero_threads_panics() {
        let _ = Service::new(0);
    }
}
