//! The degrade-to-serial contract of the work-stealing pool.
//!
//! A 1-thread pool has no victims to steal from and no peers to park
//! behind: every task must execute on the single worker without a steal
//! and without a parking wakeup. This lives in its own integration-test
//! binary because the metric registry is process-global — the lib unit
//! tests exercise multi-thread pools concurrently and would pollute the
//! counters read here.

use soc_obs::MetricValue;
use soc_pool::Pool;

fn counter(name: &str) -> u64 {
    soc_obs::registry()
        .snapshot()
        .rows
        .into_iter()
        .find(|r| r.name == name)
        .map_or(0, |r| match r.value {
            MetricValue::Counter(v) => v,
            other => panic!("{name} is not a counter: {other:?}"),
        })
}

#[test]
fn one_thread_pool_executes_with_zero_steals_and_no_parking() {
    soc_obs::enable_metrics();
    soc_obs::reset_metrics();

    let pool = Pool::new(1);
    let items: Vec<usize> = (0..64).collect();
    for _ in 0..8 {
        let out = pool.map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    assert_eq!(
        counter("pool.tasks_stolen"),
        0,
        "a 1-thread pool has no victims — any steal is a scheduling bug"
    );
    assert_eq!(
        counter("pool.park_wakes"),
        0,
        "the sole worker is never woken by a peer — any wake is a lost-wakeup \
         hazard in disguise"
    );
    assert_eq!(
        counter("pool.parks"),
        0,
        "the sole worker always finds work or finds the batch finished — it \
         must never reach the park path"
    );
    // The degraded path runs the closure inline on the caller: it spawns
    // no workers, so it never reports scheduler activity at all.
    assert_eq!(
        counter("pool.tasks_executed"),
        0,
        "a 1-thread map must run inline, not through the scheduler"
    );
}
