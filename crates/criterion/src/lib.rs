//! In-repo stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in a fully offline environment with no registry
//! access, so external dev-dependencies cannot be resolved. This crate
//! implements the subset of criterion's API that the workspace's benches
//! use — `Criterion`, `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros — on top of
//! `std::time::Instant`.
//!
//! It is deliberately simple: fixed warm-up, a configurable number of
//! samples, and a median/mean/min report per benchmark. It produces no
//! HTML, no statistical regression analysis, and no saved baselines; it
//! exists so `cargo bench` runs offline and prints honest wall-clock
//! numbers.

#![warn(clippy::all)]

use std::fmt;
use std::time::{Duration, Instant};

/// Target wall-clock time per sample; the iteration count per sample is
/// chosen from the warm-up estimate to roughly hit this.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// Entry point object handed to every benchmark function.
pub struct Criterion {
    filter: Option<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench binaries as `<bin> --bench [filter]`; any
        // non-flag argument acts as a substring filter on benchmark ids.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion {
            filter,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let n = self.default_sample_size;
        self.run_one(&id, n, |b| f(b));
        self
    }

    fn run_one<F>(&mut self, id: &str, sample_size: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        report(id, &bencher.samples);
    }
}

/// A group of benchmarks sharing a name prefix and sample-size setting.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Benchmarks `f`, passing it a reference to `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, |b| f(b, input));
        self
    }

    /// Benchmarks a function with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let n = self
            .sample_size
            .unwrap_or(self.criterion.default_sample_size);
        self.criterion.run_one(&full, n, |b| f(b));
        self
    }

    /// Ends the group (kept for API compatibility; reporting is eager).
    pub fn finish(&mut self) {}
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id distinguished only by a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Timing driver passed to the closure under benchmark.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting `sample_size` samples of however many
    /// iterations fit the per-sample time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + iteration-count calibration: run once, then scale.
        let start = Instant::now();
        let _ = routine();
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                let _ = routine();
            }
            let total = start.elapsed();
            self.samples.push(total / iters as u32);
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{id:<50} median {:>10}  mean {:>10}  min {:>10}  ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(min),
        sorted.len(),
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_requested_samples() {
        let mut b = Bencher {
            sample_size: 5,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 5);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("ILP", 7).to_string(), "ILP/7");
        assert_eq!(BenchmarkId::from_parameter(500).to_string(), "500");
    }

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            default_sample_size: 3,
        };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_with_input(BenchmarkId::new("f", 1), &41, |b, &x| {
                b.iter(|| x + 1);
                ran += 1;
            });
            g.finish();
        }
        assert_eq!(ran, 1);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("nomatch".into()),
            default_sample_size: 3,
        };
        let mut ran = 0;
        c.bench_function("something_else", |b| {
            b.iter(|| 1);
            ran += 1;
        });
        assert_eq!(ran, 0);
    }
}
