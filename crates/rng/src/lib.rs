//! # soc-rng
//!
//! A small, deterministic pseudo-random number generator for the whole
//! workspace: [SplitMix64] expands a 64-bit seed into the state of a
//! [xoshiro256**] generator. Both algorithms are public-domain
//! (Blackman & Vigna, <https://prng.di.unimi.it/>), pass BigCrush, and fit
//! the repository's all-from-scratch design — the workspace has **zero**
//! external runtime dependencies and builds with `cargo build --offline`.
//!
//! The generator is *not* cryptographically secure; it exists for workload
//! generation, random-walk mining, and property tests, all of which only
//! need speed and reproducibility. Every consumer seeds explicitly
//! ([`StdRng::seed_from_u64`]), so runs are deterministic given the seed.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c
//! [xoshiro256**]: https://prng.di.unimi.it/xoshiro256starstar.c

#![warn(missing_docs)]
#![warn(clippy::all)]

use std::ops::{Range, RangeInclusive};

/// The workspace's standard generator: xoshiro256** seeded via SplitMix64.
///
/// The name mirrors the generator the workspace previously pulled from the
/// external `rand` crate, keeping call sites short.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// One step of SplitMix64: the recommended seeder for the xoshiro family
/// (consecutive outputs of a counter-based mix are decorrelated even for
/// adjacent seeds such as 0 and 1).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        // SplitMix64 never yields an all-zero 256-bit state (each output
        // is a bijection of a distinct counter value), so xoshiro's "not
        // everywhere zero" requirement holds for every seed.
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The generator for one stream of a seed-split family:
    /// `stream(seed, 0), stream(seed, 1), …` are decorrelated,
    /// reproducible generators derived from a single seed. Parallel
    /// consumers (the multi-worker MFI miner) give each worker its own
    /// stream index so results depend only on the seed and the number of
    /// workers — never on scheduling.
    pub fn stream(seed: u64, stream_index: u64) -> Self {
        // Run the index through one SplitMix64 step before XOR-ing into
        // the seed: adjacent stream indices land on decorrelated seeds,
        // and seed_from_u64 then decorrelates the four state words.
        let mut sm = stream_index;
        Self::seed_from_u64(seed ^ splitmix64(&mut sm))
    }

    /// The next 64 uniformly distributed bits (xoshiro256**).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform sample of type `T` (`f64` in `[0, 1)`, integers over
    /// their whole domain, `bool` fair).
    #[inline]
    pub fn random<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from a (half-open or inclusive) range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    pub fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.random::<f64>() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..i + 1);
            slice.swap(i, j);
        }
    }

    /// A uniform `u64` below `bound` (Lemire's multiply-shift with
    /// rejection — unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    fn u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Rejection zone: the low `2^64 mod bound` part of the multiply
        // lattice is oversampled; resample while we land in it.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(bound);
            if (wide as u64) >= threshold {
                return (wide >> 64) as u64;
            }
        }
    }
}

/// Types [`StdRng::random`] can produce.
pub trait Sample {
    /// Draws one uniform value.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` with the full 53 bits of mantissa.
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`StdRng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.u64_below(span) as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return (rng.next_u64() as i128 + start as i128) as $t;
                }
                (start as i128 + rng.u64_below(span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let x = self.start + rng.random::<f64>() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if x < self.end {
            x
        } else {
            self.start
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample(self, rng: &mut StdRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range");
        start + rng.random::<f64>() * (end - start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn matches_reference_vectors() {
        // xoshiro256** seeded with SplitMix64(0): first outputs of the
        // reference C implementations chained exactly as we chain them.
        let mut sm = 0u64;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        // SplitMix64 reference outputs for state starting at 0.
        assert_eq!(s[0], 0xE220_A839_7B1D_CDAF);
        assert_eq!(s[1], 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(s[2], 0x06C4_5D18_8009_454F);
        assert_eq!(s[3], 0xF88B_B8A8_724C_81EC);
        let rng = StdRng::seed_from_u64(0);
        assert_eq!(rng.s, s);
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        for j in 0..8u64 {
            assert_eq!(StdRng::stream(42, j), StdRng::stream(42, j));
        }
        let firsts: Vec<u64> = (0..8u64)
            .map(|j| StdRng::stream(42, j).next_u64())
            .collect();
        let mut unique = firsts.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), firsts.len(), "stream collision: {firsts:?}");
        assert_ne!(StdRng::stream(42, 0), StdRng::stream(43, 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!(
            (sum / 10_000.0 - 0.5).abs() < 0.02,
            "mean {}",
            sum / 10_000.0
        );
    }

    #[test]
    fn ranges_hit_all_values_and_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let v = rng.random_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = rng.random_range(2..=4usize);
            assert!((2..=4).contains(&v));
            let f = rng.random_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.random_range(-3..6i32);
            assert!((-3..6).contains(&i));
        }
    }

    #[test]
    fn range_is_unbiased_enough() {
        // 3 does not divide 2^64; Lemire rejection must keep cells even.
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.random_range(0..3usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 10_000.0 - 1.0).abs() < 0.05, "{counts:?}");
        }
    }

    #[test]
    fn bool_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02, "{hits}");
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Overwhelmingly likely to differ from identity.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.random_range(3..3usize);
    }
}
