//! Minimal tokenizer for the text variant: lowercase, alphanumeric terms,
//! optional stop-word removal.

use std::collections::HashSet;
use std::sync::OnceLock;

/// English stop words excluded from indexing by default (tiny list — the
/// goal is realistic term statistics, not linguistic completeness).
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from", "has", "have", "in",
    "is", "it", "its", "of", "on", "or", "that", "the", "this", "to", "was", "were", "will",
    "with",
];

fn stopword_set() -> &'static HashSet<&'static str> {
    static SET: OnceLock<HashSet<&'static str>> = OnceLock::new();
    SET.get_or_init(|| STOPWORDS.iter().copied().collect())
}

/// Tokenizer configuration.
#[derive(Clone, Copy, Debug)]
pub struct Tokenizer {
    /// Drop the built-in stop words.
    pub remove_stopwords: bool,
    /// Drop terms shorter than this many characters.
    pub min_len: usize,
}

impl Default for Tokenizer {
    fn default() -> Self {
        Self {
            remove_stopwords: true,
            min_len: 2,
        }
    }
}

impl Tokenizer {
    /// Splits text into lowercase alphanumeric terms.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        text.split(|c: char| !c.is_alphanumeric())
            .filter(|t| !t.is_empty())
            .map(str::to_lowercase)
            .filter(|t| t.chars().count() >= self.min_len)
            .filter(|t| !self.remove_stopwords || !stopword_set().contains(t.as_str()))
            .collect()
    }

    /// Tokenizes and deduplicates, preserving first-occurrence order
    /// (documents as keyword *sets*, the Boolean view of §II.B).
    pub fn distinct_terms(&self, text: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        self.tokenize(text)
            .into_iter()
            .filter(|t| seen.insert(t.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_splits() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Sunny 2-bedroom Apartment!"),
            vec!["sunny", "bedroom", "apartment"]
        );
    }

    #[test]
    fn stopwords_removed_by_default() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("near the train station"),
            vec!["near", "train", "station"]
        );
        let keep = Tokenizer {
            remove_stopwords: false,
            ..Default::default()
        };
        assert_eq!(
            keep.tokenize("near the train station"),
            vec!["near", "the", "train", "station"]
        );
    }

    #[test]
    fn distinct_terms_dedupe() {
        let t = Tokenizer::default();
        assert_eq!(
            t.distinct_terms("pool pool POOL garden pool"),
            vec!["pool", "garden"]
        );
    }

    #[test]
    fn min_len_filter() {
        let t = Tokenizer {
            min_len: 4,
            remove_stopwords: false,
        };
        assert_eq!(t.tokenize("big blue car door"), vec!["blue", "door"]);
    }
}
