//! # soc-text
//!
//! Text substrate for the `standout` workspace: tokenizer, inverted index
//! with BM25 top-k retrieval (the paper's reference scoring function for
//! text data), and the keyword-selection SOC variant (§II.B, §V) — choose
//! the `m` keywords of a classified ad that make it visible to the most
//! keyword queries, under Boolean ([`select_keywords`]) or BM25 top-k
//! ([`select_keywords_topk`]) retrieval semantics.
//!
//! ```
//! use soc_core::BruteForce;
//! use soc_text::{select_keywords, Tokenizer};
//!
//! let ad = "sunny two bedroom apartment near station with pool";
//! let log = ["apartment pool", "bedroom apartment", "garage"];
//! let sel = select_keywords(&BruteForce, &log, ad, 3, &Tokenizer::default());
//! assert_eq!(sel.satisfied, 2); // e.g. {apartment, pool, bedroom}
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod index;
mod keyword;
mod tokenizer;
mod topk;

pub use index::{Bm25Params, DocId, TextIndex};
pub use keyword::{select_keywords, KeywordSelection};
pub use tokenizer::Tokenizer;
pub use topk::{select_keywords_topk, TopkKeywordSelection};
