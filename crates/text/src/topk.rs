//! SOC-Topk for text (§II.B, §V): choose ad keywords under *top-k BM25
//! retrieval* semantics — the ad is only visible to a query if it ranks
//! among the k best-scoring documents, not merely if it matches.
//!
//! Unlike the Boolean text variant ([`crate::select_keywords`]), the
//! scoring function here is query-dependent, so the frequent-itemset
//! reduction does not apply; the paper prescribes greedy algorithms for
//! this case (§V). Two effects make the problem interesting:
//!
//! - each query `q` has a *score to beat*: the k-th best BM25 score among
//!   the existing corpus documents matching `q`;
//! - BM25 length normalization means adding keywords *dilutes* per-term
//!   scores — a longer ad is not monotonically more visible.
//!
//! Visibility is evaluated against the existing corpus' statistics
//! (inserting one ad into a large corpus changes idf/avgdl negligibly;
//! the reference evaluator in the tests uses the same convention).

use crate::{TextIndex, Tokenizer};

/// Result of a top-k keyword selection.
#[derive(Clone, Debug)]
pub struct TopkKeywordSelection {
    /// The chosen keywords.
    pub keywords: Vec<String>,
    /// Number of log queries for which the compressed ad ranks top-k.
    pub visible_in: usize,
    /// Number of log queries the *full* (uncompressed) ad would rank
    /// top-k for — an upper-envelope reference point (not an upper bound:
    /// length normalization can make shorter ads rank higher).
    pub full_ad_visible_in: usize,
}

/// Per-query precomputed competition: the score the ad must reach.
struct QueryTarget {
    terms: Vec<String>,
    /// k-th best corpus score (0.0 when fewer than k documents score).
    threshold: f64,
}

fn build_targets(
    index: &TextIndex,
    query_log: &[&str],
    tokenizer: &Tokenizer,
    k: usize,
) -> Vec<QueryTarget> {
    query_log
        .iter()
        .map(|q| {
            let terms = tokenizer.distinct_terms(q);
            let ranked = index.top_k(q, k);
            let threshold = if ranked.len() < k {
                0.0
            } else {
                ranked.last().map_or(0.0, |&(_, s)| s)
            };
            QueryTarget { terms, threshold }
        })
        .collect()
}

/// The ad (as a keyword set) is visible to a target query iff its BM25
/// score meets the k-th corpus score (ties resolved in the ad's favour)
/// and is positive.
fn visible(index: &TextIndex, target: &QueryTarget, keywords: &[String]) -> bool {
    let score = index.score_keyword_doc(&target.terms, keywords);
    score > 0.0 && score >= target.threshold
}

/// Greedy keyword selection under top-k BM25 semantics: each round adds
/// the ad keyword that maximizes the number of visible queries (ties:
/// first in ad order); stops early if no addition helps.
pub fn select_keywords_topk(
    index: &TextIndex,
    query_log: &[&str],
    ad_text: &str,
    m: usize,
    k: usize,
    tokenizer: &Tokenizer,
) -> TopkKeywordSelection {
    assert!(k > 0, "top-k retrieval needs k >= 1");
    let vocab = tokenizer.distinct_terms(ad_text);
    let targets = build_targets(index, query_log, tokenizer, k);

    let full_ad_visible_in = targets.iter().filter(|t| visible(index, t, &vocab)).count();

    let mut chosen: Vec<String> = Vec::new();
    let mut best_visible = 0usize;
    for _ in 0..m.min(vocab.len()) {
        let mut best: Option<(usize, usize)> = None; // (vocab idx, visible)
        for (vi, term) in vocab.iter().enumerate() {
            if chosen.contains(term) {
                continue;
            }
            let mut candidate = chosen.clone();
            candidate.push(term.clone());
            let count = targets
                .iter()
                .filter(|t| visible(index, t, &candidate))
                .count();
            if best.is_none_or(|(_, bc)| count > bc) {
                best = Some((vi, count));
            }
        }
        let Some((vi, count)) = best else { break };
        if count < best_visible {
            // Length normalization made every addition strictly worse.
            break;
        }
        chosen.push(vocab[vi].clone());
        best_visible = count;
    }

    TopkKeywordSelection {
        keywords: chosen,
        visible_in: best_visible,
        full_ad_visible_in,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Bm25Params;

    fn corpus() -> Vec<&'static str> {
        vec![
            "sunny two bedroom apartment near train station parking",
            "spacious apartment with pool and garden parking",
            "cozy studio near station",
            "luxury penthouse with pool view and garden terrace",
            "bedroom apartment downtown parking garage",
            "apartment pool gym parking downtown",
        ]
    }

    fn index() -> TextIndex {
        TextIndex::build(corpus(), Tokenizer::default(), Bm25Params::default())
    }

    const AD: &str = "bright two bedroom apartment with pool, parking garage, \
                      near station, quiet garden view";

    #[test]
    fn selection_matches_reference_evaluation() {
        let idx = index();
        let tok = Tokenizer::default();
        let log = [
            "apartment pool",
            "bedroom parking",
            "station",
            "garden view",
        ];
        let sel = select_keywords_topk(&idx, &log, AD, 4, 3, &tok);
        // Recompute visibility for the chosen keywords with the public
        // primitives — must agree with the reported count.
        let targets = super::build_targets(&idx, &log, &tok, 3);
        let direct = targets
            .iter()
            .filter(|t| super::visible(&idx, t, &sel.keywords))
            .count();
        assert_eq!(direct, sel.visible_in);
        assert!(sel.keywords.len() <= 4);
    }

    #[test]
    fn visibility_grows_with_k() {
        let idx = index();
        let tok = Tokenizer::default();
        let log = [
            "apartment pool",
            "bedroom parking",
            "station",
            "apartment parking",
        ];
        let mut last = 0;
        for k in [1, 2, 4, 8] {
            let sel = select_keywords_topk(&idx, &log, AD, 5, k, &tok);
            assert!(sel.visible_in >= last, "k = {k}");
            last = sel.visible_in;
        }
    }

    #[test]
    fn zero_budget_sees_nothing() {
        let idx = index();
        let tok = Tokenizer::default();
        let sel = select_keywords_topk(&idx, &["apartment"], AD, 0, 3, &tok);
        assert_eq!(sel.visible_in, 0);
        assert!(sel.keywords.is_empty());
    }

    #[test]
    fn irrelevant_queries_are_never_visible() {
        let idx = index();
        let tok = Tokenizer::default();
        let sel = select_keywords_topk(&idx, &["submarine reactor"], AD, 5, 3, &tok);
        assert_eq!(sel.visible_in, 0);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let idx = index();
        let tok = Tokenizer::default();
        let _ = select_keywords_topk(&idx, &[], AD, 3, 0, &tok);
    }
}
