//! Keyword selection for classified ads — the text variant of §II.B / §V.
//!
//! A text database is a Boolean database with one attribute per distinct
//! keyword. The seller's ad can only advertise keywords that actually
//! occur in its text; a keyword query is satisfiable iff all its terms
//! occur in the ad. Dropping unsatisfiable queries and mapping the rest to
//! attribute sets yields an exact SOC-CB-QL instance over the ad's own
//! vocabulary. The paper notes that for real corpora the dimension makes
//! greedy algorithms "the only ones feasible"; any [`SocAlgorithm`] can be
//! plugged in here, so small instances can still be solved exactly.

use std::collections::HashMap;
use std::sync::Arc;

use soc_core::{SocAlgorithm, SocInstance};
use soc_data::{AttrSet, Query, QueryLog, Schema, Tuple};

use crate::Tokenizer;

/// Result of a keyword-selection solve.
#[derive(Clone, Debug)]
pub struct KeywordSelection {
    /// The chosen keywords, in the ad's first-occurrence order.
    pub keywords: Vec<String>,
    /// Number of query-log queries fully covered by the chosen keywords.
    pub satisfied: usize,
    /// How many log queries were satisfiable by the ad at all.
    pub satisfiable_queries: usize,
}

/// Selects the `m` best keywords of `ad_text` against a log of keyword
/// queries, using any SOC-CB-QL algorithm on the exact Boolean reduction.
pub fn select_keywords<A: SocAlgorithm + ?Sized>(
    algorithm: &A,
    query_log: &[&str],
    ad_text: &str,
    m: usize,
    tokenizer: &Tokenizer,
) -> KeywordSelection {
    // Universe: the ad's distinct terms (only they can be advertised).
    let vocab: Vec<String> = tokenizer.distinct_terms(ad_text);
    let index: HashMap<&str, usize> = vocab
        .iter()
        .enumerate()
        .map(|(i, t)| (t.as_str(), i))
        .collect();
    let universe = vocab.len();

    // Queries whose terms all occur in the ad reduce to attribute sets.
    let mut queries = Vec::new();
    for q in query_log {
        let terms = tokenizer.distinct_terms(q);
        if terms.is_empty() {
            continue;
        }
        let ids: Option<Vec<usize>> = terms
            .iter()
            .map(|t| index.get(t.as_str()).copied())
            .collect();
        if let Some(ids) = ids {
            queries.push(Query::new(AttrSet::from_indices(universe, ids)));
        }
    }
    let satisfiable_queries = queries.len();

    let schema = Arc::new(Schema::new(vocab.iter().cloned()));
    let log = QueryLog::new(schema, queries);
    let tuple = Tuple::new(AttrSet::full(universe));
    let inst = SocInstance::new(&log, &tuple, m);
    let sol = algorithm.solve(&inst);

    KeywordSelection {
        keywords: sol.retained.iter().map(|i| vocab[i].clone()).collect(),
        satisfied: sol.satisfied,
        satisfiable_queries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use soc_core::{BruteForce, ConsumeAttr};

    const AD: &str = "Sunny two bedroom apartment near train station, \
                      pool access, electricity included";

    #[test]
    fn exact_selection_covers_most_queries() {
        let log = [
            "apartment bedroom",
            "apartment pool",
            "apartment near station",
            "bedroom electricity",
            "penthouse terrace", // not satisfiable by the ad
        ];
        let tok = Tokenizer::default();
        let sel = select_keywords(&BruteForce, &log, AD, 3, &tok);
        assert_eq!(sel.satisfiable_queries, 4);
        // {apartment, bedroom, pool} covers queries 1, 2 → 2;
        // {apartment, bedroom, electricity} covers 1, 4 → 2; best is 2.
        assert_eq!(sel.satisfied, 2);
        assert_eq!(sel.keywords.len(), 3);
        assert!(sel.keywords.contains(&"apartment".to_string()));
    }

    #[test]
    fn greedy_is_valid() {
        let log = ["apartment", "apartment pool", "station"];
        let tok = Tokenizer::default();
        let greedy = select_keywords(&ConsumeAttr, &log, AD, 2, &tok);
        let exact = select_keywords(&BruteForce, &log, AD, 2, &tok);
        assert!(greedy.satisfied <= exact.satisfied);
        // Best pair: {apartment, pool} covers q1, q2 (or {apartment,
        // station} covers q1, q3) → 2.
        assert_eq!(exact.satisfied, 2);
    }

    #[test]
    fn keyword_budget_larger_than_vocab() {
        let log = ["cozy studio"];
        let tok = Tokenizer::default();
        let sel = select_keywords(&BruteForce, &log, "cozy studio", 10, &tok);
        assert_eq!(sel.keywords.len(), 2);
        assert_eq!(sel.satisfied, 1);
    }
}
