//! Inverted index with BM25 top-k retrieval (Robertson & Walker, SIGIR
//! 1994 — the paper's reference [19] for text scoring).

use std::collections::HashMap;

use crate::Tokenizer;

/// Identifier of a document in a [`TextIndex`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// BM25 parameters.
#[derive(Clone, Copy, Debug)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`), conventionally 1.2.
    pub k1: f64,
    /// Length normalization (`b`), conventionally 0.75.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Self { k1: 1.2, b: 0.75 }
    }
}

struct Posting {
    doc: DocId,
    term_freq: u32,
}

/// An in-memory inverted index over a document collection, supporting
/// Boolean containment tests and BM25-scored top-k retrieval.
pub struct TextIndex {
    tokenizer: Tokenizer,
    params: Bm25Params,
    postings: HashMap<String, Vec<Posting>>,
    doc_lens: Vec<usize>,
    avg_doc_len: f64,
}

impl TextIndex {
    /// Builds the index over a corpus of document texts.
    pub fn build<'a, I>(docs: I, tokenizer: Tokenizer, params: Bm25Params) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut postings: HashMap<String, Vec<Posting>> = HashMap::new();
        let mut doc_lens = Vec::new();
        for (i, text) in docs.into_iter().enumerate() {
            let doc = DocId(i as u32);
            let terms = tokenizer.tokenize(text);
            doc_lens.push(terms.len());
            let mut tf: HashMap<String, u32> = HashMap::new();
            for t in terms {
                *tf.entry(t).or_default() += 1;
            }
            for (term, term_freq) in tf {
                postings
                    .entry(term)
                    .or_default()
                    .push(Posting { doc, term_freq });
            }
        }
        let avg_doc_len = if doc_lens.is_empty() {
            0.0
        } else {
            doc_lens.iter().sum::<usize>() as f64 / doc_lens.len() as f64
        };
        Self {
            tokenizer,
            params,
            postings,
            doc_lens,
            avg_doc_len,
        }
    }

    /// Number of indexed documents.
    pub fn num_docs(&self) -> usize {
        self.doc_lens.len()
    }

    /// Number of distinct indexed terms.
    pub fn vocabulary_size(&self) -> usize {
        self.postings.len()
    }

    /// Document frequency of a term.
    pub fn doc_freq(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, Vec::len)
    }

    /// Mean indexed document length (in terms).
    pub fn avg_doc_len(&self) -> f64 {
        self.avg_doc_len
    }

    /// The BM25 parameters the index scores with.
    pub fn params(&self) -> Bm25Params {
        self.params
    }

    /// BM25 score a *hypothetical* document would get for `query_terms`:
    /// the document contains each of `doc_terms` exactly once (a keyword
    /// set, e.g. a compressed classified ad). Uses this index's corpus
    /// statistics.
    pub fn score_keyword_doc(&self, query_terms: &[String], doc_terms: &[String]) -> f64 {
        let Bm25Params { k1, b } = self.params;
        let len = doc_terms.len() as f64;
        let norm = k1 * (1.0 - b + b * len / self.avg_doc_len.max(1e-9));
        query_terms
            .iter()
            .filter(|t| doc_terms.contains(t))
            .map(|t| self.idf(t) * (k1 + 1.0) / (1.0 + norm))
            .sum()
    }

    /// Robertson–Sparck-Jones IDF with the +1 floor used by Lucene (keeps
    /// weights positive for very common terms).
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.num_docs() as f64;
        let df = self.doc_freq(term) as f64;
        ((n - df + 0.5) / (df + 0.5) + 1.0).ln()
    }

    /// BM25 score of a document for a bag of query terms.
    pub fn score(&self, query_terms: &[String], doc: DocId) -> f64 {
        let mut total = 0.0;
        for term in query_terms {
            let Some(list) = self.postings.get(term) else {
                continue;
            };
            let Some(p) = list.iter().find(|p| p.doc == doc) else {
                continue;
            };
            total += self.term_score(term, p.term_freq, self.doc_lens[doc.0 as usize]);
        }
        total
    }

    fn term_score(&self, term: &str, tf: u32, doc_len: usize) -> f64 {
        let Bm25Params { k1, b } = self.params;
        let tf = tf as f64;
        let norm = k1 * (1.0 - b + b * doc_len as f64 / self.avg_doc_len.max(1e-9));
        self.idf(term) * tf * (k1 + 1.0) / (tf + norm)
    }

    /// Top-k retrieval: the `k` highest-BM25 documents containing at least
    /// one query term, ties broken by document id for determinism.
    pub fn top_k(&self, query: &str, k: usize) -> Vec<(DocId, f64)> {
        let terms = self.tokenizer.tokenize(query);
        let mut scores: HashMap<DocId, f64> = HashMap::new();
        for term in &terms {
            if let Some(list) = self.postings.get(term) {
                for p in list {
                    *scores.entry(p.doc).or_default() +=
                        self.term_score(term, p.term_freq, self.doc_lens[p.doc.0 as usize]);
                }
            }
        }
        let mut ranked: Vec<(DocId, f64)> = scores.into_iter().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    /// Conjunctive Boolean retrieval: documents containing *all* query
    /// terms.
    pub fn boolean_retrieve(&self, query: &str) -> Vec<DocId> {
        let terms = self.tokenizer.distinct_terms(query);
        if terms.is_empty() {
            return (0..self.num_docs() as u32).map(DocId).collect();
        }
        let mut result: Option<Vec<DocId>> = None;
        for term in &terms {
            let docs: Vec<DocId> = self
                .postings
                .get(term)
                .map(|l| l.iter().map(|p| p.doc).collect())
                .unwrap_or_default();
            result = Some(match result {
                None => docs,
                Some(prev) => prev.into_iter().filter(|d| docs.contains(d)).collect(),
            });
        }
        let mut out = result.unwrap_or_default();
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> TextIndex {
        TextIndex::build(
            [
                "sunny two bedroom apartment near train station",
                "spacious apartment with pool and garden",
                "cozy studio near station",
                "luxury penthouse with pool view and garden terrace",
            ],
            Tokenizer::default(),
            Bm25Params::default(),
        )
    }

    #[test]
    fn index_shape() {
        let idx = corpus();
        assert_eq!(idx.num_docs(), 4);
        assert_eq!(idx.doc_freq("apartment"), 2);
        assert_eq!(idx.doc_freq("pool"), 2);
        assert_eq!(idx.doc_freq("zzz"), 0);
    }

    #[test]
    fn idf_orders_by_rarity() {
        let idx = corpus();
        assert!(idx.idf("penthouse") > idx.idf("apartment"));
        assert!(idx.idf("apartment") > 0.0);
    }

    #[test]
    fn top_k_ranks_matching_docs() {
        let idx = corpus();
        let hits = idx.top_k("apartment pool", 2);
        assert_eq!(hits.len(), 2);
        // Doc 1 has both terms → highest score.
        assert_eq!(hits[0].0, DocId(1));
        assert!(hits[0].1 > hits[1].1);
    }

    #[test]
    fn boolean_retrieval_is_conjunctive() {
        let idx = corpus();
        assert_eq!(
            idx.boolean_retrieve("near station"),
            vec![DocId(0), DocId(2)]
        );
        assert_eq!(
            idx.boolean_retrieve("pool garden"),
            vec![DocId(1), DocId(3)]
        );
        assert_eq!(idx.boolean_retrieve("pool station"), Vec::<DocId>::new());
    }

    #[test]
    fn scores_are_consistent() {
        let idx = corpus();
        let terms = vec!["pool".to_string(), "garden".to_string()];
        let hits = idx.top_k("pool garden", 4);
        for (doc, s) in hits {
            assert!((idx.score(&terms, doc) - s).abs() < 1e-9);
        }
    }
}
