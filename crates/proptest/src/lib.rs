//! In-repo stand-in for the `proptest` property-testing framework.
//!
//! The workspace builds in a fully offline environment with no registry
//! access, so external dev-dependencies cannot be resolved. This crate
//! implements the subset of proptest's API that the workspace's tests
//! use — the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`collection::vec`],
//! [`option::of`], [`Just`], `any::<T>()`, and the `prop_assert*` /
//! `prop_assume!` macros — on top of the deterministic [`soc_rng`]
//! generator.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports the per-case RNG seed; set
//!   `PROPTEST_RNG_SEED=<seed>` to replay exactly that input as case 0.
//! - **Deterministic by default.** Case seeds are derived from the test's
//!   module path and name, so runs are reproducible without a persisted
//!   regression file (`.proptest-regressions` is not used).
//! - **String strategies** support only literal patterns and `.{a,b}`
//!   (a random string whose length lies in `[a, b]`).
//! - `PROPTEST_CASES` overrides the configured case count globally.

#![warn(clippy::all)]

use soc_rng::StdRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------------
// Configuration and runner
// ---------------------------------------------------------------------------

/// Per-`proptest!` block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is false for this input.
    Fail(String),
    /// The input does not satisfy a `prop_assume!` precondition; the case
    /// is discarded and does not count toward the case budget.
    Reject(String),
}

/// FNV-1a, used to give every property its own deterministic seed stream.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One round of SplitMix64-style mixing for per-case seed derivation.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Drives one property: repeatedly generates inputs and evaluates the
/// body until `cases` cases pass, a case fails, or the reject budget is
/// exhausted. Used by the expansion of [`proptest!`]; not public API.
#[doc(hidden)]
pub fn __run_cases<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(config.cases);
    let env_seed = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let base = env_seed.unwrap_or_else(|| fnv1a(name.as_bytes()));

    let max_rejects = (cases as u64) * 16 + 1024;
    let mut rejects = 0u64;
    let mut passed = 0u32;
    let mut attempt = 0u64;
    while passed < cases {
        // Attempt 0 runs the base seed verbatim so a reported seed can be
        // replayed directly via PROPTEST_RNG_SEED.
        let seed = if attempt == 0 {
            base
        } else {
            base ^ mix(attempt)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        match body(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(cond)) => {
                rejects += 1;
                if rejects > max_rejects {
                    panic!(
                        "[{name}] too many inputs rejected by prop_assume! \
                         ({rejects} rejects for {passed}/{cases} cases; last: {cond})"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "[{name}] property failed after {passed} passing case(s)\n\
                     {msg}\n\
                     replay this input with PROPTEST_RNG_SEED={seed}"
                );
            }
        }
        attempt += 1;
    }
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// A strategy producing `f(value)` for each generated `value`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// A strategy that generates a value, builds a second strategy from
    /// it, and draws from that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> u32 {
        rng.random()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> u64 {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> usize {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> f64 {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, i64, i32, f64);

macro_rules! impl_tuple_strategy {
    ($($S:ident . $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, G.5);

// ---------------------------------------------------------------------------
// String patterns
// ---------------------------------------------------------------------------

/// `&str` patterns as strategies. Only two forms are supported: a literal
/// string with no regex metacharacters, and `.{a,b}` (a string of `a..=b`
/// arbitrary non-newline characters).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        if let Some((lo, hi)) = parse_dot_repeat(self) {
            let len = rng.random_range(lo..=hi);
            (0..len).map(|_| random_char(rng)).collect()
        } else if self.chars().any(|c| ".{}[]()*+?|\\^$".contains(c)) {
            panic!(
                "unsupported string pattern {self:?}: the in-repo proptest \
                 stand-in supports only literals and \".{{a,b}}\""
            );
        } else {
            (*self).to_string()
        }
    }
}

/// Parses `.{a,b}` into `(a, b)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// An arbitrary character: mostly printable ASCII, with occasional tabs
/// and non-ASCII code points to stress parsers.
fn random_char(rng: &mut StdRng) -> char {
    match rng.random_range(0..20u32) {
        0 => '\t',
        1 => ['é', 'λ', '中', '𝄞', '∑'][rng.random_range(0..5usize)],
        _ => char::from(rng.random_range(0x20..0x7Fu32) as u8),
    }
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Strategies for collections (only `vec` is provided).
pub mod collection {
    use super::*;

    /// An exact length or a range of lengths for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies for `Option` (only `of` is provided).
pub mod option {
    use super::*;

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.5) {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// A strategy yielding `Some(inner value)` or `None` with equal
    /// probability.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn prop(x in 0..10usize, v in proptest::collection::vec(any::<bool>(), 4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::__run_cases(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                    let __result: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __result
                },
            );
        }
    )*};
}

/// Like `assert!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Like `assert_eq!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
            stringify!($left), stringify!($right), __l, __r, format!($($fmt)+)
        );
    }};
}

/// Like `assert_ne!`, but fails only the current generated case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

/// Discards the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

// ---------------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Doc comments and attributes on properties must be accepted.
        #[test]
        fn ranges_respect_bounds(x in 3..9usize, y in -2..=2i32, f in 0.5..1.5f64) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2..=2).contains(&y));
            prop_assert!((0.5..1.5).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in crate::collection::vec(any::<bool>(), 0..7),
            (a, b) in (0..5usize, Just(7usize)),
            o in crate::option::of(1..4u32),
        ) {
            prop_assert!(v.len() < 7);
            prop_assert!(a < 5);
            prop_assert_eq!(b, 7);
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
        }

        #[test]
        fn flat_map_feeds_dependent_strategy(
            (len, v) in (1..5usize).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0..100u32, n))
            })
        ) {
            prop_assert_eq!(v.len(), len);
        }

        #[test]
        fn assume_discards_without_failing(x in 0..10usize) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn string_pattern(s in ".{0,30}") {
            prop_assert!(s.chars().count() <= 30);
            prop_assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn literal_pattern_is_returned_verbatim() {
        let mut rng = soc_rng::StdRng::seed_from_u64(0);
        let s = crate::Strategy::generate(&"hello world", &mut rng);
        assert_eq!(s, "hello world");
    }

    #[test]
    fn dot_repeat_parsing() {
        assert_eq!(crate::parse_dot_repeat(".{0,300}"), Some((0, 300)));
        assert_eq!(crate::parse_dot_repeat(".{2,5}"), Some((2, 5)));
        assert_eq!(crate::parse_dot_repeat("abc"), None);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic_with_seed() {
        crate::__run_cases(
            &ProptestConfig::with_cases(10),
            "self::always_fails",
            |_rng| Err(TestCaseError::Fail("nope".into())),
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut out = Vec::new();
            crate::__run_cases(&ProptestConfig::with_cases(5), "self::collect", |rng| {
                out.push(rng.next_u64());
                Ok(())
            });
            out
        };
        assert_eq!(run(), run());
    }
}
