//! The paper's synthetic query workload (§VII): each query specifies 1–5
//! attributes, with the count distributed 20% / 30% / 30% / 10% / 10%
//! ("most of the users specify two or three attributes"). Attribute
//! choice is uniform by default, with an optional Zipf-like popularity
//! skew for ablations.

use std::sync::Arc;

use soc_data::{AttrSet, Query, QueryLog, Schema};
use soc_rng::StdRng;

/// Configuration for the synthetic workload generator.
#[derive(Clone, Debug)]
pub struct SyntheticConfig {
    /// Number of queries `S`.
    pub num_queries: usize,
    /// Number of attributes `M`.
    pub num_attrs: usize,
    /// Probability of each query length; index 0 ↦ 1 attribute. The
    /// default is the paper's `[0.2, 0.3, 0.3, 0.1, 0.1]`.
    pub len_distribution: Vec<f64>,
    /// Zipf exponent for attribute popularity; `0.0` = uniform (the
    /// paper's setting), larger values concentrate queries on few
    /// attributes.
    pub popularity_skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            num_queries: 2000,
            num_attrs: 32,
            len_distribution: vec![0.2, 0.3, 0.3, 0.1, 0.1],
            popularity_skew: 0.0,
            seed: 0x20C8,
        }
    }
}

/// Generates the synthetic workload.
///
/// # Panics
/// Panics if the length distribution is empty, has non-positive mass, or
/// allows lengths longer than `num_attrs`.
pub fn generate_synthetic_workload(config: &SyntheticConfig) -> QueryLog {
    assert!(
        !config.len_distribution.is_empty(),
        "empty length distribution"
    );
    let mass: f64 = config.len_distribution.iter().sum();
    assert!(mass > 0.0, "length distribution has no mass");
    assert!(
        config.len_distribution.len() <= config.num_attrs,
        "queries cannot specify more attributes than exist"
    );

    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Arc::new(Schema::anonymous(config.num_attrs));

    // Attribute popularity weights (Zipf over a seeded permutation so the
    // popular attributes are not always the low indices).
    let mut order: Vec<usize> = (0..config.num_attrs).collect();
    rng.shuffle(&mut order);
    let weights: Vec<f64> = (0..config.num_attrs)
        .map(|j| {
            let rank = order[j] + 1;
            1.0 / (rank as f64).powf(config.popularity_skew)
        })
        .collect();
    let total_weight: f64 = weights.iter().sum();

    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let len = sample_len(&config.len_distribution, mass, &mut rng);
        let mut attrs = AttrSet::empty(config.num_attrs);
        while attrs.count() < len {
            let a = sample_weighted(&weights, total_weight, &mut rng);
            attrs.insert(a);
        }
        queries.push(Query::new(attrs));
    }
    QueryLog::new(schema, queries)
}

fn sample_len(dist: &[f64], mass: f64, rng: &mut StdRng) -> usize {
    let x: f64 = rng.random::<f64>() * mass;
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if x < acc {
            return i + 1;
        }
    }
    dist.len()
}

fn sample_weighted(weights: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let x: f64 = rng.random::<f64>() * total;
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_follow_distribution() {
        let log = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 10_000,
            ..Default::default()
        });
        let mut hist = [0usize; 6];
        for q in log.queries() {
            hist[q.len()] += 1;
        }
        assert_eq!(hist[0], 0);
        // 20/30/30/10/10 within generous tolerance.
        let frac = |n: usize| n as f64 / 10_000.0;
        assert!((frac(hist[1]) - 0.2).abs() < 0.03, "{hist:?}");
        assert!((frac(hist[2]) - 0.3).abs() < 0.03);
        assert!((frac(hist[3]) - 0.3).abs() < 0.03);
        assert!((frac(hist[4]) - 0.1).abs() < 0.03);
        assert!((frac(hist[5]) - 0.1).abs() < 0.03);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = SyntheticConfig {
            num_queries: 100,
            ..Default::default()
        };
        let a = generate_synthetic_workload(&cfg);
        let b = generate_synthetic_workload(&cfg);
        for (x, y) in a.queries().iter().zip(b.queries()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn skew_concentrates_popularity() {
        let uniform = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 5_000,
            popularity_skew: 0.0,
            seed: 11,
            ..Default::default()
        });
        let skewed = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 5_000,
            popularity_skew: 1.2,
            seed: 11,
            ..Default::default()
        });
        let top_share = |log: &soc_data::QueryLog| {
            let mut f = log.attribute_frequencies().to_vec();
            f.sort_unstable_by(|a, b| b.cmp(a));
            let total: usize = f.iter().sum();
            f[..4].iter().sum::<usize>() as f64 / total as f64
        };
        assert!(top_share(&skewed) > top_share(&uniform) + 0.1);
    }

    #[test]
    fn custom_distribution() {
        let log = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 200,
            len_distribution: vec![0.0, 0.0, 1.0], // always 3 attributes
            ..Default::default()
        });
        assert!(log.queries().iter().all(|q| q.len() == 3));
    }

    #[test]
    #[should_panic(expected = "no mass")]
    fn zero_mass_panics() {
        let _ = generate_synthetic_workload(&SyntheticConfig {
            len_distribution: vec![0.0],
            ..Default::default()
        });
    }
}

/// Randomly splits a query log into two disjoint parts (weights travel
/// with their queries): a `fraction`-sized "history" and the remainder
/// as "future". Used by the log-drift experiment — the paper (§VIII)
/// notes a query log is only an approximate surrogate of future buyer
/// preferences, and this lets us measure how much that costs.
///
/// # Panics
/// Panics unless `0.0 < fraction < 1.0`.
pub fn split_log(
    log: &soc_data::QueryLog,
    fraction: f64,
    seed: u64,
) -> (soc_data::QueryLog, soc_data::QueryLog) {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be strictly between 0 and 1"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..log.len()).collect();
    rng.shuffle(&mut ids);
    let cut = ((log.len() as f64 * fraction).round() as usize).clamp(1, log.len() - 1);
    let history: std::collections::HashSet<usize> = ids[..cut].iter().copied().collect();
    let mut index = 0;
    let train = log.filter(|_| {
        let keep = history.contains(&index);
        index += 1;
        keep
    });
    let mut index = 0;
    let test = log.filter(|_| {
        let keep = !history.contains(&index);
        index += 1;
        keep
    });
    (train, test)
}

#[cfg(test)]
mod split_tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let log = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 100,
            ..Default::default()
        });
        let (a, b) = split_log(&log, 0.7, 1);
        assert_eq!(a.len() + b.len(), log.len());
        assert_eq!(a.len(), 70);
        assert_eq!(a.total_weight() + b.total_weight(), log.total_weight());
    }

    #[test]
    fn split_is_deterministic() {
        let log = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 50,
            ..Default::default()
        });
        let (a1, _) = split_log(&log, 0.5, 9);
        let (a2, _) = split_log(&log, 0.5, 9);
        for (x, y) in a1.queries().iter().zip(a2.queries()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    #[should_panic(expected = "strictly between")]
    fn bad_fraction_panics() {
        let log = generate_synthetic_workload(&SyntheticConfig {
            num_queries: 10,
            ..Default::default()
        });
        let _ = split_log(&log, 1.0, 0);
    }
}
