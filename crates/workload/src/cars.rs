//! Synthetic used-car inventory and a "real-like" query workload.
//!
//! Substitute for the paper's evaluation data (§VII): a Yahoo! Autos crawl
//! of 15,211 Dallas-area cars over 32 Boolean attributes, plus a real
//! 185-query workload collected at UT Arlington. Neither is available, so
//! this module generates statistically similar stand-ins:
//!
//! - cars are drawn from five *classes* (economy, family, luxury, sport,
//!   utility) whose feature-probability profiles induce the correlated
//!   attribute groups real inventories show (sporty cars have sporty
//!   features, etc.);
//! - "real-like" queries are coherent bundles sampled from a class
//!   profile, 4–6 attributes each — the paper notes every real query
//!   specified more than 3 attributes (hence zero satisfied queries at
//!   m = 3 in Fig 7), and this generator preserves that property.

use std::sync::Arc;

use soc_data::{AttrSet, Database, Query, QueryLog, Schema, Tuple};
use soc_rng::StdRng;

/// The 32 Boolean attributes of the synthetic inventory.
pub const CAR_ATTRIBUTES: [&str; 32] = [
    "ac",
    "power_steering",
    "power_windows",
    "power_locks",
    "power_brakes",
    "power_doors",
    "cruise_control",
    "tilt_wheel",
    "am_fm_radio",
    "cd_player",
    "leather_seats",
    "sunroof",
    "moonroof",
    "navigation",
    "heated_seats",
    "alloy_wheels",
    "abs",
    "airbag_driver",
    "airbag_passenger",
    "side_airbags",
    "traction_control",
    "stability_control",
    "four_door",
    "two_door",
    "turbo",
    "v8",
    "spoiler",
    "sport_suspension",
    "awd",
    "tow_package",
    "roof_rack",
    "third_row_seats",
];

const COMFORT: std::ops::Range<usize> = 0..10; // ac .. cd_player
const LUXURY: std::ops::Range<usize> = 10..16; // leather .. alloy
const SAFETY: std::ops::Range<usize> = 16..22; // abs .. stability
const BODY: std::ops::Range<usize> = 22..24; // four_door, two_door
const SPORT: std::ops::Range<usize> = 24..28; // turbo .. sport_suspension
const UTILITY: std::ops::Range<usize> = 28..32; // awd .. third_row

/// Car market segment; drives both feature correlation and query shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CarClass {
    /// Cheap commuter: few features beyond the basics.
    Economy,
    /// Family sedan/minivan: comfort + safety heavy.
    Family,
    /// Luxury sedan: comfort + luxury + safety.
    Luxury,
    /// Sports car: sport features, two doors.
    Sport,
    /// SUV/truck: utility features.
    Utility,
}

const CLASSES: [CarClass; 5] = [
    CarClass::Economy,
    CarClass::Family,
    CarClass::Luxury,
    CarClass::Sport,
    CarClass::Utility,
];

/// Share of the market for each class (economy and family dominate).
const CLASS_WEIGHTS: [f64; 5] = [0.30, 0.30, 0.15, 0.10, 0.15];

impl CarClass {
    /// Probability that a car of this class has an attribute from each
    /// group: (comfort, luxury, safety, four_door, two_door, sport,
    /// utility).
    fn profile(self) -> [f64; 7] {
        match self {
            CarClass::Economy => [0.45, 0.05, 0.35, 0.70, 0.30, 0.02, 0.05],
            CarClass::Family => [0.75, 0.20, 0.70, 0.95, 0.05, 0.02, 0.15],
            CarClass::Luxury => [0.95, 0.85, 0.90, 0.85, 0.15, 0.10, 0.15],
            CarClass::Sport => [0.70, 0.45, 0.55, 0.05, 0.95, 0.85, 0.05],
            CarClass::Utility => [0.60, 0.15, 0.60, 0.80, 0.20, 0.05, 0.80],
        }
    }

    fn attr_probability(self, attr: usize) -> f64 {
        let p = self.profile();
        let group = if COMFORT.contains(&attr) {
            p[0]
        } else if LUXURY.contains(&attr) {
            p[1]
        } else if SAFETY.contains(&attr) {
            p[2]
        } else if BODY.contains(&attr) {
            if attr == 22 {
                p[3]
            } else {
                p[4]
            }
        } else if SPORT.contains(&attr) {
            p[5]
        } else {
            debug_assert!(UTILITY.contains(&attr));
            p[6]
        };
        group * popularity_factor(attr)
    }
}

/// Within-group popularity gradient: the first attributes of each group
/// (AC, ABS, four-door, turbo, AWD, …) are far more common — both on cars
/// and in buyer queries — than the long tail. Without this, queries would
/// scatter uniformly over a group and no small attribute set could cover
/// them, which is not how real workloads behave.
fn popularity_factor(attr: usize) -> f64 {
    let pos = [COMFORT, LUXURY, SAFETY, BODY, SPORT, UTILITY]
        .into_iter()
        .find(|g| g.contains(&attr))
        .map_or(0, |g| attr - g.start);
    1.0 / (1.0 + pos as f64).powf(0.7)
}

/// Configuration for the inventory generator.
#[derive(Clone, Debug)]
pub struct CarsConfig {
    /// Number of cars (the paper's dataset has 15,211).
    pub num_cars: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CarsConfig {
    fn default() -> Self {
        Self {
            num_cars: 15_211,
            seed: 0xCA85,
        }
    }
}

/// A generated inventory: the database plus each car's latent class.
pub struct CarsDataset {
    /// The car database (32 Boolean attributes).
    pub db: Database,
    /// Latent class of each car (index-aligned with the database).
    pub classes: Vec<CarClass>,
}

/// Generates the synthetic inventory.
pub fn generate_cars(config: &CarsConfig) -> CarsDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Arc::new(Schema::new(CAR_ATTRIBUTES));
    let m = CAR_ATTRIBUTES.len();
    let mut tuples = Vec::with_capacity(config.num_cars);
    let mut classes = Vec::with_capacity(config.num_cars);
    for _ in 0..config.num_cars {
        let class = sample_class(&mut rng);
        let mut attrs = AttrSet::empty(m);
        for a in 0..m {
            if rng.random_bool(class.attr_probability(a)) {
                attrs.insert(a);
            }
        }
        tuples.push(Tuple::new(attrs));
        classes.push(class);
    }
    CarsDataset {
        db: Database::new(schema, tuples),
        classes,
    }
}

fn sample_class(rng: &mut StdRng) -> CarClass {
    let x: f64 = rng.random();
    let mut acc = 0.0;
    for (c, w) in CLASSES.iter().zip(CLASS_WEIGHTS) {
        acc += w;
        if x < acc {
            return *c;
        }
    }
    CarClass::Utility
}

/// Configuration for the real-like query workload.
#[derive(Clone, Debug)]
pub struct RealWorkloadConfig {
    /// Number of queries (the paper's real workload has 185).
    pub num_queries: usize,
    /// Queries specify between `min_attrs` and `max_attrs` attributes.
    /// The defaults (4–6) reproduce the paper's observation that every
    /// real query specified more than 3 attributes.
    pub min_attrs: usize,
    /// Upper bound on attributes per query (inclusive).
    pub max_attrs: usize,
    /// Sharpening exponent on the class profile: attribute `a` is drawn
    /// with weight `P[class has a]^sharpen`. Real buyer queries are
    /// heavily concentrated on each segment's signature features (the
    /// property behind Fig 7's near-optimal ConsumeAttr); 1.0 disables
    /// the sharpening.
    pub sharpen: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RealWorkloadConfig {
    fn default() -> Self {
        Self {
            num_queries: 185,
            min_attrs: 4,
            max_attrs: 6,
            sharpen: 3.0,
            seed: 0x0185,
        }
    }
}

/// Generates the real-like workload: each query picks a car class, then
/// samples a coherent attribute bundle weighted by the (sharpened) class
/// profile, so queries concentrate on each segment's signature features.
pub fn generate_real_workload(config: &RealWorkloadConfig) -> QueryLog {
    assert!(config.min_attrs >= 1 && config.min_attrs <= config.max_attrs);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let schema = Arc::new(Schema::new(CAR_ATTRIBUTES));
    let m = CAR_ATTRIBUTES.len();
    let mut queries = Vec::with_capacity(config.num_queries);
    for _ in 0..config.num_queries {
        let class = sample_class(&mut rng);
        let len = rng.random_range(config.min_attrs..=config.max_attrs);
        let weights: Vec<f64> = (0..m)
            .map(|a| class.attr_probability(a).powf(config.sharpen))
            .collect();
        let mut attrs = AttrSet::empty(m);
        let mut guard = 0;
        while attrs.count() < len && guard < 100_000 {
            guard += 1;
            let total: f64 = weights
                .iter()
                .enumerate()
                .filter(|&(a, _)| !attrs.contains(a))
                .map(|(_, w)| w)
                .sum();
            let mut x: f64 = rng.random::<f64>() * total;
            for (a, &w) in weights.iter().enumerate() {
                if attrs.contains(a) {
                    continue;
                }
                x -= w;
                if x <= 0.0 {
                    attrs.insert(a);
                    break;
                }
            }
        }
        queries.push(Query::new(attrs));
    }
    QueryLog::new(schema, queries)
}

/// Selects `n` distinct cars to advertise (the paper averages over 100
/// randomly selected cars).
pub fn sample_new_cars(dataset: &CarsDataset, n: usize, seed: u64) -> Vec<Tuple> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids: Vec<usize> = (0..dataset.db.len()).collect();
    rng.shuffle(&mut ids);
    ids.truncate(n);
    ids.into_iter()
        .map(|i| dataset.db.tuples()[i].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inventory_shape() {
        let d = generate_cars(&CarsConfig {
            num_cars: 500,
            seed: 1,
        });
        assert_eq!(d.db.len(), 500);
        assert_eq!(d.db.num_attrs(), 32);
        assert_eq!(d.classes.len(), 500);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CarsConfig {
            num_cars: 50,
            seed: 7,
        };
        let a = generate_cars(&cfg);
        let b = generate_cars(&cfg);
        for (x, y) in a.db.tuples().iter().zip(b.db.tuples()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn classes_shape_features() {
        let d = generate_cars(&CarsConfig {
            num_cars: 4000,
            seed: 3,
        });
        // Sport cars should carry sport features far more often than
        // economy cars.
        let rate = |class: CarClass, attr: usize| {
            let (hits, total) =
                d.db.tuples()
                    .iter()
                    .zip(&d.classes)
                    .filter(|(_, c)| **c == class)
                    .fold((0usize, 0usize), |(h, t), (tup, _)| {
                        (h + usize::from(tup.attrs().contains(attr)), t + 1)
                    });
            hits as f64 / total.max(1) as f64
        };
        let turbo = 24;
        assert!(rate(CarClass::Sport, turbo) > 0.5);
        assert!(rate(CarClass::Economy, turbo) < 0.2);
        let leather = 10;
        assert!(rate(CarClass::Luxury, leather) > rate(CarClass::Economy, leather));
    }

    #[test]
    fn real_workload_respects_bounds() {
        let log = generate_real_workload(&RealWorkloadConfig::default());
        assert_eq!(log.len(), 185);
        let stats = log.stats();
        assert!(stats.min_query_len >= 4, "min {}", stats.min_query_len);
        assert!(stats.max_query_len <= 6);
    }

    #[test]
    fn sampling_new_cars() {
        let d = generate_cars(&CarsConfig {
            num_cars: 200,
            seed: 5,
        });
        let picked = sample_new_cars(&d, 100, 9);
        assert_eq!(picked.len(), 100);
        let again = sample_new_cars(&d, 100, 9);
        assert_eq!(picked[0], again[0]); // deterministic
    }
}
