//! # soc-workload
//!
//! Workload generators reproducing (or substituting for) the evaluation
//! inputs of the ICDE 2008 paper (§VII):
//!
//! - [`cars`] — a synthetic used-car inventory (32 correlated Boolean
//!   attributes, 15,211 cars by default) standing in for the paper's
//!   Yahoo! Autos crawl, plus a "real-like" 185-query workload whose
//!   queries all specify more than 3 attributes (the property behind
//!   Fig 7's zero at m = 3);
//! - [`synthetic`] — the paper's synthetic workload: query lengths 1–5
//!   distributed 20/30/30/10/10;
//! - [`numeric`] — a digital-camera catalog with range queries;
//! - [`text`] — classified-ad texts and keyword queries over a Zipf
//!   vocabulary.
//!
//! All generators are deterministic given their seed.
//!
//! ```
//! use soc_workload::{generate_real_workload, RealWorkloadConfig};
//!
//! let log = generate_real_workload(&RealWorkloadConfig::default());
//! assert_eq!(log.len(), 185);             // the paper's real workload size
//! assert!(log.stats().min_query_len > 3); // hence Fig 7's zero at m = 3
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cars;
pub mod numeric;
pub mod synthetic;
pub mod text;

pub use cars::{
    generate_cars, generate_real_workload, sample_new_cars, CarClass, CarsConfig, CarsDataset,
    RealWorkloadConfig, CAR_ATTRIBUTES,
};
pub use synthetic::{generate_synthetic_workload, split_log, SyntheticConfig};
