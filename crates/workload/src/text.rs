//! Text workload generator: classified-ad texts and keyword queries over
//! a Zipf-distributed vocabulary (for the §II.B / §V text variant).

use soc_rng::StdRng;

/// Vocabulary of classified-ad terms, ordered roughly by popularity.
pub const AD_VOCABULARY: [&str; 48] = [
    "apartment",
    "bedroom",
    "bathroom",
    "parking",
    "kitchen",
    "spacious",
    "renovated",
    "downtown",
    "balcony",
    "pool",
    "garden",
    "garage",
    "furnished",
    "laundry",
    "dishwasher",
    "pets",
    "gym",
    "elevator",
    "heating",
    "cooling",
    "hardwood",
    "carpet",
    "station",
    "bus",
    "school",
    "quiet",
    "sunny",
    "view",
    "storage",
    "utilities",
    "electricity",
    "water",
    "internet",
    "cable",
    "security",
    "doorman",
    "terrace",
    "fireplace",
    "studio",
    "loft",
    "penthouse",
    "basement",
    "yard",
    "patio",
    "deck",
    "sauna",
    "jacuzzi",
    "concierge",
];

/// Configuration of the classified-ads generator.
#[derive(Clone, Debug)]
pub struct AdsConfig {
    /// Number of ad documents in the corpus.
    pub num_ads: usize,
    /// Number of keyword queries.
    pub num_queries: usize,
    /// Terms per ad (min, max).
    pub ad_terms: (usize, usize),
    /// Terms per query (min, max).
    pub query_terms: (usize, usize),
    /// Zipf exponent over the vocabulary.
    pub skew: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AdsConfig {
    fn default() -> Self {
        Self {
            num_ads: 400,
            num_queries: 300,
            ad_terms: (8, 18),
            query_terms: (1, 3),
            skew: 0.8,
            seed: 0xAD5,
        }
    }
}

/// Generated text workload.
pub struct AdsDataset {
    /// Ad texts (space-joined term bags).
    pub ads: Vec<String>,
    /// Keyword queries (space-joined).
    pub queries: Vec<String>,
}

fn zipf_weights(n: usize, skew: f64) -> (Vec<f64>, f64) {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(skew)).collect();
    let total = weights.iter().sum();
    (weights, total)
}

fn sample_terms(rng: &mut StdRng, weights: &[f64], total: f64, count: usize) -> Vec<&'static str> {
    let mut out: Vec<&'static str> = Vec::with_capacity(count);
    let mut guard = 0;
    while out.len() < count && guard < 10_000 {
        guard += 1;
        let x: f64 = rng.random::<f64>() * total;
        let mut acc = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            if x < acc {
                if !out.contains(&AD_VOCABULARY[i]) {
                    out.push(AD_VOCABULARY[i]);
                }
                break;
            }
        }
    }
    out
}

/// Generates the ads corpus and the keyword query log.
pub fn generate_ads(config: &AdsConfig) -> AdsDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let (weights, total) = zipf_weights(AD_VOCABULARY.len(), config.skew);
    let ads = (0..config.num_ads)
        .map(|_| {
            let n = rng.random_range(config.ad_terms.0..=config.ad_terms.1);
            sample_terms(&mut rng, &weights, total, n).join(" ")
        })
        .collect();
    let queries = (0..config.num_queries)
        .map(|_| {
            let n = rng.random_range(config.query_terms.0..=config.query_terms.1);
            sample_terms(&mut rng, &weights, total, n).join(" ")
        })
        .collect();
    AdsDataset { ads, queries }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let d = generate_ads(&AdsConfig::default());
        assert_eq!(d.ads.len(), 400);
        assert_eq!(d.queries.len(), 300);
        for ad in &d.ads {
            let n = ad.split_whitespace().count();
            assert!((8..=18).contains(&n), "{n}");
        }
        for q in &d.queries {
            let n = q.split_whitespace().count();
            assert!((1..=3).contains(&n));
        }
    }

    #[test]
    fn popular_terms_dominate() {
        let d = generate_ads(&AdsConfig::default());
        let count = |term: &str| {
            d.queries
                .iter()
                .filter(|q| q.split_whitespace().any(|t| t == term))
                .count()
        };
        // First vocabulary entry is the most popular by construction.
        assert!(count("apartment") > count("concierge"));
    }

    #[test]
    fn deterministic() {
        let a = generate_ads(&AdsConfig::default());
        let b = generate_ads(&AdsConfig::default());
        assert_eq!(a.ads, b.ads);
        assert_eq!(a.queries, b.queries);
    }
}
