//! Numeric workload generator: a digital-camera catalog with range
//! queries (the §II.B motivating example — "users browsing a database for
//! digital cameras may specify desired ranges on price, weight,
//! resolution, etc.").

use soc_data::numeric::{NumTuple, Range, RangeQuery};
use soc_rng::StdRng;

/// The numeric attributes of the camera catalog.
pub const CAMERA_ATTRIBUTES: [&str; 5] = ["price", "megapixels", "zoom", "weight", "screen"];

/// Plausible value range for each attribute: (low, high).
const VALUE_RANGES: [(f64, f64); 5] = [
    (100.0, 2000.0), // price $
    (6.0, 40.0),     // megapixels
    (1.0, 30.0),     // optical zoom ×
    (100.0, 900.0),  // weight g
    (2.0, 4.0),      // screen inches
];

/// Configuration of the camera workload generator.
#[derive(Clone, Debug)]
pub struct CameraConfig {
    /// Number of range queries.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CameraConfig {
    fn default() -> Self {
        Self {
            num_queries: 300,
            seed: 0xCA3A,
        }
    }
}

/// Samples a random camera.
pub fn random_camera(seed: u64) -> NumTuple {
    let mut rng = StdRng::seed_from_u64(seed);
    NumTuple {
        values: VALUE_RANGES
            .iter()
            .map(|&(lo, hi)| rng.random_range(lo..hi))
            .collect(),
    }
}

/// Generates range queries: each constrains 1–3 attributes with an
/// interval centered near a plausible value (buyers ask "price ≤ 500",
/// "zoom ≥ 10" style windows).
pub fn generate_camera_queries(config: &CameraConfig) -> Vec<RangeQuery> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let m = CAMERA_ATTRIBUTES.len();
    (0..config.num_queries)
        .map(|_| {
            let constrained = rng.random_range(1..=3.min(m));
            let mut conditions: Vec<Option<Range>> = vec![None; m];
            let mut placed = 0;
            while placed < constrained {
                let a = rng.random_range(0..m);
                if conditions[a].is_some() {
                    continue;
                }
                let (lo, hi) = VALUE_RANGES[a];
                let span = hi - lo;
                let center = rng.random_range(lo..hi);
                let width = rng.random_range(0.2..0.8) * span;
                let q_lo = (center - width / 2.0).max(lo);
                let q_hi = (center + width / 2.0).min(hi);
                conditions[a] = Some(Range::new(q_lo, q_hi));
                placed += 1;
            }
            RangeQuery { conditions }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queries_have_one_to_three_conditions() {
        let qs = generate_camera_queries(&CameraConfig::default());
        assert_eq!(qs.len(), 300);
        for q in &qs {
            let n = q.conditions.iter().flatten().count();
            assert!((1..=3).contains(&n));
            for r in q.conditions.iter().flatten() {
                assert!(r.lo <= r.hi);
            }
        }
    }

    #[test]
    fn camera_values_in_range() {
        let c = random_camera(4);
        assert_eq!(c.values.len(), 5);
        for (v, (lo, hi)) in c.values.iter().zip(VALUE_RANGES) {
            assert!(*v >= lo && *v <= hi);
        }
    }

    #[test]
    fn deterministic() {
        let a = generate_camera_queries(&CameraConfig::default());
        let b = generate_camera_queries(&CameraConfig::default());
        assert_eq!(a, b);
    }
}
