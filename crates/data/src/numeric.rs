//! Numeric data with range queries, and the reduction to SOC-CB-QL (§V).
//!
//! A numeric tuple has a real value per attribute; a range query constrains
//! a subset of attributes with inclusive intervals. A compressed tuple
//! publishes `m` attribute values; a range query retrieves it iff every
//! constrained attribute is **published and within range** (an ad that
//! hides its price does not appear in price-filtered searches).
//!
//! Reduction (§V): the paper converts each query to a Boolean row with
//! `b_i = 1` iff the query's `i`-th range contains the tuple's `i`-th
//! value, and converts `t` to all-1s. Taken literally, a query with an
//! out-of-range condition would be *weakened* (its unmeetable condition
//! vanishes) instead of being unsatisfiable, which overcounts. We implement
//! the exact version — queries with any out-of-range condition are dropped
//! entirely — and keep the literal transformation available for comparison
//! as [`reduce_numeric_literal`].

use std::sync::Arc;

use crate::{AttrSet, Query, QueryLog, Schema, Tuple};

/// A numeric tuple: one value per attribute.
#[derive(Clone, Debug, PartialEq)]
pub struct NumTuple {
    /// `values[a]` is the value of numeric attribute `a`.
    pub values: Vec<f64>,
}

/// An inclusive numeric interval `[lo, hi]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Range {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Range {
    /// Creates `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi` or either bound is NaN.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "range bounds must not be NaN");
        assert!(lo <= hi, "range lower bound exceeds upper bound");
        Self { lo, hi }
    }

    /// Whether `v` lies within the interval.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// A range query: per-attribute optional intervals.
#[derive(Clone, Debug, PartialEq)]
pub struct RangeQuery {
    /// `conditions[a] = Some(range)` constrains attribute `a`.
    pub conditions: Vec<Option<Range>>,
}

impl RangeQuery {
    /// Attributes this query constrains.
    pub fn constrained(&self) -> AttrSet {
        AttrSet::from_indices(
            self.conditions.len(),
            self.conditions
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|_| i)),
        )
    }

    /// Does the query retrieve the compression of `t` publishing exactly
    /// the attributes in `published`?
    pub fn matches(&self, t: &NumTuple, published: &AttrSet) -> bool {
        self.conditions.iter().enumerate().all(|(a, c)| match c {
            None => true,
            Some(r) => published.contains(a) && r.contains(t.values[a]),
        })
    }

    /// True if every range condition contains `t`'s value — the query can
    /// retrieve `t` when the right attributes are published.
    pub fn compatible_with(&self, t: &NumTuple) -> bool {
        self.conditions
            .iter()
            .enumerate()
            .all(|(a, c)| c.is_none_or(|r| r.contains(t.values[a])))
    }
}

/// The Boolean SOC-CB-QL instance produced by the numeric reductions.
pub struct NumericReduction {
    /// Boolean query log over the numeric attribute positions.
    pub log: QueryLog,
    /// The all-ones Boolean stand-in for the numeric tuple.
    pub tuple: Tuple,
}

fn all_ones_tuple(m: usize) -> Tuple {
    Tuple::new(AttrSet::full(m))
}

/// Exact reduction: drops queries with any out-of-range condition, keeps
/// the constrained-attribute set of the rest. The Boolean objective equals
/// the numeric objective for every publication set.
pub fn reduce_numeric(queries: &[RangeQuery], t: &NumTuple) -> NumericReduction {
    let m = t.values.len();
    let schema = Arc::new(Schema::anonymous(m));
    let bool_queries: Vec<Query> = queries
        .iter()
        .filter(|q| {
            assert_eq!(q.conditions.len(), m, "query width mismatch");
            q.compatible_with(t)
        })
        .map(|q| Query::new(q.constrained()))
        .collect();
    NumericReduction {
        log: QueryLog::new(schema, bool_queries),
        tuple: all_ones_tuple(m),
    }
}

/// The paper's literal transformation (§V): every query is kept and each
/// condition becomes bit `1` iff its range contains `t`'s value. Queries
/// with out-of-range conditions are thereby weakened rather than dropped;
/// see the module docs. Retained for fidelity comparisons and tests.
pub fn reduce_numeric_literal(queries: &[RangeQuery], t: &NumTuple) -> NumericReduction {
    let m = t.values.len();
    let schema = Arc::new(Schema::anonymous(m));
    let bool_queries: Vec<Query> = queries
        .iter()
        .map(|q| {
            assert_eq!(q.conditions.len(), m, "query width mismatch");
            Query::new(AttrSet::from_indices(
                m,
                q.conditions
                    .iter()
                    .enumerate()
                    .filter_map(|(i, c)| match c {
                        Some(r) if r.contains(t.values[i]) => Some(i),
                        _ => None,
                    }),
            ))
        })
        .collect();
    NumericReduction {
        log: QueryLog::new(schema, bool_queries),
        tuple: all_ones_tuple(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> NumTuple {
        NumTuple {
            values: vec![450.0, 12.0, 300.0], // price, megapixels, weight
        }
    }

    fn queries() -> Vec<RangeQuery> {
        vec![
            // price<=500 & mp>=10: compatible.
            RangeQuery {
                conditions: vec![
                    Some(Range::new(0.0, 500.0)),
                    Some(Range::new(10.0, 100.0)),
                    None,
                ],
            },
            // price<=400: t is out of range -> never satisfiable.
            RangeQuery {
                conditions: vec![Some(Range::new(0.0, 400.0)), None, None],
            },
            // weight<=350: compatible.
            RangeQuery {
                conditions: vec![None, None, Some(Range::new(0.0, 350.0))],
            },
        ]
    }

    #[test]
    fn range_contains() {
        let r = Range::new(1.0, 2.0);
        assert!(r.contains(1.0) && r.contains(2.0) && r.contains(1.5));
        assert!(!r.contains(0.999) && !r.contains(2.001));
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn inverted_range_panics() {
        let _ = Range::new(2.0, 1.0);
    }

    #[test]
    fn matching_needs_publication() {
        let t = camera();
        let q = &queries()[0];
        assert!(q.matches(&t, &AttrSet::full(3)));
        assert!(!q.matches(&t, &AttrSet::from_indices(3, [0]))); // mp hidden
        assert!(q.matches(&t, &AttrSet::from_indices(3, [0, 1])));
    }

    #[test]
    fn exact_reduction_preserves_objective() {
        let t = camera();
        let qs = queries();
        let red = reduce_numeric(&qs, &t);
        assert_eq!(red.log.len(), 2); // out-of-range query dropped
        for published in [
            AttrSet::empty(3),
            AttrSet::from_indices(3, [0]),
            AttrSet::from_indices(3, [0, 1]),
            AttrSet::from_indices(3, [2]),
            AttrSet::full(3),
        ] {
            let direct = qs.iter().filter(|q| q.matches(&t, &published)).count();
            let reduced = red.log.satisfied_count(&Tuple::new(published.clone()));
            assert_eq!(direct, reduced, "published = {published}");
        }
    }

    #[test]
    fn literal_reduction_overcounts_incompatible_queries() {
        let t = camera();
        let qs = queries();
        let red = reduce_numeric_literal(&qs, &t);
        assert_eq!(red.log.len(), 3); // nothing dropped
                                      // The weakened out-of-range query becomes the empty query, which
                                      // is satisfied by anything — the overcount the module docs warn of.
        let none = Tuple::new(AttrSet::empty(3));
        assert_eq!(red.log.satisfied_count(&none), 1);
        let direct = qs
            .iter()
            .filter(|q| q.matches(&t, &AttrSet::empty(3)))
            .count();
        assert_eq!(direct, 0);
    }
}
