//! Categorical data and its reduction to the Boolean problem (§II.B, §V).
//!
//! A categorical attribute takes one of several values from a multi-valued
//! domain. A seller's tuple has a value for every attribute; *retaining* an
//! attribute publishes its value. A query condition `a = v` is satisfied by
//! a compressed tuple iff attribute `a` is retained **and** the tuple's
//! value equals `v`.
//!
//! The reduction (§V): queries with any condition conflicting with the new
//! tuple's values can never be satisfied and are dropped; each remaining
//! query reduces to the set of attributes it constrains, and the new tuple
//! reduces to the all-ones Boolean tuple. The result is an exact instance
//! of SOC-CB-QL.

use std::sync::Arc;

use crate::{AttrSet, Query, QueryLog, Schema, Tuple};

/// Schema for categorical data: each attribute has a named domain.
#[derive(Clone, Debug)]
pub struct CatSchema {
    attrs: Vec<CatAttr>,
}

/// One categorical attribute: a name and its value domain.
#[derive(Clone, Debug)]
pub struct CatAttr {
    /// Attribute name (e.g. `"Make"`).
    pub name: String,
    /// The value domain (e.g. `["Honda", "Toyota", "Ford"]`).
    pub domain: Vec<String>,
}

impl CatSchema {
    /// Builds a schema from `(name, domain)` pairs.
    pub fn new<I, S, D, V>(attrs: I) -> Self
    where
        I: IntoIterator<Item = (S, D)>,
        S: Into<String>,
        D: IntoIterator<Item = V>,
        V: Into<String>,
    {
        Self {
            attrs: attrs
                .into_iter()
                .map(|(name, domain)| CatAttr {
                    name: name.into(),
                    domain: domain.into_iter().map(Into::into).collect(),
                })
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// The attribute descriptors.
    pub fn attrs(&self) -> &[CatAttr] {
        &self.attrs
    }

    /// Index of the value `v` in attribute `a`'s domain.
    pub fn value_index(&self, a: usize, v: &str) -> Option<u32> {
        self.attrs[a]
            .domain
            .iter()
            .position(|x| x == v)
            .map(|i| u32::try_from(i).expect("domain index exceeds u32::MAX"))
    }
}

/// A categorical tuple: one domain-value index per attribute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatTuple {
    /// `values[a]` indexes into attribute `a`'s domain.
    pub values: Vec<u32>,
}

/// A categorical conjunctive query: `conditions[a] = Some(v)` requires
/// attribute `a` to be published with value `v`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CatQuery {
    /// Per-attribute equality conditions; `None` means unconstrained.
    pub conditions: Vec<Option<u32>>,
}

impl CatQuery {
    /// Attributes this query constrains, as an [`AttrSet`].
    pub fn constrained(&self) -> AttrSet {
        AttrSet::from_indices(
            self.conditions.len(),
            self.conditions
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.map(|_| i)),
        )
    }

    /// Does the query retrieve the compression of `t` that publishes
    /// exactly the attributes in `published`?
    pub fn matches(&self, t: &CatTuple, published: &AttrSet) -> bool {
        self.conditions.iter().enumerate().all(|(a, c)| match c {
            None => true,
            Some(v) => published.contains(a) && t.values[a] == *v,
        })
    }

    /// True if every condition is consistent with `t`'s values — i.e. the
    /// query could retrieve `t` if the right attributes are published.
    pub fn compatible_with(&self, t: &CatTuple) -> bool {
        self.conditions
            .iter()
            .enumerate()
            .all(|(a, c)| c.is_none_or(|v| t.values[a] == v))
    }
}

/// The Boolean SOC-CB-QL instance produced by [`reduce_categorical`].
pub struct CategoricalReduction {
    /// Boolean query log over the categorical attribute positions.
    pub log: QueryLog,
    /// The all-ones Boolean stand-in for the categorical tuple.
    pub tuple: Tuple,
}

/// Reduces a categorical instance `(queries, t)` to an exact Boolean
/// SOC-CB-QL instance. Retaining Boolean attribute `a` in the reduced
/// instance corresponds to publishing categorical attribute `a`.
pub fn reduce_categorical(
    schema: &CatSchema,
    queries: &[CatQuery],
    t: &CatTuple,
) -> CategoricalReduction {
    assert_eq!(t.values.len(), schema.len(), "tuple width mismatch");
    let m = schema.len();
    let bool_schema = Arc::new(Schema::new(schema.attrs.iter().map(|a| a.name.clone())));
    let bool_queries: Vec<Query> = queries
        .iter()
        .filter(|q| {
            assert_eq!(q.conditions.len(), m, "query width mismatch");
            q.compatible_with(t)
        })
        .map(|q| Query::new(q.constrained()))
        .collect();
    CategoricalReduction {
        log: QueryLog::new(bool_schema, bool_queries),
        tuple: Tuple::new(AttrSet::full(m)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> CatSchema {
        CatSchema::new([
            ("make", vec!["honda", "toyota"]),
            ("color", vec!["red", "blue", "black"]),
            ("trans", vec!["auto", "manual"]),
        ])
    }

    #[test]
    fn value_lookup() {
        let s = schema();
        assert_eq!(s.value_index(1, "blue"), Some(1));
        assert_eq!(s.value_index(1, "green"), None);
    }

    #[test]
    fn matching_requires_publication_and_equality() {
        let t = CatTuple {
            values: vec![0, 1, 0], // honda, blue, auto
        };
        let q = CatQuery {
            conditions: vec![Some(0), Some(1), None], // make=honda, color=blue
        };
        let all = AttrSet::full(3);
        assert!(q.matches(&t, &all));
        // Unpublished color: condition fails.
        let only_make = AttrSet::from_indices(3, [0]);
        assert!(!q.matches(&t, &only_make));
        // Wrong value never matches even when published.
        let q2 = CatQuery {
            conditions: vec![Some(1), None, None], // make=toyota
        };
        assert!(!q2.matches(&t, &all));
        assert!(!q2.compatible_with(&t));
    }

    #[test]
    fn reduction_preserves_satisfaction() {
        let s = schema();
        let t = CatTuple {
            values: vec![0, 1, 0],
        };
        let queries = vec![
            CatQuery {
                conditions: vec![Some(0), None, None],
            }, // compatible
            CatQuery {
                conditions: vec![Some(1), None, Some(0)],
            }, // make conflicts -> dropped
            CatQuery {
                conditions: vec![None, Some(1), Some(0)],
            }, // compatible
        ];
        let red = reduce_categorical(&s, &queries, &t);
        assert_eq!(red.log.len(), 2);
        assert_eq!(red.tuple.count(), 3);

        // Cross-check: for every publication set, the Boolean objective
        // equals the direct categorical count.
        for published in [
            AttrSet::from_indices(3, [0]),
            AttrSet::from_indices(3, [1, 2]),
            AttrSet::full(3),
            AttrSet::empty(3),
        ] {
            let direct = queries.iter().filter(|q| q.matches(&t, &published)).count();
            let reduced = red.log.satisfied_count(&Tuple::new(published.clone()));
            assert_eq!(direct, reduced, "published = {published}");
        }
    }

    #[test]
    #[should_panic(expected = "tuple width mismatch")]
    fn width_mismatch_panics() {
        let s = schema();
        let t = CatTuple { values: vec![0, 1] };
        let _ = reduce_categorical(&s, &[], &t);
    }
}
