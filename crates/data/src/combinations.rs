//! Lexicographic k-combination enumeration.
//!
//! Used by the brute-force SOC algorithm (all `C(|t|, m)` compressions) and
//! by the MFI algorithm's level-`M−m` subset scan.

/// Iterator over all `k`-element subsets of `{0, .., n-1}` in lexicographic
/// order. Each item is a sorted index vector.
///
/// Yields exactly one empty vector when `k == 0`, and nothing when `k > n`.
pub struct Combinations {
    n: usize,
    k: usize,
    indices: Vec<usize>,
    done: bool,
}

impl Combinations {
    /// Creates the iterator over `C(n, k)` combinations.
    pub fn new(n: usize, k: usize) -> Self {
        Self {
            n,
            k,
            indices: (0..k).collect(),
            done: k > n,
        }
    }

    /// The number of combinations `C(n, k)`, saturating at `u128::MAX`.
    pub fn count_total(n: usize, k: usize) -> u128 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut acc: u128 = 1;
        for i in 0..k {
            acc = acc.saturating_mul((n - i) as u128) / (i as u128 + 1);
        }
        acc
    }
}

impl Iterator for Combinations {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Vec<usize>> {
        if self.done {
            return None;
        }
        let current = self.indices.clone();
        // Advance to the next combination in lexicographic order.
        let mut i = self.k;
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            if self.indices[i] != i + self.n - self.k {
                self.indices[i] += 1;
                for j in i + 1..self.k {
                    self.indices[j] = self.indices[j - 1] + 1;
                }
                break;
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_enumeration() {
        let all: Vec<Vec<usize>> = Combinations::new(4, 2).collect();
        assert_eq!(
            all,
            vec![
                vec![0, 1],
                vec![0, 2],
                vec![0, 3],
                vec![1, 2],
                vec![1, 3],
                vec![2, 3],
            ]
        );
    }

    #[test]
    fn edge_cases() {
        assert_eq!(Combinations::new(3, 0).count(), 1);
        assert_eq!(Combinations::new(3, 3).count(), 1);
        assert_eq!(Combinations::new(3, 4).count(), 0);
        assert_eq!(Combinations::new(0, 0).count(), 1);
    }

    #[test]
    fn counts_match_formula() {
        for n in 0..10 {
            for k in 0..=n + 1 {
                assert_eq!(
                    Combinations::new(n, k).count() as u128,
                    Combinations::count_total(n, k),
                    "n={n} k={k}"
                );
            }
        }
        assert_eq!(Combinations::count_total(32, 5), 201_376);
    }

    #[test]
    fn combinations_are_sorted_and_unique() {
        let all: Vec<Vec<usize>> = Combinations::new(6, 3).collect();
        for c in &all {
            assert!(c.windows(2).all(|w| w[0] < w[1]));
        }
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len());
    }
}
