//! Attribute-universe projection: the mapping between a full schema and
//! the compact universe of one tuple's attributes.
//!
//! Solving SOC-CB-QL for a tuple `t` never needs the full `M`-attribute
//! universe: a compression retains a subset of `t`, and a query can only
//! be satisfied if it is contained in `t`. Restricting the log to those
//! queries *and* renumbering attributes down to `t`'s 1-positions (cf.
//! Tatti, *Safe Projections of Binary Data Sets*) shrinks every
//! downstream structure at once — ILP models, MFI transaction width, and
//! the brute-force search space. [`AttrMapping`] is the renumbering;
//! [`crate::QueryLog::project_onto`] applies it to a log.

use crate::{AttrSet, Tuple};

/// A bijection between the subsets of one tuple's attributes in the
/// original `M`-attribute universe and all subsets of a compact
/// `|t|`-attribute universe.
///
/// Compact index `c` corresponds to the original index `kept[c]`, with
/// `kept` ascending — so the mapping preserves attribute order, and
/// deterministic tie-breaking (e.g. in the greedies) agrees between the
/// full and projected instances wherever frequencies agree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrMapping {
    original_universe: usize,
    /// Compact index → original index, strictly ascending.
    kept: Vec<usize>,
    /// Original index → compact index, `u32::MAX` for dropped attributes.
    compact_of: Vec<u32>,
}

impl AttrMapping {
    /// The mapping that keeps exactly the attributes of `t` (in order).
    pub fn for_tuple(t: &Tuple) -> Self {
        Self::keeping(t.universe(), t.attrs().iter())
    }

    /// The mapping that keeps the given ascending original indices.
    ///
    /// # Panics
    /// Panics if an index repeats, decreases, or exceeds the universe.
    pub fn keeping<I: IntoIterator<Item = usize>>(original_universe: usize, indices: I) -> Self {
        let mut kept = Vec::new();
        let mut compact_of = vec![u32::MAX; original_universe];
        for i in indices {
            assert!(i < original_universe, "kept index {i} out of universe");
            assert!(
                kept.last().is_none_or(|&prev| prev < i),
                "kept indices must be strictly ascending"
            );
            compact_of[i] = u32::try_from(kept.len()).expect("projection exceeds u32::MAX attrs");
            kept.push(i);
        }
        Self {
            original_universe,
            kept,
            compact_of,
        }
    }

    /// Width `M` of the original universe.
    #[inline]
    pub fn original_universe(&self) -> usize {
        self.original_universe
    }

    /// Width of the compact universe (the number of kept attributes).
    #[inline]
    pub fn compact_universe(&self) -> usize {
        self.kept.len()
    }

    /// The original index of compact attribute `c`.
    ///
    /// # Panics
    /// Panics if `c` is out of the compact universe.
    #[inline]
    pub fn original_index(&self, c: usize) -> usize {
        self.kept[c]
    }

    /// The compact index of original attribute `i`, or `None` if dropped.
    #[inline]
    pub fn compact_index(&self, i: usize) -> Option<usize> {
        match self.compact_of[i] {
            u32::MAX => None,
            c => Some(c as usize),
        }
    }

    /// Maps a set over the original universe down to the compact one.
    ///
    /// # Panics
    /// Panics if the set contains a dropped attribute (projection is only
    /// defined on subsets of the kept attributes) or its universe differs
    /// from the original.
    pub fn to_compact(&self, original: &AttrSet) -> AttrSet {
        assert_eq!(
            original.universe(),
            self.original_universe,
            "set universe does not match the mapping's original universe"
        );
        AttrSet::from_indices(
            self.kept.len(),
            original.iter().map(|i| {
                self.compact_index(i)
                    .expect("set contains an attribute the projection dropped")
            }),
        )
    }

    /// Maps a set over the compact universe back to the original one.
    ///
    /// # Panics
    /// Panics if the set's universe differs from the compact universe.
    pub fn to_original(&self, compact: &AttrSet) -> AttrSet {
        assert_eq!(
            compact.universe(),
            self.kept.len(),
            "set universe does not match the mapping's compact universe"
        );
        AttrSet::from_indices(self.original_universe, compact.iter().map(|c| self.kept[c]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_over_tuple_attrs() {
        let t = Tuple::from_bitstring("1011010").unwrap(); // {0, 2, 3, 5}
        let map = AttrMapping::for_tuple(&t);
        assert_eq!(map.original_universe(), 7);
        assert_eq!(map.compact_universe(), 4);
        assert_eq!(map.original_index(2), 3);
        assert_eq!(map.compact_index(5), Some(3));
        assert_eq!(map.compact_index(1), None);

        let sub = AttrSet::from_indices(7, [0, 3, 5]);
        let compact = map.to_compact(&sub);
        assert_eq!(compact.to_indices(), vec![0, 2, 3]);
        assert_eq!(map.to_original(&compact), sub);
    }

    #[test]
    fn roundtrip_is_identity_on_all_subsets() {
        let t = Tuple::from_bitstring("0110101").unwrap();
        let map = AttrMapping::for_tuple(&t);
        let kept: Vec<usize> = t.attrs().to_indices();
        for mask in 0u32..(1 << kept.len()) {
            let original = AttrSet::from_indices(
                7,
                kept.iter()
                    .enumerate()
                    .filter(|&(c, _)| mask >> c & 1 == 1)
                    .map(|(_, &i)| i),
            );
            let compact = map.to_compact(&original);
            assert_eq!(compact.count(), original.count());
            assert_eq!(map.to_original(&compact), original);
        }
    }

    #[test]
    fn empty_tuple_maps_to_zero_universe() {
        let t = Tuple::from_bitstring("0000").unwrap();
        let map = AttrMapping::for_tuple(&t);
        assert_eq!(map.compact_universe(), 0);
        let empty = map.to_compact(&AttrSet::empty(4));
        assert_eq!(empty.universe(), 0);
        assert_eq!(map.to_original(&empty), AttrSet::empty(4));
    }

    #[test]
    #[should_panic(expected = "projection dropped")]
    fn dropped_attribute_panics() {
        let t = Tuple::from_bitstring("1100").unwrap();
        let map = AttrMapping::for_tuple(&t);
        let _ = map.to_compact(&AttrSet::from_indices(4, [0, 3]));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_kept_panics() {
        let _ = AttrMapping::keeping(5, [2, 1]);
    }
}
