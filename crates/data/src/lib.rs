//! # soc-data
//!
//! Boolean data substrate for the `standout` workspace — the data model of
//! *"Standing Out in a Crowd: Selecting Attributes for Maximum Visibility"*
//! (ICDE 2008), §II.
//!
//! The crate provides:
//!
//! - [`AttrSet`] — fixed-universe bitsets over attribute positions;
//! - [`Schema`] / [`AttrId`] — named attribute universes;
//! - [`Tuple`] — Boolean tuples with domination and compression;
//! - [`Query`] / [`QueryLog`] — conjunctive Boolean queries and workloads,
//!   including the complement-support counting the MFI algorithm relies on;
//! - [`LogIndex`] — the inverted bitmap index the counting kernels run on;
//! - [`AttrMapping`] — the compact-universe renumbering behind
//!   [`QueryLog::project_onto`], the per-tuple instance reduction;
//! - [`Database`] — tuple collections with retrieval and domination counts,
//!   and the SOC-CB-D → SOC-CB-QL reduction;
//! - [`Combinations`] — lexicographic k-subset enumeration;
//! - [`categorical`] and [`numeric`] — the non-Boolean data variants of
//!   §II.B and their exact reductions to the Boolean problem (§V);
//! - [`io`] — a line-oriented text format for logs and databases.
//!
//! ```
//! use soc_data::{QueryLog, Tuple};
//!
//! // The paper's Fig 1: how many queries retrieve the compressed car?
//! let log = QueryLog::from_bitstrings(&[
//!     "110000", "100100", "010100", "000101", "001010",
//! ]).unwrap();
//! let compressed = Tuple::from_bitstring("110100").unwrap();
//! assert_eq!(log.satisfied_count(&compressed), 3);
//!
//! // Weighted deduplication preserves every objective value.
//! let dedup = log.deduplicate();
//! assert_eq!(dedup.satisfied_count(&compressed), 3);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod bitset;
pub mod categorical;
mod combinations;
mod database;
mod index;
pub mod io;
pub mod numeric;
mod projection;
mod query;
mod querylog;
mod schema;
mod tuple;

pub use bitset::{AttrSet, Ones};
pub use combinations::Combinations;
pub use database::Database;
pub use index::LogIndex;
pub use projection::AttrMapping;
pub use query::{Query, QueryId};
pub use querylog::{QueryLog, QueryLogStats};
pub use schema::{AttrId, Schema};
pub use tuple::{Tuple, TupleId};
