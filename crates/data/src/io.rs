//! Plain-text serialization of query logs and databases.
//!
//! The format is line-oriented and human-editable (no serialization
//! crates are available in the offline dependency set, and none are
//! needed for data this simple):
//!
//! ```text
//! # comment lines and blank lines are ignored
//! attrs = ac, four_door, turbo, power_doors, auto_trans, power_brakes
//! 110000
//! 3x 100100        # a weight prefix "Nx" repeats a query N times
//! 010100
//! ```
//!
//! - An optional `attrs = ...` header names the schema; without it the
//!   schema is anonymous and the width is taken from the first row.
//! - Rows are bit-vectors in the paper's Fig 1 layout (position 0
//!   leftmost).
//! - A `Nx ` prefix sets the row's weight (query multiplicity). Weights
//!   on database rows are rejected.

use std::fmt;
use std::sync::Arc;

use crate::{Database, Query, QueryLog, Schema, Tuple};

/// Parse error with 1-based line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error occurred on (1-based), 0 for document-level errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "parse error: {}", self.message)
        } else {
            write!(f, "parse error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

struct ParsedRows {
    schema: Arc<Schema>,
    rows: Vec<(crate::AttrSet, usize)>, // (bits, weight)
}

fn parse_rows(text: &str, allow_weights: bool) -> Result<ParsedRows, ParseError> {
    let mut schema: Option<Arc<Schema>> = None;
    let mut rows: Vec<(crate::AttrSet, usize)> = Vec::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("attrs") {
            let rest = rest.trim_start();
            let Some(names) = rest.strip_prefix('=') else {
                return Err(err(line_no, "expected '=' after 'attrs'"));
            };
            if schema.is_some() {
                return Err(err(line_no, "duplicate 'attrs' header"));
            }
            if !rows.is_empty() {
                return Err(err(line_no, "'attrs' header must precede data rows"));
            }
            let names: Vec<String> = names
                .split(',')
                .map(|n| n.trim().to_string())
                .filter(|n| !n.is_empty())
                .collect();
            if names.is_empty() {
                return Err(err(line_no, "empty attribute list"));
            }
            schema = Some(Arc::new(Schema::new(names)));
            continue;
        }

        // Optional "Nx " weight prefix.
        let (weight, bits_str) = match line.split_once(char::is_whitespace) {
            Some((first, rest)) if first.ends_with('x') => {
                let n: usize = first[..first.len() - 1]
                    .parse()
                    .map_err(|_| err(line_no, format!("bad weight prefix {first:?}")))?;
                if n == 0 {
                    return Err(err(line_no, "weight must be positive"));
                }
                (n, rest.trim())
            }
            _ => (1, line),
        };
        if weight > 1 && !allow_weights {
            return Err(err(line_no, "weights are not allowed on database rows"));
        }

        let bits = crate::AttrSet::from_bitstring(bits_str)
            .ok_or_else(|| err(line_no, format!("invalid bit-vector {bits_str:?}")))?;
        if let Some(s) = &schema {
            if bits.universe() != s.len() {
                return Err(err(
                    line_no,
                    format!(
                        "row width {} does not match schema width {}",
                        bits.universe(),
                        s.len()
                    ),
                ));
            }
        } else if let Some((first, _)) = rows.first() {
            if bits.universe() != first.universe() {
                return Err(err(
                    line_no,
                    format!(
                        "row width {} does not match earlier width {}",
                        bits.universe(),
                        first.universe()
                    ),
                ));
            }
        }
        rows.push((bits, weight));
    }

    let schema = schema.unwrap_or_else(|| {
        let width = rows.first().map_or(0, |(b, _)| b.universe());
        Arc::new(Schema::anonymous(width))
    });
    Ok(ParsedRows { schema, rows })
}

/// Parses a query log from the text format.
pub fn parse_query_log(text: &str) -> Result<QueryLog, ParseError> {
    let parsed = parse_rows(text, true)?;
    let (queries, weights): (Vec<Query>, Vec<usize>) = parsed
        .rows
        .into_iter()
        .map(|(bits, w)| (Query::new(bits), w))
        .unzip();
    Ok(QueryLog::new_weighted(parsed.schema, queries, weights))
}

/// Parses a database from the text format (weights rejected).
pub fn parse_database(text: &str) -> Result<Database, ParseError> {
    let parsed = parse_rows(text, false)?;
    let tuples = parsed
        .rows
        .into_iter()
        .map(|(bits, _)| Tuple::new(bits))
        .collect();
    Ok(Database::new(parsed.schema, tuples))
}

fn schema_header(schema: &Schema) -> Option<String> {
    // Anonymous schemas (attr0, attr1, …) are written headerless.
    let anonymous = schema
        .iter()
        .all(|(id, name)| name == format!("attr{}", id.index()));
    if anonymous {
        None
    } else {
        Some(format!("attrs = {}", schema.names().join(", ")))
    }
}

/// Renders a query log in the text format (weights written as `Nx`).
pub fn write_query_log(log: &QueryLog) -> String {
    let mut out = String::new();
    if let Some(h) = schema_header(log.schema()) {
        out.push_str(&h);
        out.push('\n');
    }
    for (id, q) in log.iter() {
        let w = log.weight(id);
        if w > 1 {
            out.push_str(&format!("{w}x "));
        }
        out.push_str(&q.attrs().to_bitstring());
        out.push('\n');
    }
    out
}

/// Renders a database in the text format.
pub fn write_database(db: &Database) -> String {
    let mut out = String::new();
    if let Some(h) = schema_header(db.schema()) {
        out.push_str(&h);
        out.push('\n');
    }
    for t in db.tuples() {
        out.push_str(&t.attrs().to_bitstring());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# Fig 1 query log
attrs = ac, four_door, turbo, power_doors, auto_trans, power_brakes
110000
100100   # trailing comment
2x 010100
000101
001010
";

    #[test]
    fn parse_named_weighted_log() {
        let log = parse_query_log(SAMPLE).unwrap();
        assert_eq!(log.len(), 5);
        assert_eq!(log.total_weight(), 6);
        assert_eq!(log.schema().attr("turbo"), Some(crate::AttrId(2)));
        assert_eq!(log.weight(crate::QueryId(2)), 2);
    }

    #[test]
    fn roundtrip_log() {
        let log = parse_query_log(SAMPLE).unwrap();
        let text = write_query_log(&log);
        let again = parse_query_log(&text).unwrap();
        assert_eq!(again.len(), log.len());
        assert_eq!(again.total_weight(), log.total_weight());
        for (a, b) in log.queries().iter().zip(again.queries()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn anonymous_log() {
        let log = parse_query_log("10\n01\n").unwrap();
        assert_eq!(log.num_attrs(), 2);
        assert_eq!(log.schema().name(crate::AttrId(0)), "attr0");
        // Headerless output for anonymous schemas.
        assert_eq!(write_query_log(&log), "10\n01\n");
    }

    #[test]
    fn parse_database_rejects_weights() {
        assert!(parse_database("110\n2x 011\n").is_err());
        let db = parse_database("110\n011\n").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_query_log("110\nxyz\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("invalid bit-vector"));

        let e = parse_query_log("110\n1100\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("width"));

        let e = parse_query_log("0x 110\n").unwrap_err();
        assert!(e.message.contains("positive"));

        let e = parse_query_log("110\nattrs = a,b,c\n").unwrap_err();
        assert!(e.message.contains("precede"));
    }

    #[test]
    fn database_roundtrip() {
        let db = parse_database("attrs = a, b, c\n110\n011\n").unwrap();
        let text = write_database(&db);
        let again = parse_database(&text).unwrap();
        assert_eq!(again.len(), 2);
        assert_eq!(again.schema().attr("c"), Some(crate::AttrId(2)));
    }

    #[test]
    fn empty_input() {
        let log = parse_query_log("# nothing here\n").unwrap();
        assert!(log.is_empty());
    }
}
