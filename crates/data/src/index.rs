//! The inverted bitmap index over a query log.
//!
//! Every SOC algorithm bottoms out in three counting kernels on
//! [`QueryLog`](crate::QueryLog) — `satisfied_count`, `cooccurrence_count`
//! and `complement_support` — and each naive implementation rescans all
//! `S` queries with a per-query subset test. [`LogIndex`] is the standard
//! vertical-layout trick from the frequent-itemset literature (TID lists
//! à la Eclat/MAFIA): one bitmap over *query ids* per attribute, so that
//!
//! - `cooccurrence_count(A)` is the weighted popcount of the AND of A's
//!   attribute bitmaps,
//! - `complement_support(I)` is the weighted popcount of the AND of the
//!   *complemented* bitmaps of I (queries touching no attribute of I),
//! - `satisfied_count(t)` is `complement_support(¬t)`, because a
//!   conjunctive query retrieves `t` iff it touches no attribute missing
//!   from `t` (`q ⊆ t ⇔ q ∩ ¬t = ∅`).
//!
//! Each kernel thus costs `O(k · S/64)` word operations for `k` operand
//! attributes instead of `O(S · M/64)`, with an early exit once the
//! accumulator empties. With unit weights the final count is a popcount;
//! with general weights the set bits are iterated and their weights
//! summed.
//!
//! The index is immutable and derived purely from the log's queries and
//! weights; `QueryLog` builds it lazily and caches it in a
//! `OnceLock<Arc<LogIndex>>` (see DESIGN.md for the invalidation rules).

use soc_obs::{counter, histogram};

use crate::{AttrSet, QueryLog, Tuple};

/// An inverted bitmap index: for each attribute, the set of query ids
/// whose query specifies that attribute, as a packed `u64` bitmap.
#[derive(Debug)]
pub struct LogIndex {
    /// `S`, the number of queries indexed.
    num_queries: usize,
    /// `ceil(S / 64)`: words per attribute row.
    row_words: usize,
    /// `M × row_words` words, row-major: row `a` covers
    /// `attr_bits[a*row_words .. (a+1)*row_words]`.
    attr_bits: Vec<u64>,
    /// Per-query weights, in query-id order.
    weights: Vec<usize>,
    /// True when every weight is 1: counting reduces to popcount.
    unit_weights: bool,
    /// Sum of all weights.
    total_weight: usize,
    /// Weighted per-attribute frequency (the weight of each row).
    attr_weight: Vec<usize>,
}

impl LogIndex {
    /// Builds the index in one pass over the log: `O(S · M/64)` time,
    /// `M · S/64` words of space.
    pub fn build(log: &QueryLog) -> LogIndex {
        let _span = soc_obs::span("index_build");
        let build_start = soc_obs::metrics_then_now();
        let num_queries = log.len();
        let num_attrs = log.num_attrs();
        let row_words = num_queries.div_ceil(64);
        let mut attr_bits = vec![0u64; num_attrs * row_words];
        let mut attr_weight = vec![0usize; num_attrs];
        let mut weights = Vec::with_capacity(num_queries);
        let mut total_weight = 0usize;
        let mut unit_weights = true;
        for (id, q) in log.iter() {
            let i = id.0 as usize;
            let w = log.weight(id);
            weights.push(w);
            total_weight += w;
            unit_weights &= w == 1;
            for a in q.attrs().iter() {
                attr_bits[a * row_words + i / 64] |= 1u64 << (i % 64);
                attr_weight[a] += w;
            }
        }
        if let Some(t0) = build_start {
            histogram!("index.build_us").record(soc_obs::clock::elapsed_us(t0));
        }
        LogIndex {
            num_queries,
            row_words,
            attr_bits,
            weights,
            unit_weights,
            total_weight,
            attr_weight,
        }
    }

    /// `S`, the number of queries indexed.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Sum of all query weights.
    #[inline]
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// Weighted per-attribute frequencies (`freq[j]` = total weight of
    /// queries specifying attribute `j`), read straight off the index.
    pub fn attribute_frequencies(&self) -> Vec<usize> {
        self.attr_weight.clone()
    }

    /// The bitmap row of one attribute.
    #[inline]
    fn row(&self, attr: usize) -> &[u64] {
        &self.attr_bits[attr * self.row_words..(attr + 1) * self.row_words]
    }

    /// Total weight of the queries whose bits are set in `acc`.
    fn weigh(&self, acc: &[u64]) -> usize {
        if self.unit_weights {
            return acc.iter().map(|w| w.count_ones() as usize).sum();
        }
        let mut sum = 0usize;
        for (wi, &word) in acc.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let i = wi * 64 + bits.trailing_zeros() as usize;
                sum += self.weights[i];
                bits &= bits - 1;
            }
        }
        sum
    }

    /// An accumulator with a set bit for every query id (tail bits of the
    /// last word clear, so complemented rows never leak phantom ids).
    fn full_acc(&self) -> Vec<u64> {
        let mut acc = vec![!0u64; self.row_words];
        let tail = self.num_queries % 64;
        if tail != 0 {
            acc[self.row_words - 1] = (1u64 << tail) - 1;
        }
        acc
    }

    /// Total weight of queries specifying *every* attribute in `attrs`:
    /// the AND of the operand rows, weighed. An empty `attrs` co-occurs
    /// in every query.
    pub fn cooccurrence_count(&self, attrs: &AttrSet) -> usize {
        counter!("index.kernel_calls").inc();
        let mut ones = attrs.iter();
        let Some(first) = ones.next() else {
            return self.total_weight;
        };
        let mut acc = self.row(first).to_vec();
        for a in ones {
            let mut any = 0u64;
            for (acc_w, &row_w) in acc.iter_mut().zip(self.row(a)) {
                *acc_w &= row_w;
                any |= *acc_w;
            }
            if any == 0 {
                return 0;
            }
        }
        self.weigh(&acc)
    }

    /// Total weight of queries disjoint from `items` — the support of
    /// `items` in the complemented log `~Q`: the AND of the *complemented*
    /// operand rows, weighed.
    pub fn complement_support(&self, items: &AttrSet) -> usize {
        counter!("index.kernel_calls").inc();
        let mut acc = self.full_acc();
        self.and_not_rows(&mut acc, items.iter());
        self.weigh(&acc)
    }

    /// The SOC objective: total weight of queries `q ⊆ t`, computed as
    /// `complement_support(¬t)` without materializing `¬t`.
    pub fn satisfied_count(&self, t: &Tuple) -> usize {
        counter!("index.kernel_calls").inc();
        let mut acc = self.full_acc();
        let absent = t.attrs().complement();
        self.and_not_rows(&mut acc, absent.iter());
        self.weigh(&acc)
    }

    /// Total weight of queries sharing at least one attribute with `t`
    /// (disjunctive semantics): everything except the queries disjoint
    /// from `t`. Note the empty query matches *nothing* disjunctively.
    pub fn satisfied_count_disjunctive(&self, t: &Tuple) -> usize {
        self.total_weight - self.complement_support(t.attrs())
    }

    /// Clears from `acc` every query touching any attribute in `ops`,
    /// with an early exit once the accumulator empties.
    fn and_not_rows(&self, acc: &mut [u64], ops: impl Iterator<Item = usize>) {
        for a in ops {
            let mut any = 0u64;
            for (acc_w, &row_w) in acc.iter_mut().zip(self.row(a)) {
                *acc_w &= !row_w;
                any |= *acc_w;
            }
            if any == 0 {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryLog;

    fn fig1_log() -> QueryLog {
        QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap()
    }

    #[test]
    fn builds_expected_rows() {
        let log = fig1_log();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.num_queries(), 5);
        assert_eq!(idx.total_weight(), 5);
        // Attribute 0 appears in q1 and q2 → bits 0 and 1.
        assert_eq!(idx.row(0), &[0b00011]);
        // Attribute 3 appears in q2, q3, q4 → bits 1, 2, 3.
        assert_eq!(idx.row(3), &[0b01110]);
        assert_eq!(idx.attribute_frequencies(), vec![2, 2, 1, 3, 1, 1]);
    }

    #[test]
    fn kernels_match_paper_example() {
        let log = fig1_log();
        let idx = LogIndex::build(&log);
        let t = Tuple::from_bitstring("110100").unwrap();
        assert_eq!(idx.satisfied_count(&t), 3);
        assert_eq!(idx.cooccurrence_count(&AttrSet::from_indices(6, [0, 3])), 1);
        assert_eq!(idx.complement_support(&AttrSet::from_indices(6, [2, 4])), 4);
        assert_eq!(idx.cooccurrence_count(&AttrSet::empty(6)), 5);
        assert_eq!(idx.complement_support(&AttrSet::empty(6)), 5);
    }

    #[test]
    fn weighted_counting_uses_weights() {
        let log = fig1_log().deduplicate(); // still unit weights
        let idx = LogIndex::build(&log);
        assert!(idx.unit_weights);

        let weighted = QueryLog::new_weighted(
            std::sync::Arc::clone(fig1_log().schema()),
            fig1_log().queries().to_vec(),
            vec![1, 2, 3, 4, 5],
        );
        let idx = LogIndex::build(&weighted);
        assert!(!idx.unit_weights);
        assert_eq!(idx.total_weight(), 15);
        let t = Tuple::from_bitstring("110100").unwrap();
        // q1 (w=1), q2 (w=2), q3 (w=3) are satisfied.
        assert_eq!(idx.satisfied_count(&t), 6);
        assert_eq!(idx.attribute_frequencies(), vec![3, 4, 5, 9, 5, 4]);
    }

    #[test]
    fn empty_log_counts_are_zero() {
        let log = QueryLog::from_bitstrings(&[]).unwrap();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.total_weight(), 0);
        assert_eq!(idx.satisfied_count(&Tuple::from_bitstring("").unwrap()), 0);
        assert_eq!(idx.complement_support(&AttrSet::empty(0)), 0);
        assert_eq!(idx.cooccurrence_count(&AttrSet::empty(0)), 0);
    }

    #[test]
    fn more_than_64_queries_span_words() {
        let universe = 7;
        let sets: Vec<AttrSet> = (0..150)
            .map(|i| AttrSet::from_indices(universe, [i % universe, (i / 2) % universe]))
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        assert_eq!(idx.row_words, 3);
        for a in 0..universe {
            let probe = AttrSet::from_indices(universe, [a]);
            assert_eq!(
                idx.cooccurrence_count(&probe),
                log.cooccurrence_count_scan(&probe)
            );
            assert_eq!(
                idx.complement_support(&probe),
                log.complement_support_scan(&probe)
            );
        }
    }
}
