//! The hybrid inverted index over a query log.
//!
//! Every SOC algorithm bottoms out in three counting kernels on
//! [`QueryLog`](crate::QueryLog) — `satisfied_count`, `cooccurrence_count`
//! and `complement_support` — and each naive implementation rescans all
//! `S` queries with a per-query subset test. [`LogIndex`] is the standard
//! vertical-layout trick from the frequent-itemset literature (TID lists
//! à la Eclat/MAFIA) with roaring-style **hybrid containers**: each
//! attribute's query-id set is stored either
//!
//! - **dense** — a packed `u64` bitmap over query ids, or
//! - **sparse** — a sorted query-id list, stored word-compressed as
//!   `(word index, 64-bit mask)` entries so kernels move a whole word of
//!   ids per entry instead of one bit per id,
//!
//! chosen at build time by a density threshold (see [`LogIndex::is_sparse`]):
//! a row goes sparse only when it has fewer set bits than its bitmap has
//! words, which guarantees a sparse row holds fewer entries than the
//! dense row it replaces — no sparse kernel path can ever touch more
//! words than the dense pass it avoids. Kernels specialize per container
//! pair:
//!
//! - dense ∧ dense runs cache-blocked, 4-word-unrolled AND+popcount loops
//!   the autovectorizer can lift — independent accumulators per lane, the
//!   accumulator blocked so a k-operand AND streams each block once;
//! - sparse ∧ dense masks each sparse entry against the addressed bitmap
//!   word;
//! - sparse ∧ sparse intersects entry lists by merge on the word index,
//!   galloping when the lengths are lopsided;
//! - complement kernels never materialize a complemented sparse row.
//!   `complement_support` unions the few complemented rows (sparse rows by
//!   entry-cursor OR, dense rows by a streamed block OR) and weighs the
//!   *inverted* block, so a complemented sparse row costs `O(entries)`
//!   instead of an `O(S/64)` AND-NOT sweep. `satisfied_count(t)` — whose
//!   complement set `¬t` contains almost *every* sparse row on a skewed
//!   log — goes the other way: the build precomputes the union of all
//!   sparse rows plus two subtraction tables (per-attribute **solo**
//!   entry spans for bits covered by exactly one sparse row, and a
//!   **shared**-bit CSR listing each multiply-covered id with its
//!   covering attributes), so a call subtracts the `O(|t|)` rows present
//!   in `t` from the precomputed union instead of OR-ing the `O(M)` rows
//!   absent from it. Phantom tail bits cannot arise: inverted blocks are
//!   masked with the tail word pattern before weighing.
//!
//! With unit weights counting is a popcount; with general weights a
//! *blocked weighted popcount* uses per-64-query weight prefix sums so
//! that full accumulator words cost `O(1)` and only fragmented words pay
//! a per-bit weight walk.
//!
//! The semantics are unchanged from the flat-bitmap index:
//!
//! - `cooccurrence_count(A)` is the weighted count of the intersection of
//!   A's rows,
//! - `complement_support(I)` is the weighted count of queries touching no
//!   attribute of I,
//! - `satisfied_count(t)` is `complement_support(¬t)`, because a
//!   conjunctive query retrieves `t` iff it touches no attribute missing
//!   from `t` (`q ⊆ t ⇔ q ∩ ¬t = ∅`).
//!
//! Operand rows are processed rarest-first and every kernel early-exits
//! once the accumulator empties, exactly as the flat index did; the
//! differential suite (`crates/data/tests/index_diff.rs`) proves all
//! kernels bit-identical to the retained `*_scan` baselines across
//! density and weight sweeps.
//!
//! The index is immutable and derived purely from the log's queries and
//! weights; `QueryLog` builds it lazily and caches it in a
//! `OnceLock<Arc<LogIndex>>` (see DESIGN.md for the invalidation rules).

use soc_obs::{counter, histogram};

use crate::{AttrSet, QueryLog, Tuple};

/// Words per cache block of the dense kernels: 256 words = 2 KiB per
/// operand row slice, so a handful of operand blocks plus the accumulator
/// block stay resident in L1 while a k-operand AND streams each block
/// exactly once.
const BLOCK_WORDS: usize = 256;

/// Density divisor of the container choice: an attribute row is stored
/// sparse iff `card * SPARSE_DIVISOR < S` — strictly below one query in
/// 64, i.e. fewer set bits than the row's bitmap has words. This is
/// deliberately far below roaring's 1/16 memory break-even: the dense
/// kernels stream 64 ids per word-op, so the sparse path only pays off
/// once a row's *entry count* undercuts the dense row's *word count*,
/// which the 1/64 rule guarantees (`entries ≤ card < S/64 ≤ row_words`).
/// Logs shorter than `SPARSE_DIVISOR` queries never go sparse (except
/// empty rows).
const SPARSE_DIVISOR: usize = 64;

/// Length ratio beyond which sparse ∧ sparse intersection gallops
/// (binary-probes the longer entry list) instead of merging linearly.
const GALLOP_RATIO: usize = 8;

/// Per-attribute container: where this attribute's query-id set lives.
#[derive(Clone, Copy, Debug)]
enum Container {
    /// `dense_words[offset .. offset + row_words]` is the packed bitmap.
    Dense { offset: usize },
    /// `sparse_words[start .. end]` / `sparse_masks[start .. end]` hold
    /// the word-compressed sorted id list: ascending distinct word
    /// indices, each paired with the 64-bit mask of its ids.
    Sparse { start: usize, end: usize },
}

/// A hybrid inverted index: for each attribute, the set of query ids
/// whose query specifies that attribute, stored dense (packed `u64`
/// bitmap) or sparse (word-compressed sorted id list) by density.
#[derive(Debug)]
pub struct LogIndex {
    /// `S`, the number of queries indexed.
    num_queries: usize,
    /// `ceil(S / 64)`: words per dense attribute row.
    row_words: usize,
    /// Per-attribute container descriptors.
    containers: Vec<Container>,
    /// Concatenated dense rows (see [`Container::Dense`]).
    dense_words: Vec<u64>,
    /// Word indices of the concatenated sparse rows (see
    /// [`Container::Sparse`]), ascending within each row.
    sparse_words: Vec<u32>,
    /// Masks parallel to `sparse_words`.
    sparse_masks: Vec<u64>,
    /// Per-query weights, in query-id order.
    weights: Vec<usize>,
    /// Prefix sums of per-64-query weight totals (`row_words + 1` long):
    /// the weight of every query in word `w` is `psum[w+1] - psum[w]`.
    /// Empty when `unit_weights` (popcount suffices).
    word_weight_psum: Vec<usize>,
    /// True when every weight is 1: counting reduces to popcount.
    unit_weights: bool,
    /// Sum of all weights.
    total_weight: usize,
    /// Weighted per-attribute frequency (the weight of each row).
    attr_weight: Vec<usize>,
    /// Unweighted per-attribute cardinality (set bits per row) — the
    /// rarest-first operand ordering key.
    attr_card: Vec<usize>,
    /// Bitmap union of every sparse row (empty when no row is sparse).
    /// `satisfied_count` starts its `¬t` union from this precomputed row
    /// and *subtracts* `t`'s few sparse rows instead of OR-ing `¬t`'s
    /// many per call.
    sparse_union: Vec<u64>,
    /// Per-attribute span into `solo_words`/`solo_masks`: the bits of
    /// that sparse row covered by *no other* sparse row, so they leave
    /// the sparse union exactly when the row's attribute is in `t`.
    /// Dense attributes carry an empty span.
    solo_spans: Vec<(usize, usize)>,
    /// Word indices of the solo entries, ascending within each span.
    solo_words: Vec<u32>,
    /// Masks parallel to `solo_words`.
    solo_masks: Vec<u64>,
    /// Query ids covered by ≥ 2 sparse rows, ascending — such a bit
    /// leaves the sparse union exactly when *every* covering row's
    /// attribute is in `t`. Collectively tiny: sparse rows hold under
    /// `S/64` ids each, so pairwise overlaps are rare.
    shared_ids: Vec<u32>,
    /// Prefix offsets into `shared_cover_rows`, `shared_ids.len() + 1`
    /// long.
    shared_cover_off: Vec<u32>,
    /// Concatenated covering-attribute lists of the shared ids.
    shared_cover_rows: Vec<u32>,
}

impl LogIndex {
    /// Builds the hybrid index: two passes over the log (`O(S · M/64)`
    /// time), with each attribute row stored dense or sparse by the
    /// density rule of [`LogIndex::is_sparse`].
    pub fn build(log: &QueryLog) -> LogIndex {
        Self::build_inner(log, false)
    }

    /// Builds a dense-only index (every row a packed bitmap — the
    /// pre-hybrid flat layout). Kept as the comparison arm of the
    /// `figures index` experiment and the CI kernel smoke; kernels on a
    /// dense-only build answer identically to the hybrid build.
    pub fn build_dense(log: &QueryLog) -> LogIndex {
        Self::build_inner(log, true)
    }

    fn build_inner(log: &QueryLog, force_dense: bool) -> LogIndex {
        let _span = soc_obs::span("index_build");
        let build_start = soc_obs::metrics_then_now();
        let num_queries = log.len();
        let num_attrs = log.num_attrs();
        let row_words = num_queries.div_ceil(64);

        // Pass 1: per-attribute cardinalities and weights decide each
        // container before any row storage is allocated.
        let mut attr_card = vec![0usize; num_attrs];
        let mut attr_weight = vec![0usize; num_attrs];
        let mut weights = Vec::with_capacity(num_queries);
        let mut total_weight = 0usize;
        let mut unit_weights = true;
        for (id, q) in log.iter() {
            let w = log.weight(id);
            weights.push(w);
            total_weight += w;
            unit_weights &= w == 1;
            for a in q.attrs().iter() {
                attr_card[a] += 1;
                attr_weight[a] += w;
            }
        }

        let sparse = |card: usize| !force_dense && card * SPARSE_DIVISOR < num_queries;
        let mut dense_offset = vec![usize::MAX; num_attrs];
        let mut dense_len = 0usize;
        for (a, &card) in attr_card.iter().enumerate() {
            if !sparse(card) {
                dense_offset[a] = dense_len;
                dense_len += row_words;
            }
        }

        // Pass 2: fill the containers. Query ids arrive in increasing
        // order, so each sparse row's word-compressed entries come out
        // sorted (and coalesced per word) with no extra sort.
        let mut dense_words = vec![0u64; dense_len];
        let mut sparse_rows: Vec<Vec<(u32, u64)>> = vec![Vec::new(); num_attrs];
        for (id, q) in log.iter() {
            let i = id.0 as usize;
            let (w, mask) = ((i / 64) as u32, 1u64 << (i % 64));
            for a in q.attrs().iter() {
                let offset = dense_offset[a];
                if offset != usize::MAX {
                    dense_words[offset + w as usize] |= mask;
                } else if let Some(last) = sparse_rows[a].last_mut().filter(|e| e.0 == w) {
                    last.1 |= mask;
                } else {
                    sparse_rows[a].push((w, mask));
                }
            }
        }
        let mut containers = Vec::with_capacity(num_attrs);
        let mut sparse_words = Vec::new();
        let mut sparse_masks = Vec::new();
        for (a, row) in sparse_rows.into_iter().enumerate() {
            if dense_offset[a] != usize::MAX {
                containers.push(Container::Dense {
                    offset: dense_offset[a],
                });
            } else {
                let start = sparse_words.len();
                sparse_words.extend(row.iter().map(|&(w, _)| w));
                sparse_masks.extend(row.iter().map(|&(_, m)| m));
                containers.push(Container::Sparse {
                    start,
                    end: sparse_words.len(),
                });
            }
        }

        // Precompute the satisfied_count subtraction tables:
        // satisfied_count's `¬t` spans nearly all sparse rows, so it
        // pays to start from their total union and remove `t`'s few
        // sparse rows rather than re-union `¬t`'s many. All per-bit
        // analysis happens here, once: each sparse row's *solo* bits
        // (covered by that row alone — removable whenever the row is in
        // `t`) and the rare *shared* ids (≥ 2 sparse covers — removable
        // when every cover is in `t`, checked per call against `t`'s
        // attribute set in O(covers)).
        let mut sparse_union = Vec::new();
        let mut solo_spans = vec![(0usize, 0usize); num_attrs];
        let mut solo_words = Vec::new();
        let mut solo_masks = Vec::new();
        let mut shared_ids = Vec::new();
        let mut shared_cover_off = Vec::new();
        let mut shared_cover_rows = Vec::new();
        if !sparse_words.is_empty() {
            sparse_union = vec![0u64; row_words];
            let mut once = vec![0u64; row_words];
            let mut twice = vec![0u64; row_words];
            for (&w, &m) in sparse_words.iter().zip(&sparse_masks) {
                sparse_union[w as usize] |= m;
                twice[w as usize] |= once[w as usize] & m;
                once[w as usize] |= m;
            }
            for (a, c) in containers.iter().enumerate() {
                let &Container::Sparse { start, end } = c else {
                    continue;
                };
                let span_start = solo_words.len();
                for (&w, &m) in sparse_words[start..end]
                    .iter()
                    .zip(&sparse_masks[start..end])
                {
                    let solo = m & !twice[w as usize];
                    if solo != 0 {
                        solo_words.push(w);
                        solo_masks.push(solo);
                    }
                }
                solo_spans[a] = (span_start, solo_words.len());
            }
            // Shared ids (the set bits of `twice`) with their covers,
            // gathered by one pass over all sparse entries.
            let mut pairs: Vec<(u32, u32)> = Vec::new();
            for (a, c) in containers.iter().enumerate() {
                let &Container::Sparse { start, end } = c else {
                    continue;
                };
                for (&w, &m) in sparse_words[start..end]
                    .iter()
                    .zip(&sparse_masks[start..end])
                {
                    let mut bits = m & twice[w as usize];
                    while bits != 0 {
                        pairs.push((w * 64 + bits.trailing_zeros(), a as u32));
                        bits &= bits - 1;
                    }
                }
            }
            pairs.sort_unstable();
            for (id, a) in pairs {
                if shared_ids.last() != Some(&id) {
                    shared_ids.push(id);
                    shared_cover_off.push(shared_cover_rows.len() as u32);
                }
                shared_cover_rows.push(a);
            }
            shared_cover_off.push(shared_cover_rows.len() as u32);
        }

        // Per-word weight prefix sums back the blocked weighted popcount;
        // with unit weights a popcount is exact and the table is skipped.
        let word_weight_psum = if unit_weights {
            Vec::new()
        } else {
            let mut psum = Vec::with_capacity(row_words + 1);
            psum.push(0usize);
            let mut acc = 0usize;
            for (i, &w) in weights.iter().enumerate() {
                acc += w;
                if i % 64 == 63 {
                    psum.push(acc);
                }
            }
            if !num_queries.is_multiple_of(64) {
                psum.push(acc);
            }
            psum
        };

        if let Some(t0) = build_start {
            histogram!("index.build_us").record(soc_obs::clock::elapsed_us(t0));
        }
        LogIndex {
            num_queries,
            row_words,
            containers,
            dense_words,
            sparse_words,
            sparse_masks,
            weights,
            word_weight_psum,
            unit_weights,
            total_weight,
            attr_weight,
            attr_card,
            sparse_union,
            solo_spans,
            solo_words,
            solo_masks,
            shared_ids,
            shared_cover_off,
            shared_cover_rows,
        }
    }

    /// `S`, the number of queries indexed.
    #[inline]
    pub fn num_queries(&self) -> usize {
        self.num_queries
    }

    /// Sum of all query weights.
    #[inline]
    pub fn total_weight(&self) -> usize {
        self.total_weight
    }

    /// Weighted per-attribute frequencies (`freq[j]` = total weight of
    /// queries specifying attribute `j`), read straight off the index
    /// with no copy.
    #[inline]
    pub fn attribute_frequencies(&self) -> &[usize] {
        &self.attr_weight
    }

    /// True if attribute `a`'s row is stored as a word-compressed sorted
    /// id list rather than a bitmap. Exposed for the container-mix
    /// reporting of the `figures index` experiment and the
    /// threshold-boundary tests.
    #[inline]
    pub fn is_sparse(&self, a: usize) -> bool {
        matches!(self.containers[a], Container::Sparse { .. })
    }

    /// Number of sparse-container attributes.
    pub fn sparse_rows(&self) -> usize {
        self.containers
            .iter()
            .filter(|c| matches!(c, Container::Sparse { .. }))
            .count()
    }

    /// Bytes of row storage (dense words, sparse entries, and the
    /// precomputed sparse-union row plus cover counts) — the memory the
    /// hybrid layout saves over a flat `M × S/64` bitmap.
    pub fn row_bytes(&self) -> usize {
        self.dense_words.len() * 8
            + self.sparse_words.len() * 4
            + self.sparse_masks.len() * 8
            + self.sparse_union.len() * 8
            + self.solo_words.len() * 4
            + self.solo_masks.len() * 8
            + (self.shared_ids.len() + self.shared_cover_off.len() + self.shared_cover_rows.len())
                * 4
    }

    /// The dense bitmap row of one attribute, if it is stored dense.
    #[inline]
    fn dense_row(&self, a: usize) -> Option<&[u64]> {
        match self.containers[a] {
            Container::Dense { offset } => Some(&self.dense_words[offset..offset + self.row_words]),
            Container::Sparse { .. } => None,
        }
    }

    /// The word-compressed entry list of one attribute — parallel
    /// `(word indices, masks)` slices — if it is stored sparse.
    #[inline]
    fn sparse_row(&self, a: usize) -> Option<(&[u32], &[u64])> {
        match self.containers[a] {
            Container::Dense { .. } => None,
            Container::Sparse { start, end } => Some((
                &self.sparse_words[start..end],
                &self.sparse_masks[start..end],
            )),
        }
    }

    /// All-ones mask of the live bits of word `wi` (the final word's tail
    /// bits past `S` are clear, so complemented accumulators never hold
    /// phantom query ids).
    #[inline]
    fn full_word(&self, wi: usize) -> u64 {
        let tail = self.num_queries % 64;
        if wi + 1 == self.row_words && tail != 0 {
            (1u64 << tail) - 1
        } else {
            !0u64
        }
    }

    /// An accumulator with a set bit for every query id.
    fn full_acc(&self) -> Vec<u64> {
        let mut acc = vec![!0u64; self.row_words];
        if self.row_words > 0 {
            acc[self.row_words - 1] = self.full_word(self.row_words - 1);
        }
        acc
    }

    /// Blocked weighted popcount of one accumulator word: a full word is
    /// answered from the weight prefix sums in `O(1)`, a fragmented word
    /// walks its set bits.
    #[inline]
    fn weigh_word(&self, wi: usize, word: u64) -> usize {
        debug_assert!(!self.unit_weights);
        if word == 0 {
            return 0;
        }
        if word == self.full_word(wi) {
            return self.word_weight_psum[wi + 1] - self.word_weight_psum[wi];
        }
        let mut sum = 0usize;
        let mut bits = word;
        while bits != 0 {
            let i = wi * 64 + bits.trailing_zeros() as usize;
            sum += self.weights[i];
            bits &= bits - 1;
        }
        sum
    }

    /// Total weight of the queries whose bits are set in `acc`, where
    /// `acc[0]` is word `word_base` of the id space.
    fn weigh_words(&self, word_base: usize, acc: &[u64]) -> usize {
        if self.unit_weights {
            return popcount_unrolled(acc);
        }
        acc.iter()
            .enumerate()
            .map(|(i, &w)| self.weigh_word(word_base + i, w))
            .sum()
    }

    /// Total weight of queries specifying *every* attribute in `attrs`:
    /// the intersection of the operand rows, weighed. An empty `attrs`
    /// co-occurs in every query.
    pub fn cooccurrence_count(&self, attrs: &AttrSet) -> usize {
        counter!("index.kernel_calls").inc();
        let mut ops: Vec<usize> = attrs.iter().collect();
        if ops.is_empty() {
            return self.total_weight;
        }
        // Rarest row first: the accumulator starts as small as possible
        // and every later operand can only shrink it. Sparse rows (by
        // the density rule strictly smaller than any dense row) sort to
        // the front, so "first operand sparse" ⇔ "any operand sparse".
        ops.sort_by_key(|&a| (self.attr_card[a], a));
        if self.attr_card[ops[0]] == 0 {
            return 0;
        }
        match self.containers[ops[0]] {
            Container::Sparse { .. } => self.cooccurrence_sparse(&ops),
            Container::Dense { .. } => self.cooccurrence_dense(&ops),
        }
    }

    /// Sparse-accumulator intersection: start from the rarest (sparse)
    /// row's entry list, filter through the middle operands — word-merge
    /// (galloping when lopsided) against sparse rows, one addressed
    /// bitmap word per entry against dense ones — and fuse the final
    /// operand into the weigh pass, so the dominant two-operand call
    /// allocates nothing at all. The working set never exceeds the
    /// rarest row's entry count, which the density rule bounds below the
    /// dense row's word count.
    fn cooccurrence_sparse(&self, ops: &[usize]) -> usize {
        let (w0, m0) = self.sparse_row(ops[0]).expect("rarest operand is sparse");
        if ops.len() == 1 {
            return self.weigh_entries(w0, m0);
        }
        // Middle operands (all but the last) filter into owned buffers.
        let mut owned: Option<(Vec<u32>, Vec<u64>)> = None;
        if ops.len() > 2 {
            let mut words: Vec<u32> = w0.to_vec();
            let mut masks: Vec<u64> = m0.to_vec();
            for &a in &ops[1..ops.len() - 1] {
                match self.containers[a] {
                    Container::Dense { offset } => {
                        let row = &self.dense_words[offset..offset + self.row_words];
                        let mut k = 0usize;
                        for i in 0..words.len() {
                            let m = masks[i] & row[words[i] as usize];
                            if m != 0 {
                                words[k] = words[i];
                                masks[k] = m;
                                k += 1;
                            }
                        }
                        words.truncate(k);
                        masks.truncate(k);
                    }
                    Container::Sparse { start, end } => {
                        intersect_entries(
                            &mut words,
                            &mut masks,
                            &self.sparse_words[start..end],
                            &self.sparse_masks[start..end],
                        );
                    }
                }
                if words.is_empty() {
                    return 0;
                }
            }
            owned = Some((words, masks));
        }
        let (cw, cm) = owned
            .as_ref()
            .map_or((w0, m0), |(w, m)| (w.as_slice(), m.as_slice()));
        // Final operand, fused with the weigh pass.
        match self.containers[*ops.last().expect("ops is non-empty")] {
            Container::Dense { offset } => {
                let row = &self.dense_words[offset..offset + self.row_words];
                cw.iter()
                    .zip(cm)
                    .map(|(&w, &m)| self.weigh_masked(w as usize, m & row[w as usize]))
                    .sum()
            }
            Container::Sparse { start, end } => {
                let (bw, bm) = (
                    &self.sparse_words[start..end],
                    &self.sparse_masks[start..end],
                );
                let mut sum = 0usize;
                let mut j = 0usize;
                for (i, &x) in cw.iter().enumerate() {
                    while j < bw.len() && bw[j] < x {
                        j += 1;
                    }
                    if j == bw.len() {
                        break;
                    }
                    if bw[j] == x {
                        sum += self.weigh_masked(x as usize, cm[i] & bm[j]);
                    }
                }
                sum
            }
        }
    }

    /// Weight of the ids in one `(word, mask)` entry: popcount under
    /// unit weights, the blocked weighted popcount otherwise.
    #[inline]
    fn weigh_masked(&self, wi: usize, mask: u64) -> usize {
        if self.unit_weights {
            mask.count_ones() as usize
        } else if mask == 0 {
            0
        } else {
            self.weigh_word(wi, mask)
        }
    }

    /// Weight of a whole word-compressed entry list.
    fn weigh_entries(&self, words: &[u32], masks: &[u64]) -> usize {
        if self.unit_weights {
            masks.iter().map(|m| m.count_ones() as usize).sum()
        } else {
            words
                .iter()
                .zip(masks)
                .map(|(&w, &m)| self.weigh_word(w as usize, m))
                .sum()
        }
    }

    /// Dense ∧ dense intersection, cache-blocked: for each block of the
    /// id space, AND every operand's block into a stack accumulator
    /// (4-word unrolled, early exit the moment the block empties) and
    /// count it — each block is streamed once per operand while hot.
    fn cooccurrence_dense(&self, ops: &[usize]) -> usize {
        let rows: Vec<&[u64]> = ops
            .iter()
            .map(|&a| self.dense_row(a).expect("dense path operand"))
            .collect();
        let mut block = [0u64; BLOCK_WORDS];
        let mut sum = 0usize;
        let mut start = 0usize;
        while start < self.row_words {
            let end = (start + BLOCK_WORDS).min(self.row_words);
            let width = end - start;
            let acc = &mut block[..width];
            acc.copy_from_slice(&rows[0][start..end]);
            let mut live = acc.iter().any(|&w| w != 0);
            for row in &rows[1..] {
                if !live {
                    break;
                }
                live = and_block(acc, &row[start..end]);
            }
            if live {
                sum += self.weigh_words(start, acc);
            }
            start = end;
        }
        sum
    }

    /// Total weight of queries disjoint from `items` — the support of
    /// `items` in the complemented log `~Q`.
    pub fn complement_support(&self, items: &AttrSet) -> usize {
        counter!("index.kernel_calls").inc();
        self.complement_weight(items.iter())
    }

    /// The SOC objective: total weight of queries `q ⊆ t`, computed as
    /// `complement_support(¬t)` without materializing `¬t`.
    ///
    /// With sparse rows present, `¬t` spans nearly *all* of them, so the
    /// sparse half of the union is answered by subtraction: start from
    /// the precomputed all-sparse union and clear only the bits whose
    /// every sparse cover lies inside `t` — read straight off the
    /// build-time solo/shared tables, `O(entries in t's sparse rows)`
    /// instead of `O(ids in ¬t's)`. The dense `¬t` rows then stream over
    /// the result block by block.
    pub fn satisfied_count(&self, t: &Tuple) -> usize {
        counter!("index.kernel_calls").inc();
        if self.sparse_union.is_empty() {
            return self.complement_weight(t.attrs().complement().iter());
        }
        let tset = t.attrs();
        let absent = tset.complement();
        let dense_not: Vec<&[u64]> = absent.iter().filter_map(|a| self.dense_row(a)).collect();

        // Removal lists, straight off the build-time tables: each `t`
        // sparse row contributes its solo entries verbatim, and the rare
        // shared ids join when every covering row is in `t` (an O(covers)
        // bitset test), coalesced into word-compressed entries.
        let mut rem: Vec<(&[u32], &[u64])> = Vec::new();
        for a in tset.iter() {
            let (s, e) = self.solo_spans[a];
            if s != e {
                rem.push((&self.solo_words[s..e], &self.solo_masks[s..e]));
            }
        }
        let mut shared_w: Vec<u32> = Vec::new();
        let mut shared_m: Vec<u64> = Vec::new();
        for (i, &id) in self.shared_ids.iter().enumerate() {
            let covers = &self.shared_cover_rows
                [self.shared_cover_off[i] as usize..self.shared_cover_off[i + 1] as usize];
            if covers.iter().all(|&a| tset.contains(a as usize)) {
                let (w, mask) = (id / 64, 1u64 << (id % 64));
                if shared_w.last() == Some(&w) {
                    *shared_m.last_mut().expect("parallel to shared_w") |= mask;
                } else {
                    shared_w.push(w);
                    shared_m.push(mask);
                }
            }
        }
        if !shared_w.is_empty() {
            rem.push((&shared_w, &shared_m));
        }

        // Blocked pass: sparse union minus removals, dense `¬t` rows
        // OR-ed over it, inverted and weighed in place. Only live ids
        // ever enter the union, so inverting against `full_word` cannot
        // leak phantom tail bits.
        let mut cursors = vec![0usize; rem.len()];
        let mut block = [0u64; BLOCK_WORDS];
        let mut sum = 0usize;
        let mut start = 0usize;
        while start < self.row_words {
            let end = (start + BLOCK_WORDS).min(self.row_words);
            let width = end - start;
            let b = &mut block[..width];
            b.copy_from_slice(&self.sparse_union[start..end]);
            for (cursor, (rw, rm)) in cursors.iter_mut().zip(&rem) {
                while *cursor < rw.len() && (rw[*cursor] as usize) < end {
                    b[rw[*cursor] as usize - start] &= !rm[*cursor];
                    *cursor += 1;
                }
            }
            for row in &dense_not {
                or_block(b, &row[start..end]);
            }
            for w in b.iter_mut() {
                *w = !*w;
            }
            if end == self.row_words {
                b[width - 1] &= self.full_word(end - 1);
            }
            sum += self.weigh_words(start, b);
            start = end;
        }
        sum
    }

    /// Total weight of queries touching *no* attribute in `ops`.
    ///
    /// With no sparse operand the classic pass runs: all-ones
    /// accumulator, AND-NOT each dense row (heaviest first, exiting the
    /// moment it empties), weigh what survives. The moment sparse
    /// operands appear the accumulator flips polarity: OR their
    /// word-compressed entries into a *zeroed* buffer — only live ids
    /// are ever set, so no phantom tail bits appear and the all-ones
    /// initialization pass disappears — then fold any dense rows into
    /// the union and weigh its complement in a single fused read-only
    /// pass.
    fn complement_weight(&self, ops: impl Iterator<Item = usize>) -> usize {
        let mut dense: Vec<usize> = Vec::new();
        let mut sparse: Vec<usize> = Vec::new();
        for a in ops {
            match self.containers[a] {
                Container::Dense { .. } => dense.push(a),
                Container::Sparse { .. } => sparse.push(a),
            }
        }
        if sparse.is_empty() {
            if dense.is_empty() {
                return self.total_weight;
            }
            let mut acc = self.full_acc();
            self.clear_rows(&mut acc, &mut dense);
            return self.weigh_words(0, &acc);
        }
        // Cache-blocked union-and-weigh: per block of the id space, OR
        // each sparse row's in-range entries (their sorted word order
        // makes one advancing cursor per row sufficient) and stream each
        // dense row over the block, then invert and weigh on the spot.
        // Nothing row-sized is ever allocated or written back: the block
        // stays L1-resident, the dense rows are only read, and only live
        // ids are ever set, so inverting against `full_word` cannot leak
        // phantom tail bits.
        let rows: Vec<&[u64]> = dense
            .iter()
            .map(|&a| self.dense_row(a).expect("partitioned as dense"))
            .collect();
        let lists: Vec<(&[u32], &[u64])> = sparse
            .iter()
            .map(|&a| self.sparse_row(a).expect("partitioned as sparse"))
            .collect();
        let mut cursors = vec![0usize; lists.len()];
        let mut block = [0u64; BLOCK_WORDS];
        let mut sum = 0usize;
        let mut start = 0usize;
        while start < self.row_words {
            let end = (start + BLOCK_WORDS).min(self.row_words);
            let width = end - start;
            let b = &mut block[..width];
            b.fill(0);
            for (cursor, &(words, masks)) in cursors.iter_mut().zip(&lists) {
                while *cursor < words.len() && (words[*cursor] as usize) < end {
                    b[words[*cursor] as usize - start] |= masks[*cursor];
                    *cursor += 1;
                }
            }
            for row in &rows {
                or_block(b, &row[start..end]);
            }
            for w in b.iter_mut() {
                *w = !*w;
            }
            if end == self.row_words {
                b[width - 1] &= self.full_word(end - 1);
            }
            sum += self.weigh_words(start, b);
            start = end;
        }
        sum
    }

    /// Total weight of queries sharing at least one attribute with `t`
    /// (disjunctive semantics): everything except the queries disjoint
    /// from `t`. Note the empty query matches *nothing* disjunctively.
    pub fn satisfied_count_disjunctive(&self, t: &Tuple) -> usize {
        self.total_weight - self.complement_support(t.attrs())
    }

    /// Clears from `acc` every query touching any attribute in `dense`
    /// (all of which must be dense rows): AND-NOT word-wise, heaviest
    /// row first so the accumulator empties as early as possible, and
    /// exit the moment it does.
    fn clear_rows(&self, acc: &mut [u64], dense: &mut [usize]) {
        dense.sort_by_key(|&a| (std::cmp::Reverse(self.attr_card[a]), a));
        for &a in dense.iter() {
            let row = self.dense_row(a).expect("partitioned as dense");
            let mut any = 0u64;
            for (acc_w, &row_w) in acc.iter_mut().zip(row) {
                *acc_w &= !row_w;
                any |= *acc_w;
            }
            if any == 0 {
                return;
            }
        }
    }
}

/// `acc |= row`: a plain two-stream OR the autovectorizer handles on
/// its own (no reduction to carry, unlike [`and_block`]).
#[inline]
fn or_block(acc: &mut [u64], row: &[u64]) {
    debug_assert_eq!(acc.len(), row.len());
    for (a, &r) in acc.iter_mut().zip(row) {
        *a |= r;
    }
}

/// `acc &= row`, 4-word unrolled with independent OR lanes so the
/// autovectorizer can lift both the ANDs and the liveness reduction.
/// Returns whether any accumulator word is still nonzero.
#[inline]
fn and_block(acc: &mut [u64], row: &[u64]) -> bool {
    debug_assert_eq!(acc.len(), row.len());
    let split = acc.len() - acc.len() % 4;
    let (acc4, acc_tail) = acc.split_at_mut(split);
    let (row4, row_tail) = row.split_at(split);
    let mut lanes = [0u64; 4];
    for (a, r) in acc4.chunks_exact_mut(4).zip(row4.chunks_exact(4)) {
        a[0] &= r[0];
        a[1] &= r[1];
        a[2] &= r[2];
        a[3] &= r[3];
        lanes[0] |= a[0];
        lanes[1] |= a[1];
        lanes[2] |= a[2];
        lanes[3] |= a[3];
    }
    let mut tail_any = 0u64;
    for (a, &r) in acc_tail.iter_mut().zip(row_tail) {
        *a &= r;
        tail_any |= *a;
    }
    (lanes[0] | lanes[1] | lanes[2] | lanes[3] | tail_any) != 0
}

/// Popcount of a word slice with 4 independent accumulators.
#[inline]
fn popcount_unrolled(words: &[u64]) -> usize {
    let mut lanes = [0usize; 4];
    for w in words.chunks_exact(4) {
        lanes[0] += w[0].count_ones() as usize;
        lanes[1] += w[1].count_ones() as usize;
        lanes[2] += w[2].count_ones() as usize;
        lanes[3] += w[3].count_ones() as usize;
    }
    let tail: usize = words
        .chunks_exact(4)
        .remainder()
        .iter()
        .map(|w| w.count_ones() as usize)
        .sum();
    lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail
}

/// In-place intersection of a word-compressed entry list with another:
/// entries survive when both rows share the word *and* their masks
/// overlap. Linear merge on the word index when the lengths are
/// comparable, galloping probes of the longer list when lopsided.
fn intersect_entries(words: &mut Vec<u32>, masks: &mut Vec<u64>, bw: &[u32], bm: &[u64]) {
    debug_assert_eq!(words.len(), masks.len());
    debug_assert_eq!(bw.len(), bm.len());
    let mut k = 0usize;
    if bw.len() / words.len().max(1) >= GALLOP_RATIO {
        // Gallop: for each surviving entry, exponentially bound a window
        // of the longer list's remaining suffix, then binary-search it —
        // O(Σ log gap) instead of a full linear merge.
        let mut base = 0usize;
        for i in 0..words.len() {
            let suffix = &bw[base..];
            if suffix.is_empty() {
                break;
            }
            let x = words[i];
            let mut bound = 1usize;
            while bound < suffix.len() && suffix[bound - 1] < x {
                bound *= 2;
            }
            match suffix[..bound.min(suffix.len())].binary_search(&x) {
                Ok(pos) => {
                    let m = masks[i] & bm[base + pos];
                    if m != 0 {
                        words[k] = x;
                        masks[k] = m;
                        k += 1;
                    }
                    base += pos + 1;
                }
                Err(pos) => base += pos,
            }
        }
    } else {
        let mut j = 0usize;
        for i in 0..words.len() {
            let x = words[i];
            while j < bw.len() && bw[j] < x {
                j += 1;
            }
            if j == bw.len() {
                break;
            }
            if bw[j] == x {
                let m = masks[i] & bm[j];
                if m != 0 {
                    words[k] = x;
                    masks[k] = m;
                    k += 1;
                }
            }
        }
    }
    words.truncate(k);
    masks.truncate(k);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryLog;

    fn fig1_log() -> QueryLog {
        QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap()
    }

    /// Materializes attribute `a`'s row as a bitmap regardless of its
    /// container, for layout assertions.
    fn row_bits(idx: &LogIndex, a: usize) -> Vec<u64> {
        if let Some(row) = idx.dense_row(a) {
            return row.to_vec();
        }
        let mut bits = vec![0u64; idx.row_words];
        let (words, masks) = idx.sparse_row(a).unwrap();
        for (&w, &m) in words.iter().zip(masks) {
            bits[w as usize] |= m;
        }
        bits
    }

    #[test]
    fn builds_expected_rows() {
        let log = fig1_log();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.num_queries(), 5);
        assert_eq!(idx.total_weight(), 5);
        // 5 queries < SPARSE_DIVISOR: every container stays dense.
        assert_eq!(idx.sparse_rows(), 0);
        // Attribute 0 appears in q1 and q2 → bits 0 and 1.
        assert_eq!(row_bits(&idx, 0), vec![0b00011]);
        // Attribute 3 appears in q2, q3, q4 → bits 1, 2, 3.
        assert_eq!(row_bits(&idx, 3), vec![0b01110]);
        assert_eq!(idx.attribute_frequencies(), &[2, 2, 1, 3, 1, 1]);
    }

    #[test]
    fn kernels_match_paper_example() {
        let log = fig1_log();
        let idx = LogIndex::build(&log);
        let t = Tuple::from_bitstring("110100").unwrap();
        assert_eq!(idx.satisfied_count(&t), 3);
        assert_eq!(idx.cooccurrence_count(&AttrSet::from_indices(6, [0, 3])), 1);
        assert_eq!(idx.complement_support(&AttrSet::from_indices(6, [2, 4])), 4);
        assert_eq!(idx.cooccurrence_count(&AttrSet::empty(6)), 5);
        assert_eq!(idx.complement_support(&AttrSet::empty(6)), 5);
    }

    #[test]
    fn weighted_counting_uses_weights() {
        let log = fig1_log().deduplicate(); // still unit weights
        let idx = LogIndex::build(&log);
        assert!(idx.unit_weights);

        let weighted = QueryLog::new_weighted(
            std::sync::Arc::clone(fig1_log().schema()),
            fig1_log().queries().to_vec(),
            vec![1, 2, 3, 4, 5],
        );
        let idx = LogIndex::build(&weighted);
        assert!(!idx.unit_weights);
        assert_eq!(idx.total_weight(), 15);
        let t = Tuple::from_bitstring("110100").unwrap();
        // q1 (w=1), q2 (w=2), q3 (w=3) are satisfied.
        assert_eq!(idx.satisfied_count(&t), 6);
        assert_eq!(idx.attribute_frequencies(), &[3, 4, 5, 9, 5, 4]);
        // The weight prefix table covers the single 5-query word.
        assert_eq!(idx.word_weight_psum, vec![0, 15]);
    }

    #[test]
    fn empty_log_counts_are_zero() {
        let log = QueryLog::from_bitstrings(&[]).unwrap();
        let idx = LogIndex::build(&log);
        assert_eq!(idx.total_weight(), 0);
        assert_eq!(idx.satisfied_count(&Tuple::from_bitstring("").unwrap()), 0);
        assert_eq!(idx.complement_support(&AttrSet::empty(0)), 0);
        assert_eq!(idx.cooccurrence_count(&AttrSet::empty(0)), 0);
    }

    #[test]
    fn more_than_64_queries_span_words() {
        let universe = 7;
        let sets: Vec<AttrSet> = (0..150)
            .map(|i| AttrSet::from_indices(universe, [i % universe, (i / 2) % universe]))
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        assert_eq!(idx.row_words, 3);
        for a in 0..universe {
            let probe = AttrSet::from_indices(universe, [a]);
            assert_eq!(
                idx.cooccurrence_count(&probe),
                log.cooccurrence_count_scan(&probe)
            );
            assert_eq!(
                idx.complement_support(&probe),
                log.complement_support_scan(&probe)
            );
        }
    }

    #[test]
    fn density_threshold_selects_containers() {
        // 640 queries: attr 0 in every query (dense), attr 1 in exactly 9
        // (9 * 64 = 576 < 640 → sparse), attr 2 in exactly 10
        // (10 * 64 = 640, not < 640 → dense: the boundary is strict).
        let universe = 3;
        let sets: Vec<AttrSet> = (0..640)
            .map(|i| {
                AttrSet::from_indices(
                    universe,
                    (0..universe).filter(|&a| match a {
                        0 => true,
                        1 => i < 9,
                        _ => i < 10,
                    }),
                )
            })
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        assert!(!idx.is_sparse(0));
        assert!(idx.is_sparse(1));
        assert!(!idx.is_sparse(2));
        assert_eq!(idx.sparse_rows(), 1);

        // Mixed-container operand sets hit every kernel specialization.
        for probe in [
            AttrSet::from_indices(universe, [0, 1]),
            AttrSet::from_indices(universe, [1, 2]),
            AttrSet::from_indices(universe, [0, 1, 2]),
        ] {
            assert_eq!(
                idx.cooccurrence_count(&probe),
                log.cooccurrence_count_scan(&probe),
                "cooccurrence {probe}"
            );
            assert_eq!(
                idx.complement_support(&probe),
                log.complement_support_scan(&probe),
                "complement {probe}"
            );
        }

        // The dense-only build agrees everywhere and holds no sparse rows.
        let dense = LogIndex::build_dense(&log);
        assert_eq!(dense.sparse_rows(), 0);
        let probe = AttrSet::from_indices(universe, [0, 1]);
        assert_eq!(
            dense.cooccurrence_count(&probe),
            idx.cooccurrence_count(&probe)
        );
    }

    #[test]
    fn hybrid_layout_saves_memory_on_skewed_logs() {
        // 4096 queries over 16 attrs, each query touching only attr 0 or
        // 1: the 14 empty rows and nothing else go sparse, so the hybrid
        // layout drops their 512 B bitmaps entirely.
        let universe = 16;
        let sets: Vec<AttrSet> = (0..4096)
            .map(|i| AttrSet::from_indices(universe, [i % 2]))
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        let dense = LogIndex::build_dense(&log);
        assert_eq!(idx.sparse_rows(), 14);
        assert!(idx.row_bytes() < dense.row_bytes());
    }

    #[test]
    fn sparse_complement_clears_exact_ids() {
        // A sparse row complemented against a multi-word accumulator:
        // the tail word must keep its mask and no phantom ids appear.
        let universe = 2;
        let sets: Vec<AttrSet> = (0..130)
            .map(|i| {
                AttrSet::from_indices(
                    universe,
                    (0..universe).filter(|&a| a == 0 || (i == 3 || i == 128)),
                )
            })
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets.clone());
        let idx = LogIndex::build(&log);
        assert!(idx.is_sparse(1), "2/130 density must go sparse");
        // Queries disjoint from {1}: all except ids 3 and 128.
        assert_eq!(idx.complement_support(&AttrSet::from_indices(2, [1])), 128);
        assert_eq!(
            idx.complement_support(&AttrSet::from_indices(2, [1])),
            log.complement_support_scan(&AttrSet::from_indices(2, [1]))
        );
    }

    #[test]
    fn intersect_entries_merge_and_gallop_agree() {
        // Reference: materialize both entry lists as bitmaps and AND.
        let entries = |step: usize, bits: u64| -> (Vec<u32>, Vec<u64>) {
            let ws: Vec<u32> = (0..400u32).step_by(step).collect();
            (ws.clone(), vec![bits; ws.len()])
        };
        let run = |a: &(Vec<u32>, Vec<u64>), b: &(Vec<u32>, Vec<u64>)| {
            let (mut w, mut m) = a.clone();
            intersect_entries(&mut w, &mut m, &b.0, &b.1);
            (w, m)
        };
        let a = entries(7, 0b1100);
        let b = entries(3, 0b0111);
        let expect_w: Vec<u32> = (0..400u32).step_by(21).collect();
        let (w, m) = run(&a, &b);
        assert_eq!(w, expect_w);
        assert!(m.iter().all(|&x| x == 0b0100));
        // Disjoint masks on a shared word drop the entry entirely.
        let (w, _) = run(&entries(3, 0b0011), &entries(3, 0b1100));
        assert!(w.is_empty());
        // Lopsided lengths trigger the galloping path.
        let short = (vec![0u32, 21, 42, 399], vec![!0u64; 4]);
        let long = entries(3, !0u64);
        let (w, m) = run(&short, &long);
        assert_eq!(w, vec![0, 21, 42, 399]);
        assert!(m.iter().all(|&x| x == !0u64));
        let (w, _) = run(&(Vec::new(), Vec::new()), &long);
        assert!(w.is_empty());
        let (w, _) = run(&long, &(Vec::new(), Vec::new()));
        assert!(w.is_empty());
    }

    #[test]
    fn blocked_kernels_cross_block_boundaries() {
        // > BLOCK_WORDS * 64 queries forces multiple accumulator blocks
        // through the dense k-operand AND.
        let s = BLOCK_WORDS * 64 + 70;
        let universe = 3;
        let sets: Vec<AttrSet> = (0..s)
            .map(|i| {
                AttrSet::from_indices(universe, (0..universe).filter(|&a| (i + a) % (a + 2) == 0))
            })
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        for probe in [
            AttrSet::from_indices(universe, [0, 1]),
            AttrSet::from_indices(universe, [0, 1, 2]),
        ] {
            assert_eq!(
                idx.cooccurrence_count(&probe),
                log.cooccurrence_count_scan(&probe),
                "{probe}"
            );
        }
    }

    #[test]
    fn all_sparse_complement_takes_union_path_and_matches_scan() {
        // 640 ids; cards 9 and 7 are sparse under the strict 1/64 rule
        // (9·64 = 576 < 640), so a {0,1} operand set is all-sparse and
        // exercises the union fast path; attr 2 is dense and forces the
        // accumulator path when mixed in.
        let s = 640usize;
        let universe = 3;
        let sets: Vec<AttrSet> = (0..s)
            .map(|i| {
                let mut attrs = Vec::new();
                if i % 73 == 0 {
                    attrs.push(0);
                }
                if i % 91 == 0 {
                    attrs.push(1);
                }
                if i % 3 == 0 {
                    attrs.push(2);
                }
                AttrSet::from_indices(universe, attrs)
            })
            .collect();
        let log = QueryLog::from_attr_sets(universe, sets);
        let idx = LogIndex::build(&log);
        assert_eq!(idx.sparse_rows(), 2);
        for probe in [
            AttrSet::from_indices(universe, [0]),
            AttrSet::from_indices(universe, [0, 1]),
            AttrSet::from_indices(universe, [0, 1, 2]),
            AttrSet::from_indices(universe, [1, 2]),
        ] {
            assert_eq!(
                idx.complement_support(&probe),
                log.complement_support_scan(&probe),
                "{probe}"
            );
        }
    }
}
