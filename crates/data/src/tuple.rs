//! Boolean tuples, domination, and compression (§II.A of the paper).

use std::fmt;

use crate::{AttrSet, Schema};

/// Identifier of a tuple within a [`crate::Database`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TupleId(pub u32);

/// A Boolean tuple: the set of attributes whose value is 1.
///
/// Per §II.A, a tuple "may also be considered as a subset of A"; we use the
/// set view directly, with [`AttrSet`] as the representation.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    attrs: AttrSet,
}

impl Tuple {
    /// Wraps an attribute set as a tuple.
    pub fn new(attrs: AttrSet) -> Self {
        Self { attrs }
    }

    /// Builds a tuple from the indices of its 1-valued attributes.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        Self::new(AttrSet::from_indices(universe, indices))
    }

    /// Parses a Fig-1-style bit-vector string such as `"110101"`.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        AttrSet::from_bitstring(s).map(Self::new)
    }

    /// The underlying attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Consumes the tuple, returning its attribute set.
    pub fn into_attrs(self) -> AttrSet {
        self.attrs
    }

    /// Number of 1-valued attributes.
    #[inline]
    pub fn count(&self) -> usize {
        self.attrs.count()
    }

    /// The universe size `M`.
    #[inline]
    pub fn universe(&self) -> usize {
        self.attrs.universe()
    }

    /// Tuple domination (§II.A): `self` dominates `other` iff every
    /// attribute that is 1 in `other` is also 1 in `self`.
    #[inline]
    pub fn dominates(&self, other: &Tuple) -> bool {
        other.attrs.is_subset(&self.attrs)
    }

    /// Tuple compression (§II.A): retain exactly the attributes in `keep`.
    ///
    /// # Panics
    /// Panics if `keep` is not a subset of this tuple's attributes —
    /// compression may only *retain* existing 1s, never invent them.
    #[must_use]
    pub fn compress(&self, keep: &AttrSet) -> Tuple {
        assert!(
            keep.is_subset(&self.attrs),
            "compression must retain a subset of the tuple's attributes"
        );
        Tuple::new(keep.clone())
    }

    /// Enumerates every compression of this tuple that retains exactly `m`
    /// attributes (used by the brute-force algorithm). If the tuple has
    /// fewer than `m` attributes, yields the tuple itself once.
    pub fn compressions(&self, m: usize) -> impl Iterator<Item = Tuple> + '_ {
        let members = self.attrs.to_indices();
        let universe = self.universe();
        let k = m.min(members.len());
        crate::Combinations::new(members.len(), k).map(move |choice| {
            Tuple::new(AttrSet::from_indices(
                universe,
                choice.iter().map(|&i| members[i]),
            ))
        })
    }

    /// Pretty-prints the tuple's 1-attributes using schema names.
    pub fn describe(&self, schema: &Schema) -> String {
        let names: Vec<&str> = self
            .attrs
            .iter()
            .map(|i| {
                schema.name(crate::AttrId(
                    u32::try_from(i).expect("attr index fits u32"),
                ))
            })
            .collect();
        names.join(", ")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tuple({})", self.attrs.to_bitstring())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domination() {
        // Fig 1: t = [1,1,0,1,1,1] dominates t4 = [1,1,0,1,0,1].
        let t = Tuple::from_bitstring("110111").unwrap();
        let t4 = Tuple::from_bitstring("110101").unwrap();
        assert!(t.dominates(&t4));
        assert!(!t4.dominates(&t));
        assert!(t.dominates(&t));
    }

    #[test]
    fn compression_retains_subset() {
        let t = Tuple::from_bitstring("110111").unwrap();
        let keep = AttrSet::from_indices(6, [0, 1, 3]);
        let t2 = t.compress(&keep);
        assert_eq!(t2.attrs().to_bitstring(), "110100");
    }

    #[test]
    #[should_panic(expected = "subset")]
    fn compression_cannot_invent_attributes() {
        let t = Tuple::from_bitstring("1100").unwrap();
        let keep = AttrSet::from_indices(4, [0, 2]);
        let _ = t.compress(&keep);
    }

    #[test]
    fn compressions_enumeration() {
        let t = Tuple::from_bitstring("110110").unwrap(); // 4 ones
        let all: Vec<Tuple> = t.compressions(2).collect();
        assert_eq!(all.len(), 6); // C(4,2)
        for c in &all {
            assert_eq!(c.count(), 2);
            assert!(t.dominates(c));
        }
    }

    #[test]
    fn compressions_when_m_exceeds_ones() {
        let t = Tuple::from_bitstring("1010").unwrap();
        let all: Vec<Tuple> = t.compressions(5).collect();
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], t);
    }

    #[test]
    fn describe_uses_names() {
        let schema = Schema::new(["ac", "turbo", "abs"]);
        let t = Tuple::from_bitstring("101").unwrap();
        assert_eq!(t.describe(&schema), "ac, abs");
    }
}
