//! Query logs: the workload `Q = {q_1 ... q_S}` (§II.A) and the statistics
//! the greedy heuristics consume.

use std::fmt;
use std::sync::{Arc, OnceLock};

use crate::{AttrMapping, AttrSet, LogIndex, Query, QueryId, Schema, Tuple};

/// An immutable collection of conjunctive queries over a shared [`Schema`].
///
/// The query log is "our primary model of what past potential buyers have
/// been interested in" (§I). It is the sole input the SOC-CB-QL algorithms
/// analyze — the database itself is irrelevant for that variant.
///
/// Every query carries a *weight* (a multiplicity, 1 by default). All
/// counting methods — [`QueryLog::satisfied_count`], attribute
/// frequencies, complement supports — sum weights, so a deduplicated log
/// ([`QueryLog::deduplicate`]) yields exactly the same objective values as
/// the raw log while being much smaller. Real query logs are dominated by
/// repeated queries, making this the single most effective preprocessing
/// step before any SOC algorithm runs.
/// All counting kernels run on a lazily built inverted bitmap index
/// ([`LogIndex`]), cached here behind a `OnceLock`. The cache never goes
/// stale because the log is immutable: every method that produces a
/// *different* log (`deduplicate`, `filter`, `complement`, …) constructs
/// a new `QueryLog` value whose cache starts empty, while `Clone` shares
/// the `Arc`'d index — valid because the clone holds byte-identical
/// queries and weights.
#[derive(Clone)]
pub struct QueryLog {
    schema: Arc<Schema>,
    queries: Vec<Query>,
    weights: Vec<usize>,
    index: OnceLock<Arc<LogIndex>>,
}

impl QueryLog {
    /// Builds a log from queries over `schema`, all with weight 1.
    ///
    /// # Panics
    /// Panics if any query's universe differs from the schema width.
    pub fn new(schema: Arc<Schema>, queries: Vec<Query>) -> Self {
        let weights = vec![1; queries.len()];
        Self::new_weighted(schema, queries, weights)
    }

    /// Builds a log with explicit per-query weights (multiplicities).
    ///
    /// # Panics
    /// Panics if lengths differ, any weight is zero, or any query's
    /// universe differs from the schema width.
    pub fn new_weighted(schema: Arc<Schema>, queries: Vec<Query>, weights: Vec<usize>) -> Self {
        assert_eq!(queries.len(), weights.len(), "one weight per query");
        assert!(weights.iter().all(|&w| w > 0), "weights must be positive");
        for q in &queries {
            assert_eq!(
                q.attrs().universe(),
                schema.len(),
                "query universe does not match schema width"
            );
        }
        Self {
            schema,
            queries,
            weights,
            index: OnceLock::new(),
        }
    }

    /// Merges duplicate queries, summing their weights. Objective values
    /// computed against the result equal those of the original log.
    #[must_use]
    pub fn deduplicate(&self) -> QueryLog {
        let mut index: std::collections::HashMap<&Query, usize> = std::collections::HashMap::new();
        let mut queries: Vec<Query> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for (q, &w) in self.queries.iter().zip(&self.weights) {
            match index.get(q) {
                Some(&i) => weights[i] += w,
                None => {
                    index.insert(q, queries.len());
                    queries.push(q.clone());
                    weights.push(w);
                }
            }
        }
        QueryLog {
            schema: Arc::clone(&self.schema),
            queries,
            weights,
            index: OnceLock::new(),
        }
    }

    /// The weight (multiplicity) of a query.
    pub fn weight(&self, id: QueryId) -> usize {
        self.weights[id.0 as usize]
    }

    /// Sum of all query weights (the size of the log before
    /// deduplication).
    pub fn total_weight(&self) -> usize {
        self.weights.iter().sum()
    }

    /// Builds a log over an anonymous schema directly from attribute sets.
    pub fn from_attr_sets(universe: usize, sets: Vec<AttrSet>) -> Self {
        let schema = Arc::new(Schema::anonymous(universe));
        Self::new(schema, sets.into_iter().map(Query::new).collect())
    }

    /// Parses Fig-1-style bit-vector rows into a log.
    ///
    /// Returns `None` if any row is malformed or rows have differing widths.
    pub fn from_bitstrings(rows: &[&str]) -> Option<Self> {
        let width = rows.first().map_or(0, |r| r.len());
        let mut queries = Vec::with_capacity(rows.len());
        for r in rows {
            if r.len() != width {
                return None;
            }
            queries.push(Query::from_bitstring(r)?);
        }
        Some(Self::new(Arc::new(Schema::anonymous(width)), queries))
    }

    /// The shared schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of attributes `M`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.schema.len()
    }

    /// Number of queries `S`.
    #[inline]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True if the log holds no queries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The queries in log order.
    #[inline]
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// The query with the given id.
    pub fn query(&self, id: QueryId) -> &Query {
        &self.queries[id.0 as usize]
    }

    /// Iterates `(QueryId, &Query)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (QueryId, &Query)> {
        self.queries.iter().enumerate().map(|(i, q)| {
            (
                QueryId(u32::try_from(i).expect("query index exceeds u32::MAX")),
                q,
            )
        })
    }

    /// The lazily built inverted bitmap index over this log. The first
    /// call pays one `O(S · M/64)` build; afterwards every counting
    /// kernel runs on bitmap words instead of rescanning queries.
    pub fn index(&self) -> &LogIndex {
        self.index.get_or_init(|| Arc::new(LogIndex::build(self)))
    }

    /// The SOC objective: total weight of the queries that retrieve `t`
    /// under conjunctive Boolean semantics (`q ⊆ t`). With unit weights
    /// this is the paper's "number of queries".
    ///
    /// Computed on the [`LogIndex`] as `complement_support(¬t)`, since
    /// `q ⊆ t ⇔ q ∩ ¬t = ∅`.
    pub fn satisfied_count(&self, t: &Tuple) -> usize {
        self.index().satisfied_count(t)
    }

    /// Reference implementation of [`QueryLog::satisfied_count`]: a full
    /// scan with a per-query subset test. Kept as the differential-test
    /// and benchmark baseline for the index.
    pub fn satisfied_count_scan(&self, t: &Tuple) -> usize {
        self.queries
            .iter()
            .zip(&self.weights)
            .filter(|(q, _)| q.matches(t))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Ids of the queries that retrieve `t`.
    pub fn satisfied_ids(&self, t: &Tuple) -> Vec<QueryId> {
        self.iter()
            .filter(|(_, q)| q.matches(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// Total weight of queries that retrieve `t` under *disjunctive*
    /// semantics: `total_weight − complement_support(t)` on the index
    /// (a query shares an attribute with `t` iff it is not disjoint
    /// from `t`; the empty query matches nothing disjunctively).
    pub fn satisfied_count_disjunctive(&self, t: &Tuple) -> usize {
        self.index().satisfied_count_disjunctive(t)
    }

    /// Reference scan implementation of
    /// [`QueryLog::satisfied_count_disjunctive`].
    pub fn satisfied_count_disjunctive_scan(&self, t: &Tuple) -> usize {
        self.queries
            .iter()
            .zip(&self.weights)
            .filter(|(q, _)| q.matches_disjunctive(t))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Restricts the log to queries whose attributes are all present in
    /// `t` — only those can ever be satisfied by a compression of `t`.
    /// Pre-pruning with this shrinks ILP models considerably.
    #[must_use]
    pub fn restrict_to_candidate(&self, t: &Tuple) -> QueryLog {
        self.filter(|q| q.attrs().is_subset(t.attrs()))
    }

    /// Projects the log onto the attributes of `t`: keeps only queries
    /// contained in `t` (the others can never be satisfied by any
    /// compression of `t`), renumbers attributes down to the compact
    /// universe of `t`'s present attributes, and merges queries that
    /// become identical after renumbering into summed weights.
    ///
    /// For any compression `R ⊆ t`, the total weight of satisfied queries
    /// in the projected log (with `R` mapped via
    /// [`AttrMapping::to_compact`]) equals the SOC objective of `R` in the
    /// original log — see DESIGN.md, "Instance projection".
    ///
    /// # Panics
    /// Panics if `t`'s universe differs from the schema width.
    #[must_use]
    pub fn project_onto(&self, t: &Tuple) -> (QueryLog, AttrMapping) {
        assert_eq!(
            t.universe(),
            self.num_attrs(),
            "tuple universe does not match schema width"
        );
        let mapping = AttrMapping::for_tuple(t);
        let schema = Arc::new(Schema::new(
            t.attrs().iter().map(|i| self.schema.names()[i].clone()),
        ));
        let mut seen: std::collections::HashMap<Query, usize> = std::collections::HashMap::new();
        let mut queries: Vec<Query> = Vec::new();
        let mut weights: Vec<usize> = Vec::new();
        for (q, &w) in self.queries.iter().zip(&self.weights) {
            if !q.attrs().is_subset(t.attrs()) {
                continue;
            }
            let projected = Query::new(mapping.to_compact(q.attrs()));
            match seen.get(&projected) {
                Some(&i) => weights[i] += w,
                None => {
                    seen.insert(projected.clone(), queries.len());
                    queries.push(projected);
                    weights.push(w);
                }
            }
        }
        let log = QueryLog {
            schema,
            queries,
            weights,
            index: OnceLock::new(),
        };
        (log, mapping)
    }

    /// Keeps only the queries for which `keep` returns true (weights
    /// travel with their queries).
    #[must_use]
    pub fn filter(&self, mut keep: impl FnMut(&Query) -> bool) -> QueryLog {
        let mut queries = Vec::new();
        let mut weights = Vec::new();
        for (q, &w) in self.queries.iter().zip(&self.weights) {
            if keep(q) {
                queries.push(q.clone());
                weights.push(w);
            }
        }
        QueryLog {
            schema: Arc::clone(&self.schema),
            queries,
            weights,
            index: OnceLock::new(),
        }
    }

    /// Per-attribute frequency: `freq[j]` = total weight of queries
    /// specifying attribute `j`. This drives the `ConsumeAttr` greedy.
    /// Read straight off the [`LogIndex`] — a borrow, not a copy (the
    /// index is cached on the log, so the slice lives as long as `self`).
    pub fn attribute_frequencies(&self) -> &[usize] {
        self.index().attribute_frequencies()
    }

    /// Reference scan implementation of
    /// [`QueryLog::attribute_frequencies`].
    pub fn attribute_frequencies_scan(&self) -> Vec<usize> {
        let mut freq = vec![0usize; self.num_attrs()];
        for (q, &w) in self.queries.iter().zip(&self.weights) {
            for a in q.attrs().iter() {
                freq[a] += w;
            }
        }
        freq
    }

    /// Total weight of queries that specify *every* attribute in `attrs`
    /// (co-occurrence count). Drives the `ConsumeAttrCumul` greedy.
    ///
    /// Computed as the weighted popcount of the AND of the operand
    /// attributes' bitmap rows in the [`LogIndex`].
    pub fn cooccurrence_count(&self, attrs: &AttrSet) -> usize {
        self.index().cooccurrence_count(attrs)
    }

    /// Reference scan implementation of [`QueryLog::cooccurrence_count`].
    pub fn cooccurrence_count_scan(&self, attrs: &AttrSet) -> usize {
        self.queries
            .iter()
            .zip(&self.weights)
            .filter(|(q, _)| attrs.is_subset(q.attrs()))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Total weight of queries disjoint from `items`, i.e. the support of
    /// `items` in the complemented log `~Q`: `freq_{~Q}(I) = |{q : q ∩ I = ∅}|`.
    ///
    /// This identity lets the MFI algorithm mine the dense complement
    /// without ever materializing it (see DESIGN.md).
    ///
    /// Computed as `total_weight − weight(OR of the operand rows)` on the
    /// [`LogIndex`] — implemented as the weighted popcount of the AND of
    /// the complemented rows, which admits an early exit.
    pub fn complement_support(&self, items: &AttrSet) -> usize {
        self.index().complement_support(items)
    }

    /// Reference scan implementation of [`QueryLog::complement_support`].
    pub fn complement_support_scan(&self, items: &AttrSet) -> usize {
        self.queries
            .iter()
            .zip(&self.weights)
            .filter(|(q, _)| q.attrs().is_disjoint(items))
            .map(|(_, &w)| w)
            .sum()
    }

    /// Materializes the complemented log `~Q` (each query's bit-vector
    /// flipped, weights preserved). Only used by baselines and tests;
    /// production code uses [`QueryLog::complement_support`].
    #[must_use]
    pub fn complement(&self) -> QueryLog {
        QueryLog {
            schema: Arc::clone(&self.schema),
            queries: self
                .queries
                .iter()
                .map(|q| Query::new(q.attrs().complement()))
                .collect(),
            weights: self.weights.clone(),
            index: OnceLock::new(),
        }
    }

    /// Summary statistics used by experiment reports.
    pub fn stats(&self) -> QueryLogStats {
        let sizes: Vec<usize> = self.queries.iter().map(Query::len).collect();
        let total: usize = sizes.iter().sum();
        QueryLogStats {
            num_queries: self.len(),
            num_attrs: self.num_attrs(),
            min_query_len: sizes.iter().copied().min().unwrap_or(0),
            max_query_len: sizes.iter().copied().max().unwrap_or(0),
            mean_query_len: if self.is_empty() {
                0.0
            } else {
                total as f64 / self.len() as f64
            },
        }
    }
}

impl fmt::Debug for QueryLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("QueryLog")
            .field("num_queries", &self.len())
            .field("num_attrs", &self.num_attrs())
            .finish()
    }
}

/// Shape summary of a query log.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryLogStats {
    /// `S`, the number of queries.
    pub num_queries: usize,
    /// `M`, the number of attributes.
    pub num_attrs: usize,
    /// Fewest attributes specified by any query.
    pub min_query_len: usize,
    /// Most attributes specified by any query.
    pub max_query_len: usize,
    /// Mean attributes per query.
    pub mean_query_len: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The query log of the paper's Fig 1.
    fn fig1_log() -> QueryLog {
        QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap()
    }

    #[test]
    fn satisfied_counts_match_paper_example() {
        let log = fig1_log();
        // t' = [1,1,0,1,0,0] satisfies q1, q2, q3 (§II.A).
        let t = Tuple::from_bitstring("110100").unwrap();
        assert_eq!(log.satisfied_count(&t), 3);
        assert_eq!(
            log.satisfied_ids(&t),
            vec![QueryId(0), QueryId(1), QueryId(2)]
        );
    }

    #[test]
    fn attribute_frequencies() {
        let log = fig1_log();
        assert_eq!(log.attribute_frequencies(), vec![2, 2, 1, 3, 1, 1]);
    }

    #[test]
    fn cooccurrence() {
        let log = fig1_log();
        let ac_pd = AttrSet::from_indices(6, [0, 3]); // AC & PowerDoors
        assert_eq!(log.cooccurrence_count(&ac_pd), 1); // only q2
    }

    #[test]
    fn complement_support_equals_materialized() {
        let log = fig1_log();
        let comp = log.complement();
        for items in [
            AttrSet::from_indices(6, [0]),
            AttrSet::from_indices(6, [2, 4]),
            AttrSet::from_indices(6, [1, 2, 5]),
            AttrSet::empty(6),
        ] {
            let direct = log.complement_support(&items);
            let materialized = comp
                .queries()
                .iter()
                .filter(|q| items.is_subset(q.attrs()))
                .count();
            assert_eq!(direct, materialized, "items = {items}");
        }
    }

    #[test]
    fn restrict_to_candidate() {
        let log = fig1_log();
        let t = Tuple::from_bitstring("110111").unwrap(); // Fig 1 new car
        let r = log.restrict_to_candidate(&t);
        // q2 (turbo) and q5 (turbo, auto) reference turbo which t lacks...
        // t = AC, FourDoor, PowerDoors, AutoTrans, PowerBrakes (no Turbo).
        // q1 {0,1} ⊆ t, q2 {0,3} ⊆ t, q3 {1,3} ⊆ t, q4 {3,5} ⊆ t, q5 {2,4} ⊄ t.
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn stats() {
        let log = fig1_log();
        let s = log.stats();
        assert_eq!(s.num_queries, 5);
        assert_eq!(s.num_attrs, 6);
        assert_eq!(s.min_query_len, 2);
        assert_eq!(s.max_query_len, 2);
        assert!((s.mean_query_len - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_log() {
        let log = QueryLog::from_bitstrings(&[]).unwrap();
        assert!(log.is_empty());
        let t = Tuple::from_bitstring("").unwrap();
        assert_eq!(log.satisfied_count(&t), 0);
        assert_eq!(log.stats().mean_query_len, 0.0);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn schema_width_enforced() {
        let schema = Arc::new(Schema::anonymous(4));
        let q = Query::from_bitstring("110").unwrap();
        let _ = QueryLog::new(schema, vec![q]);
    }
}

#[cfg(test)]
mod weight_tests {
    use super::*;

    #[test]
    fn dedup_merges_and_preserves_objectives() {
        let raw =
            QueryLog::from_bitstrings(&["1100", "1100", "0011", "1100", "0011", "1000"]).unwrap();
        let dedup = raw.deduplicate();
        assert_eq!(dedup.len(), 3);
        assert_eq!(dedup.total_weight(), 6);
        assert_eq!(dedup.weight(QueryId(0)), 3); // "1100"
        for bits in ["1100", "0011", "1111", "1000", "0000"] {
            let t = Tuple::from_bitstring(bits).unwrap();
            assert_eq!(raw.satisfied_count(&t), dedup.satisfied_count(&t), "{bits}");
            assert_eq!(
                raw.satisfied_count_disjunctive(&t),
                dedup.satisfied_count_disjunctive(&t)
            );
        }
        assert_eq!(raw.attribute_frequencies(), dedup.attribute_frequencies());
        let items = AttrSet::from_indices(4, [0, 1]);
        assert_eq!(
            raw.complement_support(&items),
            dedup.complement_support(&items)
        );
        assert_eq!(
            raw.cooccurrence_count(&items),
            dedup.cooccurrence_count(&items)
        );
    }

    #[test]
    fn filter_preserves_weights() {
        let raw = QueryLog::from_bitstrings(&["1100", "1100", "0011"]).unwrap();
        let dedup = raw.deduplicate();
        let filtered = dedup.filter(|q| q.attrs().contains(0));
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered.weight(QueryId(0)), 2);
    }

    #[test]
    fn unit_weights_by_default() {
        let log = QueryLog::from_bitstrings(&["10", "01"]).unwrap();
        assert_eq!(log.total_weight(), 2);
        assert_eq!(log.weight(QueryId(1)), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_weight_rejected() {
        let schema = Arc::new(Schema::anonymous(2));
        let q = Query::from_bitstring("10").unwrap();
        let _ = QueryLog::new_weighted(schema, vec![q], vec![0]);
    }

    #[test]
    #[should_panic(expected = "one weight per query")]
    fn weight_arity_checked() {
        let schema = Arc::new(Schema::anonymous(2));
        let q = Query::from_bitstring("10").unwrap();
        let _ = QueryLog::new_weighted(schema, vec![q], vec![1, 2]);
    }
}

#[cfg(test)]
mod projection_tests {
    use super::*;

    #[test]
    fn projection_keeps_only_contained_queries() {
        let log =
            QueryLog::from_bitstrings(&["110000", "100100", "010100", "000101", "001010"]).unwrap();
        let t = Tuple::from_bitstring("110110").unwrap(); // {0,1,3,4}
        let (proj, mapping) = log.project_onto(&t);
        assert_eq!(proj.num_attrs(), 4);
        // q1 {0,1}, q2 {0,3}, q3 {1,3} are ⊆ t; q4 {3,5}, q5 {2,4} are not.
        assert_eq!(proj.len(), 3);
        assert_eq!(proj.total_weight(), 3);
        assert_eq!(
            proj.queries()[1].attrs().to_indices(),
            vec![0, 2] // {0,3} with attr 3 renumbered to compact 2
        );
        assert_eq!(mapping.compact_index(3), Some(2));
        // Kept schema names travel with the projection.
        assert_eq!(proj.schema().names()[2], log.schema().names()[3]);
    }

    #[test]
    fn projection_merges_duplicates_into_weights() {
        // After dropping attr 2 (absent from t), queries "101" and "100"
        // both project to {0} over the compact universe... but projection
        // keeps only *contained* queries, so craft true duplicates instead:
        // two identical contained queries plus one distinct.
        let log = QueryLog::from_bitstrings(&["1100", "1100", "0100", "0011"]).unwrap();
        let t = Tuple::from_bitstring("1101").unwrap();
        let (proj, _) = log.project_onto(&t);
        // "0011" is not ⊆ t; "1100" ×2 merge; "0100" stays.
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.weight(QueryId(0)), 2);
        assert_eq!(proj.weight(QueryId(1)), 1);
        assert_eq!(proj.total_weight(), 3);
    }

    #[test]
    fn projected_objective_equals_original_for_all_compressions() {
        let log = QueryLog::from_bitstrings(&[
            "110000", "100100", "010100", "000101", "001010", "100100", "010000",
        ])
        .unwrap();
        let t = Tuple::from_bitstring("110110").unwrap();
        let (proj, mapping) = log.project_onto(&t);
        // Every subset R ⊆ t must score identically in both universes.
        let kept: Vec<usize> = t.attrs().to_indices();
        for mask in 0u32..(1 << kept.len()) {
            let retained = AttrSet::from_indices(
                6,
                kept.iter()
                    .enumerate()
                    .filter(|&(c, _)| mask >> c & 1 == 1)
                    .map(|(_, &i)| i),
            );
            let full = log.satisfied_count(&Tuple::new(retained.clone()));
            let compact = proj.satisfied_count(&Tuple::new(mapping.to_compact(&retained)));
            assert_eq!(full, compact, "retained = {retained}");
        }
    }

    #[test]
    fn projection_onto_full_tuple_is_dedup() {
        let log = QueryLog::from_bitstrings(&["1100", "1100", "0011"]).unwrap();
        let t = Tuple::from_bitstring("1111").unwrap();
        let (proj, mapping) = log.project_onto(&t);
        assert_eq!(mapping.compact_universe(), 4);
        assert_eq!(proj.len(), 2);
        assert_eq!(proj.total_weight(), 3);
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn projection_universe_enforced() {
        let log = QueryLog::from_bitstrings(&["1100"]).unwrap();
        let t = Tuple::from_bitstring("110").unwrap();
        let _ = log.project_onto(&t);
    }
}
