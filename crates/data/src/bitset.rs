//! Fixed-universe bitsets over attribute identifiers.
//!
//! [`AttrSet`] is the workhorse representation of the whole workspace: a
//! tuple is the set of attributes whose value is 1, a conjunctive query is
//! the set of attributes it constrains, and an itemset is a set of items.
//! All of them are `AttrSet`s over a universe of `M` attributes fixed at
//! construction time.
//!
//! The representation is a small inline-friendly vector of `u64` words.
//! Every binary operation requires both operands to share the same universe
//! size; mixing universes is a programming error and panics (in debug and
//! release builds alike), because silently truncating or extending a set
//! produces wrong answers in the mining and solver layers.

use std::fmt;

use crate::AttrId;

const WORD_BITS: usize = 64;

#[inline]
fn word_count(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS)
}

/// Storage: universes of up to 128 attributes (the overwhelmingly common
/// case — the paper's dataset has 32) live inline with no heap
/// allocation; wider universes spill to a `Vec`. Words beyond
/// `word_count(universe)` are always zero, so derived equality/order/hash
/// are consistent.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Words {
    Inline([u64; 2]),
    Heap(Vec<u64>),
}

/// A set of attributes drawn from a universe of fixed size.
///
/// The universe size (`universe`) is the number of attributes `M` of the
/// schema the set belongs to. Bits at positions `>= universe` are always
/// zero; every mutating operation maintains this invariant so that
/// [`AttrSet::count`] and [`AttrSet::complement`] are exact.
///
/// Sets over at most 128 attributes are stored inline (copying and
/// cloning never allocates), which matters because support counting in
/// the mining layer clones and extends sets in its innermost loop.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrSet {
    universe: u32,
    words: Words,
}

impl AttrSet {
    /// Creates an empty set over a universe of `universe` attributes.
    pub fn empty(universe: usize) -> Self {
        let words = if universe <= 128 {
            Words::Inline([0; 2])
        } else {
            Words::Heap(vec![0; word_count(universe)])
        };
        Self {
            universe: u32::try_from(universe).expect("attribute universe exceeds u32::MAX"),
            words,
        }
    }

    /// The live words as a slice.
    #[inline]
    fn words(&self) -> &[u64] {
        let n = word_count(self.universe as usize);
        match &self.words {
            Words::Inline(a) => &a[..n],
            Words::Heap(v) => &v[..n],
        }
    }

    /// The live words, mutably.
    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let n = word_count(self.universe as usize);
        match &mut self.words {
            Words::Inline(a) => &mut a[..n],
            Words::Heap(v) => &mut v[..n],
        }
    }

    /// Creates the full set `{0, 1, ..., universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut set = Self::empty(universe);
        for w in set.words_mut() {
            *w = u64::MAX;
        }
        set.clear_tail();
        set
    }

    /// Builds a set from an iterator of attribute indices.
    ///
    /// # Panics
    /// Panics if any index is `>= universe`.
    pub fn from_indices<I>(universe: usize, indices: I) -> Self
    where
        I: IntoIterator<Item = usize>,
    {
        let mut set = Self::empty(universe);
        for i in indices {
            set.insert(i);
        }
        set
    }

    /// Builds a set from a slice of Boolean values; `bits[i] == true` puts
    /// attribute `i` in the set. The universe size is `bits.len()`.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut set = Self::empty(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                set.insert(i);
            }
        }
        set
    }

    /// Parses a bit-vector string such as `"110100"`, where position 0 is
    /// the leftmost character (matching the layout of the paper's Fig 1).
    ///
    /// Returns `None` if the string contains characters other than `0`/`1`.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        let mut set = Self::empty(s.len());
        for (i, c) in s.chars().enumerate() {
            match c {
                '1' => set.insert(i),
                '0' => {}
                _ => return None,
            }
        }
        Some(set)
    }

    /// The universe size `M` this set is drawn from.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe as usize
    }

    /// Number of attributes in the set (popcount).
    #[inline]
    pub fn count(&self) -> usize {
        self.words().iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if the set contains no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// Tests membership of attribute `i`.
    ///
    /// # Panics
    /// Panics if `i >= universe`.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        assert!(
            i < self.universe(),
            "attribute {i} out of universe {}",
            self.universe
        );
        self.words()[i / WORD_BITS] & (1u64 << (i % WORD_BITS)) != 0
    }

    /// Tests membership of a typed attribute id.
    #[inline]
    pub fn contains_attr(&self, a: AttrId) -> bool {
        self.contains(a.index())
    }

    /// Inserts attribute `i`.
    ///
    /// # Panics
    /// Panics if `i >= universe`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        assert!(
            i < self.universe(),
            "attribute {i} out of universe {}",
            self.universe
        );
        self.words_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Removes attribute `i`.
    ///
    /// # Panics
    /// Panics if `i >= universe`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        assert!(
            i < self.universe(),
            "attribute {i} out of universe {}",
            self.universe
        );
        self.words_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Returns a copy with attribute `i` inserted.
    #[must_use]
    pub fn with(&self, i: usize) -> Self {
        let mut s = self.clone();
        s.insert(i);
        s
    }

    /// Returns a copy with attribute `i` removed.
    #[must_use]
    pub fn without(&self, i: usize) -> Self {
        let mut s = self.clone();
        s.remove(i);
        s
    }

    #[inline]
    fn check_same_universe(&self, other: &Self) {
        assert_eq!(
            self.universe, other.universe,
            "AttrSet universe mismatch: {} vs {}",
            self.universe, other.universe
        );
    }

    /// `self ⊆ other`.
    #[inline]
    pub fn is_subset(&self, other: &Self) -> bool {
        self.check_same_universe(other);
        self.words()
            .iter()
            .zip(other.words())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// `self ⊇ other`.
    #[inline]
    pub fn is_superset(&self, other: &Self) -> bool {
        other.is_subset(self)
    }

    /// `self ∩ other = ∅`.
    #[inline]
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.check_same_universe(other);
        self.words()
            .iter()
            .zip(other.words())
            .all(|(&a, &b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// In-place set difference (`self \ other`).
    pub fn difference_with(&mut self, other: &Self) {
        self.check_same_universe(other);
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// `self ∪ other`.
    #[must_use]
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// `self ∩ other`.
    #[must_use]
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// `|self ∩ other|` without allocating.
    #[inline]
    pub fn intersection_count(&self, other: &Self) -> usize {
        self.check_same_universe(other);
        self.words()
            .iter()
            .zip(other.words())
            .map(|(&a, &b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// The complement `~self` with respect to the universe.
    ///
    /// This is the operation the paper uses to map a sparse query log `Q`
    /// to its dense complement `~Q` (§IV.C).
    #[must_use]
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in s.words_mut() {
            *w = !*w;
        }
        s.clear_tail();
        s
    }

    /// Zeroes bits at positions `>= universe` in the last word.
    fn clear_tail(&mut self) {
        let used = self.universe as usize % WORD_BITS;
        if used != 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= (1u64 << used) - 1;
            }
        }
    }

    /// Iterates over the attribute indices in the set, in increasing order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            set: self,
            word_idx: 0,
            current: self.words().first().copied().unwrap_or(0),
        }
    }

    /// Collects the member indices into a vector (ascending).
    pub fn to_indices(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// The smallest member, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Renders as a bit-vector string, position 0 leftmost (Fig 1 layout).
    pub fn to_bitstring(&self) -> String {
        (0..self.universe())
            .map(|i| if self.contains(i) { '1' } else { '0' })
            .collect()
    }
}

impl fmt::Debug for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AttrSet({})", self.to_bitstring())
    }
}

impl fmt::Display for AttrSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (n, i) in self.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<AttrId> for AttrSet {
    /// Collects typed attribute ids into a set; the universe is sized to
    /// the largest id + 1. Prefer [`AttrSet::from_indices`] when the schema
    /// width is known, so that universes line up.
    fn from_iter<T: IntoIterator<Item = AttrId>>(iter: T) -> Self {
        let ids: Vec<usize> = iter.into_iter().map(|a| a.index()).collect();
        let universe = ids.iter().copied().max().map_or(0, |m| m + 1);
        Self::from_indices(universe, ids)
    }
}

/// Iterator over set members produced by [`AttrSet::iter`].
pub struct Ones<'a> {
    set: &'a AttrSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * WORD_BITS + bit);
            }
            self.word_idx += 1;
            let words = self.set.words();
            if self.word_idx >= words.len() {
                return None;
            }
            self.current = words[self.word_idx];
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let words = self.set.words();
        let remaining = self.current.count_ones() as usize
            + words[(self.word_idx + 1).min(words.len())..]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>();
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = AttrSet::empty(70);
        assert_eq!(e.count(), 0);
        assert!(e.is_empty());
        let f = AttrSet::full(70);
        assert_eq!(f.count(), 70);
        assert_eq!(f.complement(), e);
        assert_eq!(e.complement(), f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AttrSet::empty(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert_eq!(s.count(), 3);
        s.remove(64);
        assert!(!s.contains(64));
        assert_eq!(s.to_indices(), vec![0, 129]);
    }

    #[test]
    fn subset_disjoint() {
        let a = AttrSet::from_indices(10, [1, 3, 5]);
        let b = AttrSet::from_indices(10, [1, 3, 5, 7]);
        let c = AttrSet::from_indices(10, [0, 2]);
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(b.is_superset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn algebra() {
        let a = AttrSet::from_indices(8, [0, 1, 2]);
        let b = AttrSet::from_indices(8, [2, 3]);
        assert_eq!(a.union(&b).to_indices(), vec![0, 1, 2, 3]);
        assert_eq!(a.intersection(&b).to_indices(), vec![2]);
        assert_eq!(a.difference(&b).to_indices(), vec![0, 1]);
        assert_eq!(a.intersection_count(&b), 1);
    }

    #[test]
    fn bitstring_roundtrip() {
        let s = AttrSet::from_bitstring("110100").unwrap();
        assert_eq!(s.to_indices(), vec![0, 1, 3]);
        assert_eq!(s.to_bitstring(), "110100");
        assert!(AttrSet::from_bitstring("1102").is_none());
    }

    #[test]
    fn complement_respects_universe() {
        // universe not a multiple of 64: tail bits must stay clear.
        let s = AttrSet::from_indices(66, [0, 65]);
        let c = s.complement();
        assert_eq!(c.count(), 64);
        assert!(!c.contains(0) && !c.contains(65));
        assert!(c.contains(1) && c.contains(64));
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn universe_mismatch_panics() {
        let a = AttrSet::empty(5);
        let b = AttrSet::empty(6);
        let _ = a.is_subset(&b);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn out_of_range_insert_panics() {
        let mut a = AttrSet::empty(5);
        a.insert(5);
    }

    #[test]
    fn display_and_debug() {
        let s = AttrSet::from_indices(6, [1, 4]);
        assert_eq!(format!("{s}"), "{1, 4}");
        assert_eq!(format!("{s:?}"), "AttrSet(010010)");
    }

    #[test]
    fn from_bools() {
        let s = AttrSet::from_bools(&[true, false, true]);
        assert_eq!(s.universe(), 3);
        assert_eq!(s.to_indices(), vec![0, 2]);
    }

    #[test]
    fn with_without() {
        let s = AttrSet::from_indices(4, [0]);
        assert_eq!(s.with(2).to_indices(), vec![0, 2]);
        assert_eq!(s.without(0).to_indices(), Vec::<usize>::new());
        // originals untouched
        assert_eq!(s.to_indices(), vec![0]);
    }

    #[test]
    fn iter_size_hint() {
        let s = AttrSet::from_indices(200, [0, 63, 64, 127, 199]);
        let it = s.iter();
        assert_eq!(it.size_hint(), (5, Some(5)));
        assert_eq!(s.iter().count(), 5);
    }
}
