//! Databases of Boolean tuples: the "competition" `D = {t_1 ... t_N}`.

use std::fmt;
use std::sync::Arc;

use crate::{Query, QueryLog, Schema, Tuple, TupleId};

/// An immutable collection of Boolean tuples over a shared [`Schema`].
///
/// Needed by the SOC-CB-D variant (domination counts) and by SOC-Topk
/// (rank computation); plain SOC-CB-QL never reads it (§II.A).
#[derive(Clone)]
pub struct Database {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
}

impl Database {
    /// Builds a database from tuples over `schema`.
    ///
    /// # Panics
    /// Panics if any tuple's universe differs from the schema width.
    pub fn new(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Self {
        for t in &tuples {
            assert_eq!(
                t.universe(),
                schema.len(),
                "tuple universe does not match schema width"
            );
        }
        Self { schema, tuples }
    }

    /// Parses Fig-1-style bit-vector rows into a database.
    pub fn from_bitstrings(rows: &[&str]) -> Option<Self> {
        let width = rows.first().map_or(0, |r| r.len());
        let mut tuples = Vec::with_capacity(rows.len());
        for r in rows {
            if r.len() != width {
                return None;
            }
            tuples.push(Tuple::from_bitstring(r)?);
        }
        Some(Self::new(Arc::new(Schema::anonymous(width)), tuples))
    }

    /// The shared schema.
    #[inline]
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples `N`.
    #[inline]
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the database holds no tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Number of attributes `M`.
    #[inline]
    pub fn num_attrs(&self) -> usize {
        self.schema.len()
    }

    /// The tuples in insertion order.
    #[inline]
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// The tuple with the given id.
    pub fn tuple(&self, id: TupleId) -> &Tuple {
        &self.tuples[id.0 as usize]
    }

    /// Iterates `(TupleId, &Tuple)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (TupleId, &Tuple)> {
        self.tuples.iter().enumerate().map(|(i, t)| {
            (
                TupleId(u32::try_from(i).expect("tuple index exceeds u32::MAX")),
                t,
            )
        })
    }

    /// Boolean retrieval `R(q)`: ids of tuples matching the query.
    pub fn retrieve(&self, q: &Query) -> Vec<TupleId> {
        self.iter()
            .filter(|(_, t)| q.matches(t))
            .map(|(id, _)| id)
            .collect()
    }

    /// Number of tuples matching the query, without materializing ids.
    pub fn retrieve_count(&self, q: &Query) -> usize {
        self.tuples.iter().filter(|t| q.matches(t)).count()
    }

    /// SOC-CB-D objective: number of database tuples dominated by `t`.
    pub fn dominated_count(&self, t: &Tuple) -> usize {
        self.tuples.iter().filter(|u| t.dominates(u)).count()
    }

    /// Ids of database tuples dominated by `t`.
    pub fn dominated_ids(&self, t: &Tuple) -> Vec<TupleId> {
        self.iter()
            .filter(|(_, u)| t.dominates(u))
            .map(|(id, _)| id)
            .collect()
    }

    /// Reinterprets the database as a query log (each tuple becomes a
    /// conjunctive query). This is exactly how the paper reduces SOC-CB-D
    /// to SOC-CB-QL (§V): `t'` dominates `u` iff the "query" `u`
    /// retrieves `t'`.
    #[must_use]
    pub fn as_query_log(&self) -> QueryLog {
        QueryLog::new(
            Arc::clone(&self.schema),
            self.tuples
                .iter()
                .map(|t| Query::new(t.attrs().clone()))
                .collect(),
        )
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Database")
            .field("num_tuples", &self.len())
            .field("num_attrs", &self.num_attrs())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The database of the paper's Fig 1.
    fn fig1_db() -> Database {
        Database::from_bitstrings(&[
            "010100", "011000", "100111", "110101", "110000", "010100", "001100",
        ])
        .unwrap()
    }

    #[test]
    fn paper_domination_example() {
        let db = fig1_db();
        // §II.B: t' = [1,1,0,1,0,1] dominates t1, t4, t5, t6.
        let t = Tuple::from_bitstring("110101").unwrap();
        assert_eq!(db.dominated_count(&t), 4);
        assert_eq!(
            db.dominated_ids(&t),
            vec![TupleId(0), TupleId(3), TupleId(4), TupleId(5)]
        );
    }

    #[test]
    fn retrieval() {
        let db = fig1_db();
        // q3 = {FourDoor, PowerDoors} matches t1, t4, t6.
        let q3 = Query::from_bitstring("010100").unwrap();
        assert_eq!(db.retrieve(&q3), vec![TupleId(0), TupleId(3), TupleId(5)]);
        assert_eq!(db.retrieve_count(&q3), 3);
    }

    #[test]
    fn as_query_log_reduction_preserves_objective() {
        let db = fig1_db();
        let log = db.as_query_log();
        for bits in ["110101", "110100", "000000", "111111"] {
            let t = Tuple::from_bitstring(bits).unwrap();
            assert_eq!(db.dominated_count(&t), log.satisfied_count(&t), "{bits}");
        }
    }

    #[test]
    #[should_panic(expected = "does not match schema")]
    fn schema_width_enforced() {
        let schema = Arc::new(Schema::anonymous(3));
        let t = Tuple::from_bitstring("0101").unwrap();
        let _ = Database::new(schema, vec![t]);
    }
}
