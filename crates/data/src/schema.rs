//! Attribute schemas: the named universe a database and query log share.

use std::collections::HashMap;
use std::fmt;

/// A typed index identifying one Boolean attribute of a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's position in its schema.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// The set of named Boolean attributes over which tuples and queries are
/// defined (the paper's `A = {a_1 ... a_M}`).
///
/// A schema is immutable after construction; databases, query logs and
/// algorithms all reference the same schema and agree on `M = schema.len()`.
#[derive(Clone, Debug)]
pub struct Schema {
    names: Vec<String>,
    by_name: HashMap<String, AttrId>,
}

impl Schema {
    /// Builds a schema from attribute names.
    ///
    /// # Panics
    /// Panics if two attributes share a name — lookups by name would be
    /// ambiguous and silently wrong otherwise.
    pub fn new<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        let mut by_name = HashMap::with_capacity(names.len());
        for (i, n) in names.iter().enumerate() {
            let prev = by_name.insert(
                n.clone(),
                AttrId(u32::try_from(i).expect("schema exceeds u32::MAX attributes")),
            );
            assert!(prev.is_none(), "duplicate attribute name {n:?}");
        }
        Self { names, by_name }
    }

    /// Builds an anonymous schema of `m` attributes named `attr0..attr{m-1}`.
    pub fn anonymous(m: usize) -> Self {
        Self::new((0..m).map(|i| format!("attr{i}")))
    }

    /// Number of attributes `M`.
    #[inline]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if the schema has no attributes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of attribute `id`.
    ///
    /// # Panics
    /// Panics if `id` is out of range for this schema.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.index()]
    }

    /// Looks up an attribute by name.
    pub fn attr(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// All attribute names in schema order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Iterates over `(AttrId, name)` pairs in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names.iter().enumerate().map(|(i, n)| {
            (
                AttrId(u32::try_from(i).expect("attribute index exceeds u32::MAX")),
                n.as_str(),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup() {
        let s = Schema::new(["ac", "four_door", "turbo"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.attr("turbo"), Some(AttrId(2)));
        assert_eq!(s.attr("missing"), None);
        assert_eq!(s.name(AttrId(0)), "ac");
    }

    #[test]
    fn anonymous_names() {
        let s = Schema::anonymous(4);
        assert_eq!(s.name(AttrId(3)), "attr3");
        assert_eq!(s.attr("attr0"), Some(AttrId(0)));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_panics() {
        let _ = Schema::new(["x", "x"]);
    }

    #[test]
    fn iter_order() {
        let s = Schema::new(["a", "b"]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![(AttrId(0), "a"), (AttrId(1), "b")]);
    }
}
