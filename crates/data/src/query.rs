//! Conjunctive Boolean queries (§II.A).

use std::fmt;

use crate::{AttrSet, Tuple};

/// Identifier of a query within a [`crate::QueryLog`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QueryId(pub u32);

/// A conjunctive Boolean query: the set of attributes that must all be 1.
///
/// `{a_1, a_3}` means "return all tuples with `a_1 = 1` and `a_3 = 1`".
/// Equivalently (§II.A), a tuple `t` is retrieved by `q` iff `t` dominates
/// `q` viewed as a tuple, i.e. `q ⊆ t`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Query {
    attrs: AttrSet,
}

impl Query {
    /// Wraps an attribute set as a conjunctive query.
    pub fn new(attrs: AttrSet) -> Self {
        Self { attrs }
    }

    /// Builds a query from the indices of the attributes it constrains.
    pub fn from_indices<I: IntoIterator<Item = usize>>(universe: usize, indices: I) -> Self {
        Self::new(AttrSet::from_indices(universe, indices))
    }

    /// Parses a Fig-1-style bit-vector string.
    pub fn from_bitstring(s: &str) -> Option<Self> {
        AttrSet::from_bitstring(s).map(Self::new)
    }

    /// The constrained attribute set.
    #[inline]
    pub fn attrs(&self) -> &AttrSet {
        &self.attrs
    }

    /// Number of attributes the query specifies.
    #[inline]
    pub fn len(&self) -> usize {
        self.attrs.count()
    }

    /// True if the query specifies no attribute (it retrieves everything).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Conjunctive Boolean retrieval: does this query retrieve `t`?
    #[inline]
    pub fn matches(&self, t: &Tuple) -> bool {
        self.attrs.is_subset(t.attrs())
    }

    /// Disjunctive Boolean retrieval (§II.B variant): does `t` have at
    /// least one of the query's attributes?
    #[inline]
    pub fn matches_disjunctive(&self, t: &Tuple) -> bool {
        !self.attrs.is_disjoint(t.attrs())
    }
}

impl fmt::Debug for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Query({})", self.attrs.to_bitstring())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunctive_matching() {
        // Fig 1: q2 = {AC, PowerDoors} matches t3 = [1,0,0,1,1,1].
        let q2 = Query::from_bitstring("100100").unwrap();
        let t3 = Tuple::from_bitstring("100111").unwrap();
        let t2 = Tuple::from_bitstring("011000").unwrap();
        assert!(q2.matches(&t3));
        assert!(!q2.matches(&t2));
    }

    #[test]
    fn empty_query_matches_everything() {
        let q = Query::from_bitstring("0000").unwrap();
        assert!(q.is_empty());
        assert!(q.matches(&Tuple::from_bitstring("0000").unwrap()));
        assert!(q.matches(&Tuple::from_bitstring("1111").unwrap()));
    }

    #[test]
    fn disjunctive_matching() {
        let q = Query::from_bitstring("1100").unwrap();
        assert!(q.matches_disjunctive(&Tuple::from_bitstring("1000").unwrap()));
        assert!(q.matches_disjunctive(&Tuple::from_bitstring("0100").unwrap()));
        assert!(!q.matches_disjunctive(&Tuple::from_bitstring("0011").unwrap()));
        // Empty query matches nothing disjunctively.
        let e = Query::from_bitstring("0000").unwrap();
        assert!(!e.matches_disjunctive(&Tuple::from_bitstring("1111").unwrap()));
    }
}
