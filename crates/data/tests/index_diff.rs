//! Differential tests for the hybrid inverted index: every indexed
//! counting kernel must agree *exactly* with the retained naive-scan
//! implementation on randomized weighted logs — including deduplicated
//! logs, empty logs, and universes wider than 128 attributes (which
//! spill the bitset's inline two-word storage) — plus cache-validity
//! tests for `clone` and `deduplicate`, and a density × weight sweep
//! (uniform, Zipf-skewed, near-empty, near-full rows) that drives the
//! sparse, dense, and mixed container paths through all three kernels
//! against both the scan baselines and the dense-only build.

use soc_data::{AttrSet, LogIndex, Query, QueryLog, Schema, Tuple};
use soc_rng::StdRng;
use std::sync::Arc;

/// A random weighted log: `s` queries over `universe` attributes with
/// per-attribute density `p`, weights in `1..=max_w`.
fn random_log(rng: &mut StdRng, universe: usize, s: usize, p: f64, max_w: usize) -> QueryLog {
    let queries: Vec<Query> = (0..s)
        .map(|_| {
            Query::new(AttrSet::from_indices(
                universe,
                (0..universe).filter(|_| rng.random_bool(p)),
            ))
        })
        .collect();
    let weights: Vec<usize> = (0..s).map(|_| rng.random_range(1..=max_w)).collect();
    QueryLog::new_weighted(Arc::new(Schema::anonymous(universe)), queries, weights)
}

/// A random attribute subset of the universe.
fn random_set(rng: &mut StdRng, universe: usize, p: f64) -> AttrSet {
    AttrSet::from_indices(universe, (0..universe).filter(|_| rng.random_bool(p)))
}

/// Asserts all four kernels (plus the disjunctive count) agree with
/// their scan baselines on a batch of random operands.
fn assert_kernels_match(rng: &mut StdRng, log: &QueryLog, probes: usize) {
    let universe = log.num_attrs();
    assert_eq!(
        log.attribute_frequencies(),
        log.attribute_frequencies_scan(),
        "attribute_frequencies (S={}, M={universe})",
        log.len()
    );
    for _ in 0..probes {
        let p = rng.random_range(0.05..0.9);
        let items = random_set(rng, universe, p);
        let t = Tuple::new(random_set(rng, universe, p));
        assert_eq!(
            log.satisfied_count(&t),
            log.satisfied_count_scan(&t),
            "satisfied_count (S={}, M={universe}, t={t:?})",
            log.len()
        );
        assert_eq!(
            log.satisfied_count_disjunctive(&t),
            log.satisfied_count_disjunctive_scan(&t),
            "satisfied_count_disjunctive (S={}, M={universe}, t={t:?})",
            log.len()
        );
        assert_eq!(
            log.cooccurrence_count(&items),
            log.cooccurrence_count_scan(&items),
            "cooccurrence_count (S={}, M={universe}, items={items})",
            log.len()
        );
        assert_eq!(
            log.complement_support(&items),
            log.complement_support_scan(&items),
            "complement_support (S={}, M={universe}, items={items})",
            log.len()
        );
    }
}

#[test]
fn indexed_kernels_match_scans_on_random_weighted_logs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..40 {
        let universe = rng.random_range(1..40usize);
        let s = rng.random_range(0..120usize);
        let p = rng.random_range(0.05..0.7);
        let max_w = if trial % 2 == 0 { 1 } else { 9 }; // unit & weighted paths
        let log = random_log(&mut rng, universe, s, p, max_w);
        assert_kernels_match(&mut rng, &log, 12);
    }
}

#[test]
fn indexed_kernels_match_scans_on_deduplicated_logs() {
    let mut rng = StdRng::seed_from_u64(0xDED0);
    for _ in 0..20 {
        let universe = rng.random_range(2..10usize);
        // Few attributes + many queries forces heavy duplication, so
        // deduplicate() produces genuinely merged weights.
        let raw = random_log(&mut rng, universe, 200, 0.3, 3);
        let dedup = raw.deduplicate();
        assert!(dedup.len() < raw.len(), "expected duplicates to merge");
        assert_kernels_match(&mut rng, &dedup, 12);
        // And the two logs agree with each other on every kernel.
        let t = Tuple::new(random_set(&mut rng, universe, 0.5));
        let items = random_set(&mut rng, universe, 0.3);
        assert_eq!(raw.satisfied_count(&t), dedup.satisfied_count(&t));
        assert_eq!(
            raw.cooccurrence_count(&items),
            dedup.cooccurrence_count(&items)
        );
        assert_eq!(
            raw.complement_support(&items),
            dedup.complement_support(&items)
        );
        assert_eq!(raw.attribute_frequencies(), dedup.attribute_frequencies());
    }
}

#[test]
fn indexed_kernels_match_scans_on_empty_logs() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for universe in [0usize, 1, 7, 130] {
        let log = QueryLog::from_attr_sets(universe, Vec::new());
        assert_kernels_match(&mut rng, &log, 8);
        assert_eq!(log.satisfied_count(&Tuple::new(AttrSet::full(universe))), 0);
        assert_eq!(log.complement_support(&AttrSet::empty(universe)), 0);
    }
}

#[test]
fn indexed_kernels_match_scans_beyond_inline_bitset_storage() {
    // Universes > 128 attributes spill AttrSet's inline two-word storage
    // onto the heap; the index must be oblivious to that.
    let mut rng = StdRng::seed_from_u64(0xB16);
    for universe in [129usize, 200, 320] {
        let log = random_log(&mut rng, universe, 90, 0.04, 4);
        assert_kernels_match(&mut rng, &log, 10);
    }
}

#[test]
fn more_queries_than_one_bitmap_word() {
    // S > 64 exercises multi-word accumulator rows and the tail-masking
    // of the final word.
    let mut rng = StdRng::seed_from_u64(0x60D);
    for s in [64usize, 65, 128, 300] {
        let log = random_log(&mut rng, 12, s, 0.25, 2);
        assert_kernels_match(&mut rng, &log, 12);
    }
}

/// A random weighted log with *per-attribute* densities, so individual
/// rows can be forced sparse, dense, near-empty, or near-full.
fn random_log_with_densities(
    rng: &mut StdRng,
    s: usize,
    densities: &[f64],
    max_w: usize,
) -> QueryLog {
    let universe = densities.len();
    let queries: Vec<Query> = (0..s)
        .map(|_| {
            Query::new(AttrSet::from_indices(
                universe,
                (0..universe).filter(|&a| rng.random_bool(densities[a])),
            ))
        })
        .collect();
    let weights: Vec<usize> = (0..s).map(|_| rng.random_range(1..=max_w)).collect();
    QueryLog::new_weighted(Arc::new(Schema::anonymous(universe)), queries, weights)
}

/// Asserts the hybrid build, the dense-only build, and the scan
/// baselines agree on all three kernels (plus the disjunctive count and
/// frequencies) over a batch of random operands.
fn assert_hybrid_dense_scan_agree(rng: &mut StdRng, log: &QueryLog, probes: usize, label: &str) {
    let universe = log.num_attrs();
    let dense = LogIndex::build_dense(log);
    assert_eq!(dense.sparse_rows(), 0, "{label}: dense build must be flat");
    assert_eq!(
        log.attribute_frequencies(),
        dense.attribute_frequencies(),
        "{label}: frequencies"
    );
    for _ in 0..probes {
        let p = rng.random_range(0.05..0.9);
        let items = random_set(rng, universe, p);
        let t = Tuple::new(random_set(rng, universe, p));
        let scan = log.satisfied_count_scan(&t);
        assert_eq!(log.satisfied_count(&t), scan, "{label}: satisfied {t:?}");
        assert_eq!(
            dense.satisfied_count(&t),
            scan,
            "{label}: satisfied/dense {t:?}"
        );
        let scan = log.cooccurrence_count_scan(&items);
        assert_eq!(
            log.cooccurrence_count(&items),
            scan,
            "{label}: cooccurrence {items}"
        );
        assert_eq!(
            dense.cooccurrence_count(&items),
            scan,
            "{label}: cooccurrence/dense {items}"
        );
        let scan = log.complement_support_scan(&items);
        assert_eq!(
            log.complement_support(&items),
            scan,
            "{label}: complement {items}"
        );
        assert_eq!(
            dense.complement_support(&items),
            scan,
            "{label}: complement/dense {items}"
        );
        assert_eq!(
            log.satisfied_count_disjunctive(&t),
            log.satisfied_count_disjunctive_scan(&t),
            "{label}: disjunctive {t:?}"
        );
    }
}

#[test]
fn density_sweep_uniform_rows() {
    // Uniform per-attribute density swept from near-empty (all rows
    // sparse) through the container threshold to near-full (all rows
    // dense), with unit and general weights.
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for &p in &[0.002, 0.008, 0.015625, 0.02, 0.05, 0.3, 0.9, 0.99] {
        for max_w in [1usize, 7] {
            let densities = vec![p; 24];
            let log = random_log_with_densities(&mut rng, 400, &densities, max_w);
            let label = format!("uniform p={p} max_w={max_w}");
            assert_hybrid_dense_scan_agree(&mut rng, &log, 10, &label);
        }
    }
}

#[test]
fn density_sweep_zipf_skewed_rows() {
    // Zipf-skewed per-attribute densities: head attributes are dense,
    // the tail is sparse — the workload shape the hybrid index targets.
    // Both container types appear in one index and most random operand
    // sets mix them.
    let mut rng = StdRng::seed_from_u64(0x21FF);
    for &exponent in &[1.5, 2.5] {
        for max_w in [1usize, 5] {
            let densities: Vec<f64> = (0..32)
                .map(|rank| (0.8 / ((rank + 1) as f64).powf(exponent)).max(0.001))
                .collect();
            let log = random_log_with_densities(&mut rng, 600, &densities, max_w);
            let idx = log.index();
            assert!(
                idx.sparse_rows() > 0 && idx.sparse_rows() < 32,
                "zipf(exp={exponent}) must mix containers, got {} sparse of 32",
                idx.sparse_rows()
            );
            let label = format!("zipf exp={exponent} max_w={max_w}");
            assert_hybrid_dense_scan_agree(&mut rng, &log, 12, &label);
        }
    }
}

#[test]
fn density_sweep_near_empty_and_near_full_rows() {
    // Extremes in one universe: empty rows, singleton rows, all-ones
    // rows, and rows missing a single query — tail-word masking and the
    // full-word weighted-popcount shortcut both get exercised.
    let mut rng = StdRng::seed_from_u64(0xF001);
    for s in [65usize, 127, 200] {
        for max_w in [1usize, 9] {
            let universe = 8;
            let queries: Vec<Query> = (0..s)
                .map(|i| {
                    Query::new(AttrSet::from_indices(
                        universe,
                        (0..universe).filter(|&a| match a {
                            0 => false,      // empty row
                            1 => i == s / 2, // singleton row
                            2 => true,       // full row
                            3 => i != s / 3, // full minus one
                            _ => (i + a) % (a + 1) == 0,
                        }),
                    ))
                })
                .collect();
            let weights: Vec<usize> = (0..s).map(|_| rng.random_range(1..=max_w)).collect();
            let log =
                QueryLog::new_weighted(Arc::new(Schema::anonymous(universe)), queries, weights);
            let idx = log.index();
            assert!(idx.is_sparse(0) && idx.is_sparse(1));
            assert!(!idx.is_sparse(2) && !idx.is_sparse(3));
            let label = format!("extremes s={s} max_w={max_w}");
            assert_hybrid_dense_scan_agree(&mut rng, &log, 12, &label);
        }
    }
}

#[test]
fn threshold_boundary_forces_both_containers_in_one_operand_set() {
    // Rows with cardinalities straddling the strict `card * 64 < S`
    // rule: at S = 320 the boundary is card 5 — card 4 goes sparse,
    // card 5 dense. One operand set spanning the boundary drives the
    // mixed sparse∧dense kernel paths.
    let s = 320usize;
    let universe = 4;
    let queries: Vec<Query> = (0..s)
        .map(|i| {
            Query::new(AttrSet::from_indices(
                universe,
                (0..universe).filter(|&a| match a {
                    0 => i < 4, // just under: sparse
                    1 => i < 5, // exactly at: dense (strict inequality)
                    2 => i < 6, // just over: dense
                    _ => i % 2 == 0,
                }),
            ))
        })
        .collect();
    let log = QueryLog::from_attr_sets(
        universe,
        queries.into_iter().map(|q| q.attrs().clone()).collect(),
    );
    let idx = log.index();
    assert!(idx.is_sparse(0), "card 4 of 320 must be sparse");
    assert!(
        !idx.is_sparse(1),
        "card 5 of 320 must be dense (boundary is strict)"
    );
    assert!(!idx.is_sparse(2));

    let mut rng = StdRng::seed_from_u64(0xB0D1);
    // The full operand set mixes one sparse and three dense rows; the
    // pairs hit sparse∧dense and dense∧dense directly.
    for probe in [
        AttrSet::from_indices(universe, [0, 1]),
        AttrSet::from_indices(universe, [0, 3]),
        AttrSet::from_indices(universe, [1, 2]),
        AttrSet::from_indices(universe, [0, 1, 2, 3]),
    ] {
        assert_eq!(
            log.cooccurrence_count(&probe),
            log.cooccurrence_count_scan(&probe),
            "cooccurrence {probe}"
        );
        assert_eq!(
            log.complement_support(&probe),
            log.complement_support_scan(&probe),
            "complement {probe}"
        );
    }
    assert_hybrid_dense_scan_agree(&mut rng, &log, 10, "threshold boundary");
}

#[test]
fn sparse_vs_sparse_galloping_sizes() {
    // Two sparse rows with lopsided entry counts (1 : 8) push the
    // sparse∧sparse intersection onto its galloping path; comparable
    // counts take the linear merge. Both must match the scan.
    let s = 4096usize;
    let universe = 3;
    let sets: Vec<AttrSet> = (0..s)
        .map(|i| {
            AttrSet::from_indices(
                universe,
                (0..universe).filter(|&a| match a {
                    0 => i % 1024 == 0, // 4 ids
                    1 => i % 16 == 0,   // 256 ids: 256 * 64 > 4096 — dense
                    _ => i % 128 == 7,  // 32 ids, sparse
                }),
            )
        })
        .collect();
    let log = QueryLog::from_attr_sets(universe, sets);
    let idx = log.index();
    assert!(idx.is_sparse(0) && idx.is_sparse(2));
    assert!(!idx.is_sparse(1), "256 ids of 4096 sit above the 1/64 rule");
    for probe in [
        AttrSet::from_indices(universe, [0, 2]), // sparse ∧ sparse, gallop
        AttrSet::from_indices(universe, [0, 1]), // sparse ∧ dense probe
        AttrSet::from_indices(universe, [1, 2]),
        AttrSet::from_indices(universe, [0, 1, 2]),
    ] {
        assert_eq!(
            log.cooccurrence_count(&probe),
            log.cooccurrence_count_scan(&probe),
            "{probe}"
        );
    }
}

#[test]
fn clone_shares_a_valid_index() {
    let mut rng = StdRng::seed_from_u64(0xC10E);
    let log = random_log(&mut rng, 16, 80, 0.3, 3);
    let t = Tuple::new(random_set(&mut rng, 16, 0.5));

    // Force the original to build and cache its index, then clone.
    let before = log.satisfied_count(&t);
    let clone = log.clone();
    // The clone holds byte-identical queries and weights, so a carried
    // index is *valid* (never stale): both logs must agree with the
    // clone's own scan baseline on every kernel.
    assert_eq!(clone.satisfied_count(&t), before);
    assert_eq!(clone.satisfied_count(&t), clone.satisfied_count_scan(&t));
    assert_kernels_match(&mut rng, &clone, 8);
}

#[test]
fn deduplicate_does_not_carry_a_stale_index() {
    let mut rng = StdRng::seed_from_u64(0x57A1E);
    // Duplicate-heavy raw log; prime its index cache BEFORE deriving.
    let raw = random_log(&mut rng, 6, 150, 0.35, 2);
    let t = Tuple::new(random_set(&mut rng, 6, 0.6));
    let _ = raw.satisfied_count(&t); // cache built over 150 queries

    let dedup = raw.deduplicate();
    assert!(dedup.len() < raw.len());
    // A stale (shared) index would count 150 query-id bits against the
    // dedup'd log's shorter weight vector; the fresh index must agree
    // with the dedup'd scan baseline exactly.
    assert_kernels_match(&mut rng, &dedup, 10);
    assert_eq!(dedup.satisfied_count(&t), raw.satisfied_count(&t));
}

#[test]
fn filter_and_complement_do_not_carry_a_stale_index() {
    let mut rng = StdRng::seed_from_u64(0xF117);
    let log = random_log(&mut rng, 10, 70, 0.3, 3);
    let t = Tuple::new(random_set(&mut rng, 10, 0.5));
    let _ = log.satisfied_count(&t); // prime the cache

    let filtered = log.filter(|q| q.attrs().contains(0));
    assert_kernels_match(&mut rng, &filtered, 8);

    let complemented = log.complement();
    assert_kernels_match(&mut rng, &complemented, 8);
}
