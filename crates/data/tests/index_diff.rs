//! Differential tests for the inverted bitmap index: every indexed
//! counting kernel must agree *exactly* with the retained naive-scan
//! implementation on randomized weighted logs — including deduplicated
//! logs, empty logs, and universes wider than 128 attributes (which
//! spill the bitset's inline two-word storage) — plus cache-validity
//! tests for `clone` and `deduplicate`.

use soc_data::{AttrSet, Query, QueryLog, Schema, Tuple};
use soc_rng::StdRng;
use std::sync::Arc;

/// A random weighted log: `s` queries over `universe` attributes with
/// per-attribute density `p`, weights in `1..=max_w`.
fn random_log(rng: &mut StdRng, universe: usize, s: usize, p: f64, max_w: usize) -> QueryLog {
    let queries: Vec<Query> = (0..s)
        .map(|_| {
            Query::new(AttrSet::from_indices(
                universe,
                (0..universe).filter(|_| rng.random_bool(p)),
            ))
        })
        .collect();
    let weights: Vec<usize> = (0..s).map(|_| rng.random_range(1..=max_w)).collect();
    QueryLog::new_weighted(Arc::new(Schema::anonymous(universe)), queries, weights)
}

/// A random attribute subset of the universe.
fn random_set(rng: &mut StdRng, universe: usize, p: f64) -> AttrSet {
    AttrSet::from_indices(universe, (0..universe).filter(|_| rng.random_bool(p)))
}

/// Asserts all four kernels (plus the disjunctive count) agree with
/// their scan baselines on a batch of random operands.
fn assert_kernels_match(rng: &mut StdRng, log: &QueryLog, probes: usize) {
    let universe = log.num_attrs();
    assert_eq!(
        log.attribute_frequencies(),
        log.attribute_frequencies_scan(),
        "attribute_frequencies (S={}, M={universe})",
        log.len()
    );
    for _ in 0..probes {
        let p = rng.random_range(0.05..0.9);
        let items = random_set(rng, universe, p);
        let t = Tuple::new(random_set(rng, universe, p));
        assert_eq!(
            log.satisfied_count(&t),
            log.satisfied_count_scan(&t),
            "satisfied_count (S={}, M={universe}, t={t:?})",
            log.len()
        );
        assert_eq!(
            log.satisfied_count_disjunctive(&t),
            log.satisfied_count_disjunctive_scan(&t),
            "satisfied_count_disjunctive (S={}, M={universe}, t={t:?})",
            log.len()
        );
        assert_eq!(
            log.cooccurrence_count(&items),
            log.cooccurrence_count_scan(&items),
            "cooccurrence_count (S={}, M={universe}, items={items})",
            log.len()
        );
        assert_eq!(
            log.complement_support(&items),
            log.complement_support_scan(&items),
            "complement_support (S={}, M={universe}, items={items})",
            log.len()
        );
    }
}

#[test]
fn indexed_kernels_match_scans_on_random_weighted_logs() {
    let mut rng = StdRng::seed_from_u64(0xD1FF);
    for trial in 0..40 {
        let universe = rng.random_range(1..40usize);
        let s = rng.random_range(0..120usize);
        let p = rng.random_range(0.05..0.7);
        let max_w = if trial % 2 == 0 { 1 } else { 9 }; // unit & weighted paths
        let log = random_log(&mut rng, universe, s, p, max_w);
        assert_kernels_match(&mut rng, &log, 12);
    }
}

#[test]
fn indexed_kernels_match_scans_on_deduplicated_logs() {
    let mut rng = StdRng::seed_from_u64(0xDED0);
    for _ in 0..20 {
        let universe = rng.random_range(2..10usize);
        // Few attributes + many queries forces heavy duplication, so
        // deduplicate() produces genuinely merged weights.
        let raw = random_log(&mut rng, universe, 200, 0.3, 3);
        let dedup = raw.deduplicate();
        assert!(dedup.len() < raw.len(), "expected duplicates to merge");
        assert_kernels_match(&mut rng, &dedup, 12);
        // And the two logs agree with each other on every kernel.
        let t = Tuple::new(random_set(&mut rng, universe, 0.5));
        let items = random_set(&mut rng, universe, 0.3);
        assert_eq!(raw.satisfied_count(&t), dedup.satisfied_count(&t));
        assert_eq!(
            raw.cooccurrence_count(&items),
            dedup.cooccurrence_count(&items)
        );
        assert_eq!(
            raw.complement_support(&items),
            dedup.complement_support(&items)
        );
        assert_eq!(raw.attribute_frequencies(), dedup.attribute_frequencies());
    }
}

#[test]
fn indexed_kernels_match_scans_on_empty_logs() {
    let mut rng = StdRng::seed_from_u64(0xE3);
    for universe in [0usize, 1, 7, 130] {
        let log = QueryLog::from_attr_sets(universe, Vec::new());
        assert_kernels_match(&mut rng, &log, 8);
        assert_eq!(log.satisfied_count(&Tuple::new(AttrSet::full(universe))), 0);
        assert_eq!(log.complement_support(&AttrSet::empty(universe)), 0);
    }
}

#[test]
fn indexed_kernels_match_scans_beyond_inline_bitset_storage() {
    // Universes > 128 attributes spill AttrSet's inline two-word storage
    // onto the heap; the index must be oblivious to that.
    let mut rng = StdRng::seed_from_u64(0xB16);
    for universe in [129usize, 200, 320] {
        let log = random_log(&mut rng, universe, 90, 0.04, 4);
        assert_kernels_match(&mut rng, &log, 10);
    }
}

#[test]
fn more_queries_than_one_bitmap_word() {
    // S > 64 exercises multi-word accumulator rows and the tail-masking
    // of the final word.
    let mut rng = StdRng::seed_from_u64(0x60D);
    for s in [64usize, 65, 128, 300] {
        let log = random_log(&mut rng, 12, s, 0.25, 2);
        assert_kernels_match(&mut rng, &log, 12);
    }
}

#[test]
fn clone_shares_a_valid_index() {
    let mut rng = StdRng::seed_from_u64(0xC10E);
    let log = random_log(&mut rng, 16, 80, 0.3, 3);
    let t = Tuple::new(random_set(&mut rng, 16, 0.5));

    // Force the original to build and cache its index, then clone.
    let before = log.satisfied_count(&t);
    let clone = log.clone();
    // The clone holds byte-identical queries and weights, so a carried
    // index is *valid* (never stale): both logs must agree with the
    // clone's own scan baseline on every kernel.
    assert_eq!(clone.satisfied_count(&t), before);
    assert_eq!(clone.satisfied_count(&t), clone.satisfied_count_scan(&t));
    assert_kernels_match(&mut rng, &clone, 8);
}

#[test]
fn deduplicate_does_not_carry_a_stale_index() {
    let mut rng = StdRng::seed_from_u64(0x57A1E);
    // Duplicate-heavy raw log; prime its index cache BEFORE deriving.
    let raw = random_log(&mut rng, 6, 150, 0.35, 2);
    let t = Tuple::new(random_set(&mut rng, 6, 0.6));
    let _ = raw.satisfied_count(&t); // cache built over 150 queries

    let dedup = raw.deduplicate();
    assert!(dedup.len() < raw.len());
    // A stale (shared) index would count 150 query-id bits against the
    // dedup'd log's shorter weight vector; the fresh index must agree
    // with the dedup'd scan baseline exactly.
    assert_kernels_match(&mut rng, &dedup, 10);
    assert_eq!(dedup.satisfied_count(&t), raw.satisfied_count(&t));
}

#[test]
fn filter_and_complement_do_not_carry_a_stale_index() {
    let mut rng = StdRng::seed_from_u64(0xF117);
    let log = random_log(&mut rng, 10, 70, 0.3, 3);
    let t = Tuple::new(random_set(&mut rng, 10, 0.5));
    let _ = log.satisfied_count(&t); // prime the cache

    let filtered = log.filter(|q| q.attrs().contains(0));
    assert_kernels_match(&mut rng, &filtered, 8);

    let complemented = log.complement();
    assert_kernels_match(&mut rng, &complemented, 8);
}
