//! Property-based tests for the data substrate: bitset algebra laws,
//! domination/compression invariants, and reduction exactness.

use proptest::prelude::*;
use soc_data::numeric::{NumTuple, Range, RangeQuery};
use soc_data::{AttrSet, Combinations, Database, QueryLog, Tuple};

const UNIVERSE: usize = 96; // spans more than one word

fn attr_set() -> impl Strategy<Value = AttrSet> {
    proptest::collection::vec(any::<bool>(), UNIVERSE).prop_map(|bits| AttrSet::from_bools(&bits))
}

proptest! {
    #[test]
    fn union_is_commutative_and_idempotent(a in attr_set(), b in attr_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in attr_set(), b in attr_set(), c in attr_set()
    ) {
        let lhs = a.intersection(&b.union(&c));
        let rhs = a.intersection(&b).union(&a.intersection(&c));
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn de_morgan(a in attr_set(), b in attr_set()) {
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        prop_assert_eq!(
            a.intersection(&b).complement(),
            a.complement().union(&b.complement())
        );
    }

    #[test]
    fn complement_is_involutive(a in attr_set()) {
        prop_assert_eq!(a.complement().complement(), a);
    }

    #[test]
    fn subset_iff_difference_empty(a in attr_set(), b in attr_set()) {
        prop_assert_eq!(a.is_subset(&b), a.difference(&b).is_empty());
        prop_assert_eq!(a.is_disjoint(&b), a.intersection(&b).is_empty());
    }

    #[test]
    fn count_inclusion_exclusion(a in attr_set(), b in attr_set()) {
        prop_assert_eq!(
            a.union(&b).count() + a.intersection(&b).count(),
            a.count() + b.count()
        );
        prop_assert_eq!(a.intersection_count(&b), a.intersection(&b).count());
    }

    #[test]
    fn iter_roundtrip(a in attr_set()) {
        let rebuilt = AttrSet::from_indices(UNIVERSE, a.iter());
        prop_assert_eq!(rebuilt, a);
    }

    #[test]
    fn subset_relation_matches_membership(a in attr_set(), b in attr_set()) {
        let expected = a.iter().all(|i| b.contains(i));
        prop_assert_eq!(a.is_subset(&b), expected);
    }
}

proptest! {
    /// Every m-compression is dominated by the original and has exactly
    /// min(m, |t|) attributes; the enumeration is duplicate-free and
    /// complete in count.
    #[test]
    fn compressions_invariants(bits in proptest::collection::vec(any::<bool>(), 1..16usize), m in 0..6usize) {
        let t = Tuple::new(AttrSet::from_bools(&bits));
        let ones = t.count();
        let all: Vec<Tuple> = t.compressions(m).collect();
        let expected = Combinations::count_total(ones, m.min(ones));
        prop_assert_eq!(all.len() as u128, expected);
        let mut seen = std::collections::HashSet::new();
        for c in &all {
            prop_assert!(t.dominates(c));
            prop_assert_eq!(c.count(), m.min(ones));
            prop_assert!(seen.insert(c.attrs().to_bitstring()));
        }
    }
}

/// Random small query logs for cross-checks.
fn small_log() -> impl Strategy<Value = QueryLog> {
    proptest::collection::vec(proptest::collection::vec(any::<bool>(), 10), 0..12).prop_map(
        |rows| {
            let sets = rows.iter().map(|r| AttrSet::from_bools(r)).collect();
            QueryLog::from_attr_sets(10, sets)
        },
    )
}

proptest! {
    /// complement_support over Q == direct support over materialized ~Q.
    #[test]
    fn complement_support_identity(
        log in small_log(),
        items in proptest::collection::vec(any::<bool>(), 10)
    ) {
        let items = AttrSet::from_bools(&items);
        let direct = log.complement_support(&items);
        let comp = log.complement();
        let materialized = comp
            .queries()
            .iter()
            .filter(|q| items.is_subset(q.attrs()))
            .count();
        prop_assert_eq!(direct, materialized);
    }

    /// SOC-CB-D reduction: domination counts equal satisfaction counts in
    /// the database-as-query-log.
    #[test]
    fn database_as_log_reduction(
        rows in proptest::collection::vec(proptest::collection::vec(any::<bool>(), 8), 0..12),
        tbits in proptest::collection::vec(any::<bool>(), 8)
    ) {
        let tuples = rows.iter().map(|r| Tuple::new(AttrSet::from_bools(r))).collect();
        let db = Database::new(std::sync::Arc::new(soc_data::Schema::anonymous(8)), tuples);
        let log = db.as_query_log();
        let t = Tuple::new(AttrSet::from_bools(&tbits));
        prop_assert_eq!(db.dominated_count(&t), log.satisfied_count(&t));
    }
}

fn range_query(width: usize) -> impl Strategy<Value = RangeQuery> {
    proptest::collection::vec(proptest::option::of((0.0..50.0f64, 0.0..50.0f64)), width).prop_map(
        |conds| RangeQuery {
            conditions: conds
                .into_iter()
                .map(|c| c.map(|(a, b)| Range::new(a.min(b), a.max(b))))
                .collect(),
        },
    )
}

proptest! {
    /// Exact numeric reduction: the reduced Boolean objective equals the
    /// direct numeric objective for every published subset of a random
    /// sample.
    #[test]
    fn numeric_reduction_exact(
        queries in proptest::collection::vec(range_query(6), 0..8),
        values in proptest::collection::vec(0.0..50.0f64, 6),
        published in proptest::collection::vec(any::<bool>(), 6)
    ) {
        let t = NumTuple { values };
        let red = soc_data::numeric::reduce_numeric(&queries, &t);
        let published = AttrSet::from_bools(&published);
        let direct = queries.iter().filter(|q| q.matches(&t, &published)).count();
        let reduced = red.log.satisfied_count(&Tuple::new(published.clone()));
        prop_assert_eq!(direct, reduced);
    }
}

mod io_props {
    use super::*;
    use soc_data::io::{parse_query_log, write_query_log};

    proptest! {
        /// Any weighted log survives a write → parse round trip.
        #[test]
        fn querylog_roundtrip(
            rows in proptest::collection::vec(
                (proptest::collection::vec(any::<bool>(), 9), 1usize..5), 0..12),
        ) {
            let (queries, weights): (Vec<_>, Vec<_>) = rows
                .iter()
                .map(|(bits, w)| (soc_data::Query::new(AttrSet::from_bools(bits)), *w))
                .unzip();
            let log = QueryLog::new_weighted(
                std::sync::Arc::new(soc_data::Schema::anonymous(9)),
                queries,
                weights,
            );
            let text = write_query_log(&log);
            let back = parse_query_log(&text).unwrap();
            prop_assert_eq!(back.len(), log.len());
            prop_assert_eq!(back.total_weight(), log.total_weight());
            for (id, q) in log.iter() {
                prop_assert_eq!(back.query(id), q);
                prop_assert_eq!(back.weight(id), log.weight(id));
            }
        }

        /// The parser never panics on arbitrary input.
        #[test]
        fn parser_is_total(text in ".{0,300}") {
            let _ = parse_query_log(&text);
            let _ = soc_data::io::parse_database(&text);
        }
    }
}
