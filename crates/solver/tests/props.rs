//! Property-based validation of the solver: branch-and-bound must agree
//! with exhaustive 0/1 enumeration, and the LP relaxation must bound the
//! integer optimum from the correct side.

use proptest::prelude::*;
use soc_solver::{Cmp, LinExpr, MipOptions, Model, Sense};

#[derive(Clone, Debug)]
struct RandomBip {
    nvars: usize,
    objective: Vec<i32>,
    /// Constraints: (coefficients, rhs), all `<=`.
    constraints: Vec<(Vec<i32>, i32)>,
}

fn random_bip() -> impl Strategy<Value = RandomBip> {
    (2usize..7).prop_flat_map(|nvars| {
        let obj = proptest::collection::vec(-5..10i32, nvars);
        let cons =
            proptest::collection::vec((proptest::collection::vec(-3..6i32, nvars), 0..12i32), 0..5);
        (Just(nvars), obj, cons).prop_map(|(nvars, objective, constraints)| RandomBip {
            nvars,
            objective,
            constraints,
        })
    })
}

fn build(bip: &RandomBip) -> (Model, Vec<soc_solver::VarId>) {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..bip.nvars).map(|_| m.add_binary()).collect();
    m.set_objective(LinExpr::from_terms(
        bip.objective
            .iter()
            .zip(&vars)
            .map(|(&c, &v)| (c as f64, v)),
    ));
    for (coefs, rhs) in &bip.constraints {
        m.add_constraint(
            LinExpr::from_terms(coefs.iter().zip(&vars).map(|(&c, &v)| (c as f64, v))),
            Cmp::Le,
            *rhs as f64,
        );
    }
    (m, vars)
}

/// Exhaustive optimum over all 2^n assignments; `None` if infeasible.
fn brute_force(bip: &RandomBip) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << bip.nvars) {
        let x: Vec<i64> = (0..bip.nvars).map(|j| ((mask >> j) & 1) as i64).collect();
        let feasible = bip.constraints.iter().all(|(coefs, rhs)| {
            let lhs: i64 = coefs.iter().zip(&x).map(|(&c, &v)| c as i64 * v).sum();
            lhs <= *rhs as i64
        });
        if feasible {
            let obj: i64 = bip
                .objective
                .iter()
                .zip(&x)
                .map(|(&c, &v)| c as i64 * v)
                .sum();
            best = Some(best.map_or(obj, |b: i64| b.max(obj)));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mip_matches_exhaustive_enumeration(bip in random_bip()) {
        let expected = brute_force(&bip);
        let (model, _) = build(&bip);
        let opts = MipOptions { integral_objective: true, ..Default::default() };
        match (expected, model.solve_mip(&opts)) {
            (Some(best), Ok(sol)) => {
                prop_assert!(
                    (sol.objective - best as f64).abs() < 1e-6,
                    "solver {} vs brute force {best}", sol.objective
                );
                prop_assert!(model.is_feasible(&sol.values, 1e-6));
                prop_assert!(sol.proven_optimal);
            }
            (None, Err(_)) => {} // both infeasible
            (exp, got) => prop_assert!(false, "mismatch: expected {exp:?}, got {got:?}"),
        }
    }

    #[test]
    fn lp_relaxation_bounds_mip_from_above(bip in random_bip()) {
        let (model, _) = build(&bip);
        let lp = model.solve_lp().unwrap();
        let opts = MipOptions { integral_objective: true, ..Default::default() };
        if let Ok(mip) = model.solve_mip(&opts) {
            prop_assert_eq!(lp.status, soc_solver::LpStatus::Optimal);
            prop_assert!(
                lp.objective >= mip.objective - 1e-6,
                "LP bound {} below MIP optimum {}", lp.objective, mip.objective
            );
        }
    }

    /// LP solutions must be primal-feasible (bounds + constraints) even on
    /// adversarial random instances.
    #[test]
    fn lp_solutions_are_feasible(bip in random_bip()) {
        let (model, _) = build(&bip);
        let lp = model.solve_lp().unwrap();
        if lp.status == soc_solver::LpStatus::Optimal {
            for (j, &v) in lp.values.iter().enumerate() {
                prop_assert!((-1e-7..=1.0 + 1e-7).contains(&v), "var {j} = {v}");
            }
            for (coefs, rhs) in &bip.constraints {
                let lhs: f64 = coefs.iter().zip(&lp.values).map(|(&c, &v)| c as f64 * v).sum();
                prop_assert!(lhs <= *rhs as f64 + 1e-6, "constraint violated: {lhs} > {rhs}");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Presolve preserves optima: solving with and without the reduction
    /// pass must agree on random binary programs.
    #[test]
    fn presolve_preserves_optimum(bip in random_bip()) {
        let (model, _) = build(&bip);
        let opts = MipOptions { integral_objective: true, ..Default::default() };
        let with = model.solve_mip(&opts);
        let without = model.solve_mip_no_presolve(&opts);
        match (with, without) {
            (Ok(a), Ok(b)) => {
                prop_assert!((a.objective - b.objective).abs() < 1e-6,
                    "presolved {} vs raw {}", a.objective, b.objective);
                prop_assert!(model.is_feasible(&a.values, 1e-6));
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(false, "disagreement: {a:?} vs {b:?}"),
        }
    }

    /// Presolve never invents feasibility or infeasibility.
    #[test]
    fn presolve_infeasibility_is_sound(bip in random_bip()) {
        let (model, _) = build(&bip);
        let brute = brute_force(&bip);
        match soc_solver::presolve(&model) {
            soc_solver::Presolved::Infeasible => prop_assert!(brute.is_none()),
            soc_solver::Presolved::Reduced { reduced, map } => {
                // Any reduced feasible point expands to a feasible point.
                let opts = MipOptions { integral_objective: true, ..Default::default() };
                if let Ok(sol) = reduced.solve_mip_no_presolve(&opts) {
                    let expanded = map.expand(&sol.values);
                    prop_assert!(model.is_feasible(&expanded, 1e-6));
                }
            }
        }
    }
}
