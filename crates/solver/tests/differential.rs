//! Differential validation of the solve modes: on random 0/1 programs,
//! exhaustive enumeration, the cold branch-and-bound (two-phase primal
//! simplex per node), the warm-started dual-simplex path, and the
//! parallel search must all agree on the optimal objective. The
//! sequential cold mode is the oracle; everything else is compared
//! against it.

use soc_rng::StdRng;
use soc_solver::{Cmp, LinExpr, MipOptions, Model, Sense};

struct RandomBip {
    nvars: usize,
    objective: Vec<i32>,
    /// Constraints: (coefficients, rhs, cmp).
    constraints: Vec<(Vec<i32>, i32, Cmp)>,
}

/// Random binary programs: mixed `<=`/`>=`/`==` rows, positive and
/// negative coefficients, occasionally infeasible.
fn random_bip(rng: &mut StdRng) -> RandomBip {
    let nvars = rng.random_range(2..9usize);
    let objective: Vec<i32> = (0..nvars).map(|_| rng.random_range(-6..11i32)).collect();
    let ncons = rng.random_range(0..6usize);
    let constraints = (0..ncons)
        .map(|_| {
            let coefs: Vec<i32> = (0..nvars).map(|_| rng.random_range(-4..7i32)).collect();
            let cmp = match rng.random_range(0..10u32) {
                0 => Cmp::Eq,
                1 | 2 => Cmp::Ge,
                _ => Cmp::Le,
            };
            let rhs = match cmp {
                Cmp::Eq => rng.random_range(0..5i32),
                Cmp::Ge => rng.random_range(-2..6i32),
                Cmp::Le => rng.random_range(0..14i32),
            };
            (coefs, rhs, cmp)
        })
        .collect();
    RandomBip {
        nvars,
        objective,
        constraints,
    }
}

fn build(bip: &RandomBip) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..bip.nvars).map(|_| m.add_binary()).collect();
    m.set_objective(LinExpr::from_terms(
        bip.objective
            .iter()
            .zip(&vars)
            .map(|(&c, &v)| (c as f64, v)),
    ));
    for (coefs, rhs, cmp) in &bip.constraints {
        m.add_constraint(
            LinExpr::from_terms(coefs.iter().zip(&vars).map(|(&c, &v)| (c as f64, v))),
            *cmp,
            *rhs as f64,
        );
    }
    m
}

/// Exhaustive optimum over all 2^n assignments; `None` if infeasible.
fn brute_force(bip: &RandomBip) -> Option<i64> {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << bip.nvars) {
        let x: Vec<i64> = (0..bip.nvars).map(|j| ((mask >> j) & 1) as i64).collect();
        let feasible = bip.constraints.iter().all(|(coefs, rhs, cmp)| {
            let lhs: i64 = coefs.iter().zip(&x).map(|(&c, &v)| c as i64 * v).sum();
            match cmp {
                Cmp::Le => lhs <= *rhs as i64,
                Cmp::Ge => lhs >= *rhs as i64,
                Cmp::Eq => lhs == *rhs as i64,
            }
        });
        if feasible {
            let obj: i64 = bip
                .objective
                .iter()
                .zip(&x)
                .map(|(&c, &v)| c as i64 * v)
                .sum();
            best = Some(best.map_or(obj, |b: i64| b.max(obj)));
        }
    }
    best
}

fn mode(warm_lp: bool, threads: usize) -> MipOptions {
    MipOptions {
        integral_objective: true,
        warm_lp,
        threads,
        ..Default::default()
    }
}

#[test]
fn cold_warm_and_parallel_match_exhaustive_enumeration() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for case in 0..240 {
        let bip = random_bip(&mut rng);
        let expected = brute_force(&bip);
        let model = build(&bip);
        let cold = model.solve_mip(&mode(false, 1));
        let warm = model.solve_mip(&mode(true, 1));
        let par = model.solve_mip(&mode(true, 4));
        match expected {
            Some(best) => {
                for (name, sol) in [("cold", &cold), ("warm", &warm), ("parallel", &par)] {
                    let sol = sol
                        .as_ref()
                        .unwrap_or_else(|e| panic!("case {case}: {name} errored: {e}"));
                    assert!(
                        (sol.objective - best as f64).abs() < 1e-6,
                        "case {case}: {name} found {} but brute force says {best}",
                        sol.objective
                    );
                    assert!(
                        model.is_feasible(&sol.values, 1e-6),
                        "case {case}: {name} returned an infeasible point"
                    );
                    assert!(sol.proven_optimal, "case {case}: {name} did not prove");
                }
            }
            None => {
                for (name, sol) in [("cold", &cold), ("warm", &warm), ("parallel", &par)] {
                    assert!(
                        sol.is_err(),
                        "case {case}: {name} found a solution to an infeasible program"
                    );
                }
            }
        }
    }
}

#[test]
fn warm_path_reports_warm_solves_and_identical_objectives_without_presolve() {
    // `solve_mip_no_presolve` drives branch-and-bound on the raw model,
    // so warm restores are exercised without presolve shrinking the tree.
    let mut rng = StdRng::seed_from_u64(42);
    let mut warm_hits = 0usize;
    for case in 0..120 {
        let bip = random_bip(&mut rng);
        let model = build(&bip);
        let cold = model.solve_mip_no_presolve(&mode(false, 1));
        let warm = model.solve_mip_no_presolve(&mode(true, 1));
        match (&cold, &warm) {
            (Ok(c), Ok(w)) => {
                assert!(
                    (c.objective - w.objective).abs() < 1e-6,
                    "case {case}: cold {} vs warm {}",
                    c.objective,
                    w.objective
                );
                assert_eq!(c.stats.warm_solves, 0, "cold mode must not warm-start");
                warm_hits += w.stats.warm_solves;
            }
            (Err(_), Err(_)) => {}
            (c, w) => panic!("case {case}: cold {c:?} disagrees with warm {w:?}"),
        }
    }
    assert!(
        warm_hits > 0,
        "the suite never exercised a warm restore — generator too easy"
    );
}

#[test]
fn parallel_search_is_exact_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(7);
    for case in 0..60 {
        let bip = random_bip(&mut rng);
        let model = build(&bip);
        let seq = model.solve_mip(&mode(true, 1));
        for threads in [2, 3, 8] {
            let par = model.solve_mip(&mode(true, threads));
            match (&seq, &par) {
                (Ok(s), Ok(p)) => assert!(
                    (s.objective - p.objective).abs() < 1e-6,
                    "case {case}, {threads} threads: {} vs {}",
                    s.objective,
                    p.objective
                ),
                (Err(_), Err(_)) => {}
                (s, p) => panic!("case {case}, {threads} threads: {s:?} vs {p:?}"),
            }
        }
    }
}
