//! # soc-solver
//!
//! A from-scratch linear-programming and 0/1 integer-programming solver.
//!
//! The ICDE 2008 paper solves its ILP formulation (§IV.B) with an
//! off-the-shelf branch-and-bound solver (lp_solve). No solver crate is
//! available in this workspace's offline dependency set, so this crate
//! provides the substrate: a bounded-variable two-phase primal simplex
//! ([`Model::solve_lp`]) and an LP-based best-first branch-and-bound for
//! binary programs ([`Model::solve_mip`]).
//!
//! ```
//! use soc_solver::{Model, Sense, Cmp, LinExpr, MipOptions};
//!
//! // max x + 2y  s.t.  x + y <= 1,  x,y ∈ {0,1}
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_binary();
//! let y = m.add_binary();
//! m.set_objective(LinExpr::new().plus(1.0, x).plus(2.0, y));
//! m.add_constraint(LinExpr::sum([x, y]), Cmp::Le, 1.0);
//! let sol = m.solve_mip(&MipOptions::default()).unwrap();
//! assert_eq!(sol.objective.round() as i64, 2);
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod branch_bound;
mod model;
mod presolve;
mod simplex;

pub use model::{
    Cmp, LinExpr, LpSolution, LpStatus, MipOptions, MipSolution, Model, Sense, SolveError,
    SolveStats, VarId,
};
pub use presolve::{presolve, presolve_stats, PresolveMap, Presolved};
