//! LP-based branch-and-bound for 0/1 integer programs.
//!
//! Best-first search over binary fixings: each node solves the bounded
//! simplex relaxation with some binaries pinned, prunes against the best
//! incumbent, and branches on the most fractional binary. This reproduces
//! the behaviour the paper observed with its off-the-shelf solver —
//! "carefully designed branch and bound algorithms can efficiently solve
//! problems of moderate size" (§VI), degrading for long query logs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::model::{LpStatus, MipOptions, MipSolution, Model, Sense, SolveError};
use crate::simplex;

struct Node {
    /// Fixed binaries: (var, lower, upper) with lower == upper.
    fixings: Vec<(usize, f64, f64)>,
    /// LP bound of the *parent* (optimistic estimate), in max-space.
    bound: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        self.bound
            .partial_cmp(&other.bound)
            .unwrap_or(Ordering::Equal)
    }
}

/// In max-space: can a node with optimistic `bound` still beat `incumbent`?
fn can_improve(bound: f64, incumbent: f64, opts: &MipOptions) -> bool {
    if opts.integral_objective {
        // The true optimum is integral: a bound of 6.9 cannot beat 6.
        (bound + 1e-6).floor() > incumbent + 1e-9
    } else {
        bound > incumbent + 1e-9
    }
}

pub(crate) fn solve(model: &Model, opts: &MipOptions) -> Result<MipSolution, SolveError> {
    let to_max = |obj: f64| match model.sense {
        Sense::Maximize => obj,
        Sense::Minimize => -obj,
    };
    let from_max = to_max; // involution

    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(j, _)| j)
        .collect();

    // Warm start: accept a caller-provided feasible point as the first
    // incumbent so pruning bites from the root node.
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // in max-space
    if let Some(start) = &opts.initial_solution {
        if model.is_feasible(start, 1e-6) {
            let mut vals = start.clone();
            for &j in &int_vars {
                vals[j] = vals[j].round();
            }
            incumbent = Some((to_max(model.objective_value(&vals)), vals));
        }
    }
    let mut nodes = 0usize;
    let mut heap = BinaryHeap::new();
    heap.push(Node {
        fixings: Vec::new(),
        bound: f64::INFINITY,
    });

    while let Some(node) = heap.pop() {
        if nodes >= opts.max_nodes {
            break;
        }
        if let Some((best, _)) = &incumbent {
            if !can_improve(node.bound, *best, opts) {
                continue; // pruned by a bound computed before incumbent improved
            }
        }
        nodes += 1;

        let lp = simplex::solve_model(model, Some(&node.fixings))?;
        match lp.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => return Err(SolveError::Unbounded),
            LpStatus::Optimal => {}
        }
        let bound = to_max(lp.objective);
        if let Some((best, _)) = &incumbent {
            if !can_improve(bound, *best, opts) {
                continue;
            }
        }

        // Most fractional binary.
        let frac = int_vars
            .iter()
            .copied()
            .map(|j| (j, (lp.values[j] - lp.values[j].round()).abs()))
            .filter(|&(_, f)| f > opts.int_tol)
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));

        match frac {
            None => {
                // Integral: candidate incumbent.
                let mut vals = lp.values.clone();
                for &j in &int_vars {
                    vals[j] = vals[j].round();
                }
                if model.is_feasible(&vals, 1e-6)
                    && incumbent
                        .as_ref()
                        .is_none_or(|(best, _)| bound > *best + 1e-9)
                {
                    incumbent = Some((to_max(model.objective_value(&vals)), vals));
                }
            }
            Some((j, _)) => {
                // Rounding heuristic: try the nearest-integer point once per
                // node; cheap and often supplies an early incumbent.
                let mut rounded = lp.values.clone();
                for &k in &int_vars {
                    rounded[k] = rounded[k].round();
                }
                if model.is_feasible(&rounded, 1e-6) {
                    let v = to_max(model.objective_value(&rounded));
                    if incumbent.as_ref().is_none_or(|(best, _)| v > *best + 1e-9) {
                        incumbent = Some((v, rounded));
                    }
                }
                for fix in [0.0, 1.0] {
                    let mut fixings = node.fixings.clone();
                    fixings.push((j, fix, fix));
                    heap.push(Node { fixings, bound });
                }
            }
        }
    }

    let proven_optimal = heap.is_empty()
        || incumbent
            .as_ref()
            .is_some_and(|(best, _)| heap.iter().all(|n| !can_improve(n.bound, *best, opts)));

    match incumbent {
        Some((best, vals)) => Ok(MipSolution {
            objective: from_max(best),
            values: vals,
            nodes,
            proven_optimal,
        }),
        None => {
            if nodes >= opts.max_nodes {
                Err(SolveError::NodeLimitWithoutIncumbent)
            } else {
                Err(SolveError::Infeasible)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Cmp, LinExpr, MipOptions, Model, Sense};

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary → a + c = 17? check:
        // a+b: w=7 no. a+c: w=5 v=17. b+c: w=6 v=20. → 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective(LinExpr::new().plus(10.0, a).plus(13.0, b).plus(7.0, c));
        m.add_constraint(
            LinExpr::new().plus(3.0, a).plus(4.0, b).plus(2.0, c),
            Cmp::Le,
            6.0,
        );
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!(s.proven_optimal);
        assert_eq!(s.values[1].round() as i64, 1);
        assert_eq!(s.values[2].round() as i64, 1);
    }

    #[test]
    fn minimization_mip() {
        // min a + b + c with a + b >= 1, b + c >= 1, a + c >= 1 → 2 (vertex cover of a triangle).
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective(LinExpr::sum([a, b, c]));
        m.add_constraint(LinExpr::sum([a, b]), Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::sum([b, c]), Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::sum([a, c]), Cmp::Ge, 1.0);
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary();
        let b = m.add_binary();
        m.set_objective(LinExpr::sum([a, b]));
        m.add_constraint(LinExpr::sum([a, b]), Cmp::Ge, 3.0);
        assert!(m.solve_mip(&MipOptions::default()).is_err());
    }

    #[test]
    fn fixed_binaries_respected() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_fixed(false);
        let b = m.add_binary();
        m.set_objective(LinExpr::new().plus(5.0, a).plus(1.0, b));
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert_eq!(s.values[0].round() as i64, 0);
    }

    #[test]
    fn integral_objective_pruning_still_exact() {
        let opts = MipOptions {
            integral_objective: true,
            ..Default::default()
        };
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::sum(vars.iter().copied()));
        m.add_constraint(LinExpr::sum(vars.iter().copied()), Cmp::Le, 5.0);
        let s = m.solve_mip(&opts).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn soc_shaped_model() {
        // The paper's formulation on Fig 1 (§IV.B): should satisfy 3 queries
        // with m = 3.
        // Attributes of t: {0,1,3,4,5} (no turbo). Queries:
        // q1={0,1}, q2={0,3}, q3={1,3}, q4={3,5}, q5={2,4}.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..6)
            .map(|j| {
                if j == 2 {
                    m.add_binary_fixed(false)
                } else {
                    m.add_binary()
                }
            })
            .collect();
        let queries: &[&[usize]] = &[&[0, 1], &[0, 3], &[1, 3], &[3, 5], &[2, 4]];
        let mut obj = LinExpr::new();
        let mut ys = Vec::new();
        for q in queries {
            let y = m.add_binary();
            obj = obj.plus(1.0, y);
            for &j in *q {
                m.add_constraint(LinExpr::new().plus(1.0, y).plus(-1.0, x[j]), Cmp::Le, 0.0);
            }
            ys.push(y);
        }
        m.set_objective(obj);
        m.add_constraint(LinExpr::sum(x.iter().copied()), Cmp::Le, 3.0);
        let s = m
            .solve_mip(&MipOptions {
                integral_objective: true,
                ..Default::default()
            })
            .unwrap();
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        // Retained attributes must be {0,1,3}.
        let retained: Vec<usize> = (0..6).filter(|&j| s.values[j] > 0.5).collect();
        assert_eq!(retained, vec![0, 1, 3]);
    }
}
