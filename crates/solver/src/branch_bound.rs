//! LP-based branch-and-bound for 0/1 integer programs.
//!
//! Best-first search over binary fixings. Each node re-optimizes its LP
//! relaxation *warm* from its parent's basis snapshot (dual simplex, see
//! [`crate::simplex`]) instead of a cold two-phase solve, prunes against
//! a shared incumbent, and branches by pseudocost estimates. A cheap
//! combinatorial pre-bound (the box relaxation of the objective under
//! the child's bounds, maintained in O(1) per fixing) discards children
//! before any pivoting. After branching, the worker *plunges*: it keeps
//! one child and solves it immediately on the same engine, so the warm
//! solve is a dive (shift the bounds in place, dual re-optimize) rather
//! than a basis refactorization; the sibling joins the best-first heap.
//! Node exploration can optionally run on the `soc-pool` work-stealing
//! pool; the sequential mode stays the default and the deterministic
//! differential oracle.
//!
//! This reproduces — and now accelerates — the behaviour the paper
//! observed with its off-the-shelf solver: "carefully designed branch
//! and bound algorithms can efficiently solve problems of moderate size"
//! (§VI), degrading for long query logs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use soc_obs::{counter, histogram};

use crate::model::{LpStatus, MipOptions, MipSolution, Model, Sense, SolveError, SolveStats};
use crate::simplex::{self, Engine, EngineLp, Snapshot};

struct Node {
    /// Fixed binaries: (var, lower, upper) with lower == upper.
    fixings: Vec<(usize, f64, f64)>,
    /// Optimistic estimate in max-space: min(parent LP bound, box bound).
    bound: f64,
    /// Box relaxation of the objective under this node's bounds
    /// (max-space); maintained incrementally from the parent.
    box_bound: f64,
    /// Nearest ancestor's optimal basis, for warm LP restarts.
    snapshot: Option<Arc<Snapshot>>,
    /// Variable fixed to create this node (`usize::MAX` at the root).
    branch_var: usize,
    /// Whether `branch_var` was fixed to 1.
    branch_up: bool,
    /// The parent's LP bound (max-space), for pseudocost updates.
    parent_lp: f64,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound.total_cmp(&other.bound) == Ordering::Equal
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // total_cmp: a NaN bound (numerically failed LP) orders *above*
        // +inf instead of scrambling the heap; `can_improve` then rejects
        // it at pop time, so the node is discarded rather than searched.
        self.bound.total_cmp(&other.bound)
    }
}

/// In max-space: can a node with optimistic `bound` still beat `incumbent`?
fn can_improve(bound: f64, incumbent: f64, opts: &MipOptions) -> bool {
    if opts.integral_objective {
        // The true optimum is integral: a bound of 6.9 cannot beat 6.
        (bound + 1e-6).floor() > incumbent + 1e-9
    } else {
        bound > incumbent + 1e-9
    }
}

/// Per-variable branching history: average LP-bound degradation observed
/// when fixing the variable up (to 1) or down (to 0). Uninitialized
/// directions fall back to the global average, then to fractionality.
struct Pseudocosts {
    sum: [Vec<f64>; 2],
    cnt: [Vec<u32>; 2],
}

impl Pseudocosts {
    fn new(n: usize) -> Self {
        Self {
            sum: [vec![0.0; n], vec![0.0; n]],
            cnt: [vec![0; n], vec![0; n]],
        }
    }

    fn record(&mut self, j: usize, up: bool, degradation: f64) {
        let d = usize::from(up);
        self.sum[d][j] += degradation.max(0.0);
        self.cnt[d][j] += 1;
    }

    fn estimate(&self, j: usize, up: bool, fallback: f64) -> f64 {
        let d = usize::from(up);
        if self.cnt[d][j] > 0 {
            self.sum[d][j] / self.cnt[d][j] as f64
        } else {
            fallback
        }
    }

    fn global_avg(&self, up: bool) -> f64 {
        let d = usize::from(up);
        let total: u32 = self.cnt[d].iter().sum();
        if total == 0 {
            1.0
        } else {
            self.sum[d].iter().sum::<f64>() / total as f64
        }
    }

    /// Product score (larger = branch here): each factor is the expected
    /// bound degradation of one child, floored so an uninformative
    /// direction cannot zero the product.
    fn score(&self, j: usize, frac: f64) -> f64 {
        let down = self.estimate(j, false, self.global_avg(false)) * frac;
        let up = self.estimate(j, true, self.global_avg(true)) * (1.0 - frac);
        down.max(1e-6) * up.max(1e-6)
    }
}

/// State shared by the search workers. Borrowed (not `Arc`ed) into the
/// scoped pool threads; the sequential mode runs the same worker loop
/// inline on the calling thread.
struct Search<'a> {
    model: &'a Model,
    opts: &'a MipOptions,
    int_vars: &'a [usize],
    /// Objective coefficients in max-space (`sign * c`).
    obj_max: &'a [f64],
    heap: Mutex<BinaryHeap<Node>>,
    /// Incumbent values; objective lives in `best_bits` for lock-free
    /// bound checks.
    incumbent: Mutex<Option<Vec<f64>>>,
    /// f64 bits of the incumbent objective (max-space); NEG_INFINITY
    /// when no incumbent exists yet.
    best_bits: AtomicU64,
    nodes: AtomicUsize,
    /// Workers currently holding a popped node (incremented under the
    /// heap lock, decremented only after the node's children are pushed
    /// — the termination invariant).
    active: AtomicUsize,
    stop: AtomicBool,
    error: Mutex<Option<SolveError>>,
    pseudo: Mutex<Pseudocosts>,
    lp_pivots: AtomicUsize,
    dual_pivots: AtomicUsize,
    warm_solves: AtomicUsize,
    cold_solves: AtomicUsize,
    warm_failures: AtomicUsize,
    pre_bound_pruned: AtomicUsize,
    deadline: Option<Instant>,
}

impl Search<'_> {
    fn best(&self) -> f64 {
        f64::from_bits(self.best_bits.load(AtOrd::SeqCst))
    }

    fn try_improve(&self, obj_max: f64, values: Vec<f64>) {
        let mut guard = self.incumbent.lock().expect("incumbent poisoned");
        if guard.is_none() || obj_max > self.best() + 1e-9 {
            *guard = Some(values);
            self.best_bits.store(obj_max.to_bits(), AtOrd::SeqCst);
        }
    }

    fn push_back(&self, node: Node) {
        self.heap.lock().expect("heap poisoned").push(node);
    }

    /// The box relaxation contribution of variable `j` under its model
    /// bounds (max-space): the best the objective term can do on its own.
    fn relaxed_contrib(&self, j: usize) -> f64 {
        let c = self.obj_max[j];
        let v = &self.model.vars[j];
        if c > 0.0 {
            c * v.upper
        } else {
            c * v.lower
        }
    }

    /// Solves one node's LP: warm from the nearest ancestor snapshot when
    /// enabled, cold in the engine layout otherwise, standalone build as
    /// the last resort (node bounds the fixed layout cannot express).
    fn solve_node_lp(&self, engine: &mut Engine, node: &Node) -> Result<EngineLp, SolveError> {
        let fixings = (!node.fixings.is_empty()).then_some(node.fixings.as_slice());
        if self.opts.warm_lp {
            if let Some(snap) = &node.snapshot {
                if let Some(res) = engine.solve_warm(snap, fixings) {
                    self.warm_solves.fetch_add(1, AtOrd::Relaxed);
                    return res;
                }
                self.warm_failures.fetch_add(1, AtOrd::Relaxed);
            }
        }
        self.cold_solves.fetch_add(1, AtOrd::Relaxed);
        if let Some(res) = engine.solve_cold(fixings) {
            return res;
        }
        let lp = simplex::solve_model(self.model, fixings)?;
        Ok(EngineLp {
            status: lp.status,
            objective: lp.objective,
            values: lp.values,
            pivots: 0,
            dual_pivots: 0,
            snapshot: None,
        })
    }

    /// Processes one popped node: limit checks, LP solve, pseudocost
    /// update, incumbent handling, branching. Returns the child to
    /// *plunge* into — the worker solves it next on the same engine, so
    /// the child's parent snapshot matches the live tableau and the
    /// warm solve takes the O(bound-change) dive path instead of a full
    /// refactorization. The sibling goes to the heap as usual.
    fn process(&self, node: Node, engine: &mut Engine) -> Result<Option<Node>, SolveError> {
        let to_max = |obj: f64| match self.model.sense {
            Sense::Maximize => obj,
            Sense::Minimize => -obj,
        };
        if self.nodes.load(AtOrd::SeqCst) >= self.opts.max_nodes
            || self.deadline.is_some_and(|d| Instant::now() >= d)
        {
            // Keep the node in the heap so `proven_optimal` sees it.
            self.stop.store(true, AtOrd::SeqCst);
            self.push_back(node);
            return Ok(None);
        }
        let best = self.best();
        if !can_improve(node.bound, best, self.opts) {
            return Ok(None);
        }
        if self.opts.rel_gap > 0.0
            && best.is_finite()
            && node.bound - best <= self.opts.rel_gap * best.abs().max(1.0)
        {
            self.stop.store(true, AtOrd::SeqCst);
            self.push_back(node);
            return Ok(None);
        }
        self.nodes.fetch_add(1, AtOrd::SeqCst);

        let lp_start = soc_obs::metrics_then_now();
        let lp = self.solve_node_lp(engine, &node)?;
        if let Some(t0) = lp_start {
            let depth = node.fixings.len();
            let us = soc_obs::clock::elapsed_us(t0);
            histogram!("solver.lp_us").record(us);
            histogram!("solver.node_depth").record(depth as u64);
            // Depth-banded LP time: warm dives should make deep nodes
            // cheaper than the root band, and these histograms show it.
            let band = match depth {
                0 => histogram!("solver.lp_us.depth0"),
                1..=3 => histogram!("solver.lp_us.depth1_3"),
                4..=15 => histogram!("solver.lp_us.depth4_15"),
                _ => histogram!("solver.lp_us.depth16p"),
            };
            band.record(us);
        }
        self.lp_pivots.fetch_add(lp.pivots, AtOrd::Relaxed);
        self.dual_pivots.fetch_add(lp.dual_pivots, AtOrd::Relaxed);
        match lp.status {
            LpStatus::Infeasible => return Ok(None),
            LpStatus::Unbounded => return Err(SolveError::Unbounded),
            LpStatus::Optimal => {}
        }
        let bound = to_max(lp.objective);
        if node.branch_var != usize::MAX && node.parent_lp.is_finite() {
            self.pseudo.lock().expect("pseudocosts poisoned").record(
                node.branch_var,
                node.branch_up,
                node.parent_lp - bound,
            );
        }
        if !can_improve(bound, self.best(), self.opts) {
            return Ok(None);
        }

        let fractional: Vec<(usize, f64)> = self
            .int_vars
            .iter()
            .copied()
            .map(|j| (j, lp.values[j]))
            .filter(|&(_, x)| (x - x.round()).abs() > self.opts.int_tol)
            .collect();

        if fractional.is_empty() {
            // Integral: candidate incumbent.
            let mut vals = lp.values;
            for &j in self.int_vars {
                vals[j] = vals[j].round();
            }
            if self.model.is_feasible(&vals, 1e-6) {
                let obj = to_max(self.model.objective_value(&vals));
                self.try_improve(obj, vals);
            }
            return Ok(None);
        }

        // Rounding heuristic: try the nearest-integer point once per
        // node; cheap and often supplies an early incumbent.
        let mut rounded = lp.values.clone();
        for &j in self.int_vars {
            rounded[j] = rounded[j].round();
        }
        if self.model.is_feasible(&rounded, 1e-6) {
            let obj = to_max(self.model.objective_value(&rounded));
            self.try_improve(obj, rounded);
        }

        // Branch by pseudocost product score; ties break on the smallest
        // index, so the sequential search is deterministic.
        let branch = {
            let pseudo = self.pseudo.lock().expect("pseudocosts poisoned");
            fractional
                .iter()
                .map(|&(j, x)| (j, pseudo.score(j, (x - x.floor()).clamp(0.0, 1.0))))
                .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
                .map(|(j, _)| j)
                .expect("fractional set is nonempty")
        };
        let child_snapshot = lp.snapshot.map(Arc::new).or_else(|| node.snapshot.clone());
        let mut plunge: Option<Node> = None;
        for (value, up) in [(0.0, false), (1.0, true)] {
            // O(1) box-bound maintenance: replace j's free-range term by
            // its fixed value.
            let child_box =
                node.box_bound - self.relaxed_contrib(branch) + self.obj_max[branch] * value;
            let child_bound = bound.min(child_box);
            if !can_improve(child_bound, self.best(), self.opts) {
                self.pre_bound_pruned.fetch_add(1, AtOrd::Relaxed);
                continue;
            }
            let mut fixings = node.fixings.clone();
            fixings.push((branch, value, value));
            let child = Node {
                fixings,
                bound: child_bound,
                box_bound: child_box,
                snapshot: child_snapshot.clone(),
                branch_var: branch,
                branch_up: up,
                parent_lp: bound,
            };
            // Keep the higher-bound child for the plunge (ties prefer the
            // up-fixing, which tends straight to an incumbent); the
            // sibling joins the best-first heap.
            match &plunge {
                Some(kept) if kept.bound > child.bound => self.push_back(child),
                _ => {
                    if let Some(displaced) = plunge.replace(child) {
                        self.push_back(displaced);
                    }
                }
            }
        }
        Ok(plunge)
    }

    /// Worker loop: pop → process → repeat, terminating once the heap is
    /// empty with no node in flight anywhere.
    fn worker(&self) {
        let mut engine = Engine::new(self.model);
        loop {
            if self.stop.load(AtOrd::SeqCst) {
                break;
            }
            let node = {
                let mut heap = self.heap.lock().expect("heap poisoned");
                let n = heap.pop();
                if n.is_some() {
                    // Claimed under the lock: `active` can never read 0
                    // while work is in flight.
                    self.active.fetch_add(1, AtOrd::SeqCst);
                }
                n
            };
            let Some(node) = node else {
                let heap = self.heap.lock().expect("heap poisoned");
                if heap.is_empty() && self.active.load(AtOrd::SeqCst) == 0 {
                    break;
                }
                drop(heap);
                std::thread::yield_now();
                continue;
            };
            // Plunge: chase the returned child on the same engine while
            // one exists. The live tableau is the child's parent basis,
            // so each step is a dive (bound shift + dual re-optimize),
            // not a refactorization. `active` stays held for the whole
            // chain, preserving the termination invariant.
            let mut result = Ok(());
            let mut current = Some(node);
            while let Some(n) = current {
                if self.stop.load(AtOrd::SeqCst) {
                    self.push_back(n);
                    break;
                }
                match self.process(n, &mut engine) {
                    Ok(next) => current = next,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            self.active.fetch_sub(1, AtOrd::SeqCst);
            if let Err(e) = result {
                let mut err = self.error.lock().expect("error slot poisoned");
                err.get_or_insert(e);
                self.stop.store(true, AtOrd::SeqCst);
                break;
            }
        }
    }
}

pub(crate) fn solve(model: &Model, opts: &MipOptions) -> Result<MipSolution, SolveError> {
    let _span = soc_obs::span("solve_mip");
    let to_max = |obj: f64| match model.sense {
        Sense::Maximize => obj,
        Sense::Minimize => -obj,
    };
    let from_max = to_max; // involution

    let int_vars: Vec<usize> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.integer)
        .map(|(j, _)| j)
        .collect();
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj_max: Vec<f64> = model.objective.iter().map(|c| sign * c).collect();

    let search = Search {
        model,
        opts,
        int_vars: &int_vars,
        obj_max: &obj_max,
        heap: Mutex::new(BinaryHeap::new()),
        incumbent: Mutex::new(None),
        best_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        nodes: AtomicUsize::new(0),
        active: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        error: Mutex::new(None),
        pseudo: Mutex::new(Pseudocosts::new(model.num_vars())),
        lp_pivots: AtomicUsize::new(0),
        dual_pivots: AtomicUsize::new(0),
        warm_solves: AtomicUsize::new(0),
        cold_solves: AtomicUsize::new(0),
        warm_failures: AtomicUsize::new(0),
        pre_bound_pruned: AtomicUsize::new(0),
        deadline: opts.time_limit.map(|d| Instant::now() + d),
    };

    // Warm start: accept a caller-provided feasible point as the first
    // incumbent so pruning bites from the root node.
    if let Some(start) = &opts.initial_solution {
        if model.is_feasible(start, 1e-6) {
            let mut vals = start.clone();
            for &j in &int_vars {
                vals[j] = vals[j].round();
            }
            let obj = to_max(model.objective_value(&vals));
            search.try_improve(obj, vals);
        }
    }

    // Root box bound: each variable contributes its best term in
    // isolation; children maintain this in O(1) per fixing.
    let root_box: f64 = (0..model.num_vars())
        .map(|j| search.relaxed_contrib(j))
        .sum();
    search.push_back(Node {
        fixings: Vec::new(),
        bound: root_box,
        box_bound: root_box,
        snapshot: None,
        branch_var: usize::MAX,
        branch_up: false,
        parent_lp: f64::INFINITY,
    });

    let threads = opts.threads.max(1);
    if threads == 1 {
        search.worker();
    } else {
        soc_pool::Pool::new(threads).map_indexed(threads, |_| search.worker());
    }

    if let Some(e) = search.error.lock().expect("error slot poisoned").take() {
        return Err(e);
    }

    let nodes = search.nodes.load(AtOrd::SeqCst);
    let heap = search.heap.into_inner().expect("heap poisoned");
    let incumbent = search.incumbent.into_inner().expect("incumbent poisoned");
    let best = f64::from_bits(search.best_bits.load(AtOrd::SeqCst));
    let proven_optimal = heap.is_empty()
        || (incumbent.is_some() && heap.iter().all(|n| !can_improve(n.bound, best, opts)));
    let stats = SolveStats {
        nodes,
        lp_pivots: search.lp_pivots.load(AtOrd::Relaxed),
        dual_pivots: search.dual_pivots.load(AtOrd::Relaxed),
        warm_solves: search.warm_solves.load(AtOrd::Relaxed),
        cold_solves: search.cold_solves.load(AtOrd::Relaxed),
        warm_failures: search.warm_failures.load(AtOrd::Relaxed),
        pre_bound_pruned: search.pre_bound_pruned.load(AtOrd::Relaxed),
        presolved_vars: 0,
        threads,
    };
    // Mirror the per-solve stats into the process-wide registry so batch
    // runs accumulate totals without threading SolveStats around.
    if soc_obs::metrics_enabled() {
        counter!("solver.nodes").add(stats.nodes as u64);
        counter!("solver.lp_pivots").add(stats.lp_pivots as u64);
        counter!("solver.dual_pivots").add(stats.dual_pivots as u64);
        counter!("solver.warm_solves").add(stats.warm_solves as u64);
        counter!("solver.cold_solves").add(stats.cold_solves as u64);
        counter!("solver.warm_failures").add(stats.warm_failures as u64);
        counter!("solver.pre_bound_pruned").add(stats.pre_bound_pruned as u64);
    }

    match incumbent {
        Some(values) => Ok(MipSolution {
            objective: from_max(best),
            values,
            nodes,
            proven_optimal,
            stats,
        }),
        None => {
            if search.stop.load(AtOrd::SeqCst) || nodes >= opts.max_nodes {
                Err(SolveError::NodeLimitWithoutIncumbent)
            } else {
                Err(SolveError::Infeasible)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Cmp, LinExpr, MipOptions, Model, Sense};

    #[test]
    fn knapsack() {
        // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary → a + c = 17? check:
        // a+b: w=7 no. a+c: w=5 v=17. b+c: w=6 v=20. → 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective(LinExpr::new().plus(10.0, a).plus(13.0, b).plus(7.0, c));
        m.add_constraint(
            LinExpr::new().plus(3.0, a).plus(4.0, b).plus(2.0, c),
            Cmp::Le,
            6.0,
        );
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 20.0).abs() < 1e-6);
        assert!(s.proven_optimal);
        assert_eq!(s.values[1].round() as i64, 1);
        assert_eq!(s.values[2].round() as i64, 1);
    }

    #[test]
    fn minimization_mip() {
        // min a + b + c with a + b >= 1, b + c >= 1, a + c >= 1 → 2 (vertex cover of a triangle).
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary();
        let b = m.add_binary();
        let c = m.add_binary();
        m.set_objective(LinExpr::sum([a, b, c]));
        m.add_constraint(LinExpr::sum([a, b]), Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::sum([b, c]), Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::sum([a, c]), Cmp::Ge, 1.0);
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_mip() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary();
        let b = m.add_binary();
        m.set_objective(LinExpr::sum([a, b]));
        m.add_constraint(LinExpr::sum([a, b]), Cmp::Ge, 3.0);
        assert!(m.solve_mip(&MipOptions::default()).is_err());
    }

    #[test]
    fn fixed_binaries_respected() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_fixed(false);
        let b = m.add_binary();
        m.set_objective(LinExpr::new().plus(5.0, a).plus(1.0, b));
        let s = m.solve_mip(&MipOptions::default()).unwrap();
        assert!((s.objective - 1.0).abs() < 1e-6);
        assert_eq!(s.values[0].round() as i64, 0);
    }

    #[test]
    fn integral_objective_pruning_still_exact() {
        let opts = MipOptions {
            integral_objective: true,
            ..Default::default()
        };
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::sum(vars.iter().copied()));
        m.add_constraint(LinExpr::sum(vars.iter().copied()), Cmp::Le, 5.0);
        let s = m.solve_mip(&opts).unwrap();
        assert!((s.objective - 5.0).abs() < 1e-6);
    }

    #[test]
    fn soc_shaped_model() {
        // The paper's formulation on Fig 1 (§IV.B): should satisfy 3 queries
        // with m = 3.
        // Attributes of t: {0,1,3,4,5} (no turbo). Queries:
        // q1={0,1}, q2={0,3}, q3={1,3}, q4={3,5}, q5={2,4}.
        let mut m = Model::new(Sense::Maximize);
        let x: Vec<_> = (0..6)
            .map(|j| {
                if j == 2 {
                    m.add_binary_fixed(false)
                } else {
                    m.add_binary()
                }
            })
            .collect();
        let queries: &[&[usize]] = &[&[0, 1], &[0, 3], &[1, 3], &[3, 5], &[2, 4]];
        let mut obj = LinExpr::new();
        let mut ys = Vec::new();
        for q in queries {
            let y = m.add_binary();
            obj = obj.plus(1.0, y);
            for &j in *q {
                m.add_constraint(LinExpr::new().plus(1.0, y).plus(-1.0, x[j]), Cmp::Le, 0.0);
            }
            ys.push(y);
        }
        m.set_objective(obj);
        m.add_constraint(LinExpr::sum(x.iter().copied()), Cmp::Le, 3.0);
        let s = m
            .solve_mip(&MipOptions {
                integral_objective: true,
                ..Default::default()
            })
            .unwrap();
        assert!(
            (s.objective - 3.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        // Retained attributes must be {0,1,3}.
        let retained: Vec<usize> = (0..6).filter(|&j| s.values[j] > 0.5).collect();
        assert_eq!(retained, vec![0, 1, 3]);
    }

    #[test]
    fn cold_and_warm_agree_and_report_stats() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (1.0 + (i % 4) as f64, v)),
        ));
        m.add_constraint(
            LinExpr::from_terms(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (1.0 + (i % 3) as f64, v)),
            ),
            Cmp::Le,
            9.0,
        );
        m.add_constraint(LinExpr::sum(vars.iter().copied()), Cmp::Le, 6.0);
        let warm = m
            .solve_mip_no_presolve(&MipOptions::default())
            .expect("warm solve");
        let cold = m
            .solve_mip_no_presolve(&MipOptions {
                warm_lp: false,
                ..Default::default()
            })
            .expect("cold solve");
        assert!((warm.objective - cold.objective).abs() < 1e-6);
        assert!(warm.proven_optimal && cold.proven_optimal);
        assert_eq!(cold.stats.warm_solves, 0);
        if warm.stats.nodes > 1 {
            assert!(warm.stats.warm_solves > 0, "stats: {:?}", warm.stats);
        }
        assert!(warm.stats.lp_pivots > 0);
    }

    #[test]
    fn node_limit_yields_incumbent_without_proof() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (3.0 + (i % 5) as f64, v)),
        ));
        m.add_constraint(
            LinExpr::from_terms(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (2.0 + (i % 4) as f64, v)),
            ),
            Cmp::Le,
            11.0,
        );
        let opts = MipOptions {
            max_nodes: 2,
            initial_solution: Some(vec![0.0; 12]),
            ..Default::default()
        };
        let s = m.solve_mip_no_presolve(&opts).expect("incumbent exists");
        assert!(!s.proven_optimal);
        assert!(s.nodes <= 2);
    }

    #[test]
    fn parallel_mode_matches_sequential_objective() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..14).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::from_terms(
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (2.0 + (i % 6) as f64, v)),
        ));
        m.add_constraint(
            LinExpr::from_terms(
                vars.iter()
                    .enumerate()
                    .map(|(i, &v)| (1.0 + (i % 4) as f64, v)),
            ),
            Cmp::Le,
            13.0,
        );
        m.add_constraint(LinExpr::sum(vars.iter().copied()), Cmp::Le, 8.0);
        let seq = m.solve_mip_no_presolve(&MipOptions::default()).unwrap();
        for threads in [2, 4] {
            let par = m
                .solve_mip_no_presolve(&MipOptions {
                    threads,
                    ..Default::default()
                })
                .unwrap();
            assert!(
                (par.objective - seq.objective).abs() < 1e-6,
                "threads {threads}: {} vs {}",
                par.objective,
                seq.objective
            );
            assert!(par.proven_optimal);
            assert_eq!(par.stats.threads, threads);
        }
    }

    #[test]
    fn time_limit_is_honoured() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..16).map(|_| m.add_binary()).collect();
        m.set_objective(LinExpr::sum(vars.iter().copied()));
        m.add_constraint(LinExpr::sum(vars.iter().copied()), Cmp::Le, 9.0);
        let opts = MipOptions {
            time_limit: Some(std::time::Duration::ZERO),
            initial_solution: Some(vec![0.0; 16]),
            ..Default::default()
        };
        let s = m.solve_mip_no_presolve(&opts).expect("incumbent exists");
        assert_eq!(s.stats.nodes, 0);
        assert!(!s.proven_optimal);
    }
}
