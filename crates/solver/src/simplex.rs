//! Two-phase primal simplex with bounded variables.
//!
//! The implementation follows the classic bounded-variable tableau method
//! (Chvátal ch. 8) with one simplification that keeps the code close to
//! the textbook unbounded case: a nonbasic variable "at its upper bound"
//! is represented by *substituting* `x = u − t` (negating its column and
//! adjusting the right-hand side), so every nonbasic variable always sits
//! at zero in its current coordinate. Bound flips and pivots then use the
//! ordinary simplex algebra.
//!
//! Scale target: the SOC ILP relaxations have a few hundred rows and
//! columns (§IV.B); a dense tableau is simple, cache-friendly and fast
//! enough, and the branch-and-bound layer re-solves from scratch per node.

use crate::model::{Cmp, LpSolution, LpStatus, Model, Sense, SolveError};

/// Feasibility / reduced-cost tolerance.
const EPS: f64 = 1e-9;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Iterations of non-improvement before switching to Bland's rule.
const STALL_LIMIT: usize = 200;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarKind {
    Structural,
    Slack,
    Artificial,
}

/// Dense bounded-variable simplex state.
struct Tableau {
    /// Rows of the constraint matrix in the current basis.
    rows: Vec<Vec<f64>>,
    /// Current value of the basic variable of each row.
    rhs: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Reduced-cost row (current coordinates).
    cbar: Vec<f64>,
    /// Current objective value.
    zval: f64,
    /// Range length of each variable in shifted coordinates
    /// (`upper − lower`; may be `f64::INFINITY`).
    range: Vec<f64>,
    /// Whether the variable's column is currently substituted `x = u − t`.
    flipped: Vec<bool>,
    /// Whether the variable is basic, and in which row.
    in_basis: Vec<Option<usize>>,
    /// Kind of each column.
    kind: Vec<VarKind>,
    /// Columns barred from entering (artificials in phase 2).
    banned: Vec<bool>,
    iterations: usize,
    stall: usize,
    /// Variable that left the basis in the most recent pivot; the
    /// upper-bound leaving case needs to flip it right after the pivot.
    basis_prev: usize,
}

enum Step {
    Optimal,
    Unbounded,
    Continue,
}

impl Tableau {
    fn ncols(&self) -> usize {
        self.cbar.len()
    }

    /// Applies the substitution `x_j := u_j − t_j` (or back): negates the
    /// column, adjusts rhs and objective for the constant `u_j`.
    fn flip(&mut self, j: usize) {
        let u = self.range[j];
        debug_assert!(u.is_finite(), "cannot flip an unbounded column");
        for (row, rhs) in self.rows.iter_mut().zip(self.rhs.iter_mut()) {
            *rhs -= row[j] * u;
            row[j] = -row[j];
        }
        self.zval += self.cbar[j] * u;
        self.cbar[j] = -self.cbar[j];
        self.flipped[j] = !self.flipped[j];
    }

    /// Chooses the entering column: Dantzig rule normally, Bland's rule
    /// when stalled. Returns `None` at optimality.
    fn choose_entering(&self) -> Option<usize> {
        let bland = self.stall >= STALL_LIMIT;
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.ncols() {
            if self.banned[j] || self.in_basis[j].is_some() || self.range[j] <= EPS {
                continue;
            }
            let d = self.cbar[j];
            if d > EPS {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((j, d));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One simplex iteration (maximization in current coordinates).
    fn step(&mut self) -> Step {
        let Some(e) = self.choose_entering() else {
            return Step::Optimal;
        };
        // Ratio test: how far can t_e increase?
        let mut limit = self.range[e]; // bound-flip cap (may be inf)
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        let bland = self.stall >= STALL_LIMIT;
        for i in 0..self.rows.len() {
            let a = self.rows[i][e];
            let b = self.basis[i];
            if a > PIVOT_TOL {
                // Basic value decreases; hits its lower bound (0).
                let ratio = (self.rhs[i].max(0.0)) / a;
                let better = ratio < limit - EPS
                    || (ratio < limit + EPS
                        && match leave {
                            None => true,
                            Some((r, _)) => {
                                if bland {
                                    self.basis[i] < self.basis[r]
                                } else {
                                    a.abs() > self.rows[r][e].abs()
                                }
                            }
                        });
                if better {
                    limit = ratio.min(limit);
                    leave = Some((i, false));
                }
            } else if a < -PIVOT_TOL {
                // Basic value increases; hits its upper bound, if finite.
                let ub = self.range[b];
                if ub.is_finite() {
                    let ratio = (ub - self.rhs[i]).max(0.0) / (-a);
                    let better = ratio < limit - EPS
                        || (ratio < limit + EPS
                            && match leave {
                                None => true,
                                Some((r, _)) => {
                                    if bland {
                                        self.basis[i] < self.basis[r]
                                    } else {
                                        a.abs() > self.rows[r][e].abs()
                                    }
                                }
                            });
                    if better {
                        limit = ratio.min(limit);
                        leave = Some((i, true));
                    }
                }
            }
        }

        if limit.is_infinite() {
            return Step::Unbounded;
        }

        let improvement = self.cbar[e] * limit;
        match leave {
            None => {
                // Pure bound flip of the entering variable.
                self.flip(e);
            }
            Some((r, at_upper)) => {
                self.pivot(r, e);
                if at_upper {
                    // The leaving variable sits at its upper bound: restore
                    // the invariant that nonbasics are at zero.
                    let l = self.basis_prev;
                    self.flip(l);
                }
            }
        }
        self.iterations += 1;
        if improvement > EPS {
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        Step::Continue
    }

    fn pivot(&mut self, r: usize, e: usize) {
        let l = self.basis[r];
        let piv = self.rows[r][e];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small");
        let inv = 1.0 / piv;
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        self.rhs[r] *= inv;
        let pivot_row = self.rows[r].clone();
        let pivot_rhs = self.rhs[r];
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            let f = self.rows[i][e];
            if f != 0.0 {
                for (v, p) in self.rows[i].iter_mut().zip(&pivot_row) {
                    *v -= f * p;
                }
                self.rows[i][e] = 0.0; // exact
                self.rhs[i] -= f * pivot_rhs;
            }
        }
        let f = self.cbar[e];
        if f != 0.0 {
            for (v, p) in self.cbar.iter_mut().zip(&pivot_row) {
                *v -= f * p;
            }
            self.cbar[e] = 0.0;
            self.zval += f * pivot_rhs;
        }
        self.basis[r] = e;
        self.in_basis[l] = None;
        self.in_basis[e] = Some(r);
        self.basis_prev = l;
    }

    /// Runs simplex to optimality on the current objective.
    fn optimize(&mut self, max_iters: usize) -> Result<LpStatus, SolveError> {
        loop {
            if self.iterations > max_iters {
                return Err(SolveError::IterationLimit);
            }
            match self.step() {
                Step::Optimal => return Ok(LpStatus::Optimal),
                Step::Unbounded => return Ok(LpStatus::Unbounded),
                Step::Continue => {}
            }
        }
    }

    /// Resets the objective to `costs` (expressed on original columns) and
    /// re-prices in the current basis / coordinates.
    fn set_objective(&mut self, costs: &[f64]) {
        let n = self.ncols();
        self.zval = 0.0;
        for j in 0..n {
            let c = costs.get(j).copied().unwrap_or(0.0);
            if self.flipped[j] {
                self.cbar[j] = -c;
                self.zval += c * self.range[j];
            } else {
                self.cbar[j] = c;
            }
        }
        // Price out the basic variables.
        for i in 0..self.rows.len() {
            let k = self.basis[i];
            let f = self.cbar[k];
            if f != 0.0 {
                let row = self.rows[i].clone();
                for (v, p) in self.cbar.iter_mut().zip(&row) {
                    *v -= f * p;
                }
                self.cbar[k] = 0.0;
                self.zval += f * self.rhs[i];
            }
        }
        self.stall = 0;
    }

    /// Current value of column `j` in *shifted* coordinates.
    fn shifted_value(&self, j: usize) -> f64 {
        let t = match self.in_basis[j] {
            Some(r) => self.rhs[r],
            None => 0.0,
        };
        if self.flipped[j] {
            self.range[j] - t
        } else {
            t
        }
    }
}

/// Bound overrides used by branch-and-bound to fix binary variables
/// without rebuilding the model.
pub(crate) type BoundOverrides = [(usize, f64, f64)];

/// Solves the LP relaxation of `model`, optionally overriding variable
/// bounds (var index, lower, upper).
pub(crate) fn solve_model(
    model: &Model,
    overrides: Option<&BoundOverrides>,
) -> Result<LpSolution, SolveError> {
    let n = model.num_vars();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    if let Some(ovr) = overrides {
        for &(j, lo, hi) in ovr {
            lower[j] = lo;
            upper[j] = hi;
            if lo > hi {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    values: vec![],
                });
            }
        }
    }

    // Shift variables so lower bounds are zero; track the objective
    // constant contributed by the shift.
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj_const: f64 = model
        .objective
        .iter()
        .zip(&lower)
        .map(|(c, lo)| sign * c * lo)
        .sum();

    // Build equality rows over columns [structural | slacks | artificials].
    let m = model.num_constraints();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut slack_of_row: Vec<Option<Cmp>> = Vec::with_capacity(m);
    for c in &model.constraints {
        let mut dense = vec![0.0; n];
        for &(j, a) in &c.terms {
            dense[j as usize] += a;
        }
        let shift: f64 = dense.iter().enumerate().map(|(j, a)| a * lower[j]).sum();
        let (mut dense, mut b, cmp) = match c.cmp {
            Cmp::Le => (dense, c.rhs - shift, Cmp::Le),
            Cmp::Eq => (dense, c.rhs - shift, Cmp::Eq),
            Cmp::Ge => {
                // Negate into a ≤ row.
                for a in dense.iter_mut() {
                    *a = -*a;
                }
                (dense, -(c.rhs - shift), Cmp::Le)
            }
        };
        // Normalize so rhs >= 0 (slack coefficient recorded separately).
        let negated = b < 0.0;
        if negated {
            for a in dense.iter_mut() {
                *a = -*a;
            }
            b = -b;
        }
        rows.push(dense);
        rhs.push(b);
        slack_of_row.push(match (cmp, negated) {
            (Cmp::Le, false) => Some(Cmp::Le), // +1 slack, can start basic
            (Cmp::Le, true) => Some(Cmp::Ge),  // −1 surplus, needs artificial
            (Cmp::Eq, _) => None,
            (Cmp::Ge, _) => unreachable!(),
        });
    }

    // Column layout.
    let mut range: Vec<f64> = (0..n).map(|j| upper[j] - lower[j]).collect();
    let mut kind = vec![VarKind::Structural; n];
    let mut col_rows: Vec<Vec<f64>> = rows; // will extend with slack/artificial columns

    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    let mut next = n;
    for (i, s) in slack_of_row.iter().enumerate() {
        if s.is_some() {
            slack_col[i] = Some(next);
            next += 1;
            range.push(f64::INFINITY);
            kind.push(VarKind::Slack);
        }
    }
    let mut art_col: Vec<Option<usize>> = vec![None; m];
    for i in 0..m {
        let needs_artificial = !matches!(slack_of_row[i], Some(Cmp::Le));
        if needs_artificial {
            art_col[i] = Some(next);
            next += 1;
            range.push(f64::INFINITY);
            kind.push(VarKind::Artificial);
        }
    }
    let total = next;
    for (i, row) in col_rows.iter_mut().enumerate() {
        row.resize(total, 0.0);
        if let Some(sc) = slack_col[i] {
            row[sc] = match slack_of_row[i] {
                Some(Cmp::Le) => 1.0,
                Some(Cmp::Ge) => -1.0,
                _ => unreachable!(),
            };
        }
        if let Some(ac) = art_col[i] {
            row[ac] = 1.0;
        }
    }

    // Initial basis: slack for plain ≤ rows, artificial otherwise.
    let mut basis = Vec::with_capacity(m);
    let mut in_basis = vec![None; total];
    for i in 0..m {
        let b = art_col[i]
            .or(slack_col[i])
            .expect("every row has a basic column");
        basis.push(b);
        in_basis[b] = Some(i);
    }

    let mut tab = Tableau {
        rows: col_rows,
        rhs,
        basis,
        cbar: vec![0.0; total],
        zval: 0.0,
        range,
        flipped: vec![false; total],
        in_basis,
        kind,
        banned: vec![false; total],
        iterations: 0,
        stall: 0,
        basis_prev: 0,
    };

    let max_iters = 200 * (m + total) + 20_000;
    let has_artificials = art_col.iter().any(Option::is_some);

    if has_artificials {
        // Phase 1: maximize −Σ artificials.
        let p1: Vec<f64> = tab
            .kind
            .iter()
            .map(|k| if *k == VarKind::Artificial { -1.0 } else { 0.0 })
            .collect();
        tab.set_objective(&p1);
        let status = tab.optimize(max_iters)?;
        debug_assert!(status != LpStatus::Unbounded, "phase 1 cannot be unbounded");
        if tab.zval < -1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![],
            });
        }
        // Drive any basic artificial (at value 0) out of the basis.
        for i in 0..m {
            let b = tab.basis[i];
            if tab.kind[b] == VarKind::Artificial {
                let pivot_col = (0..total).find(|&j| {
                    tab.kind[j] != VarKind::Artificial
                        && tab.in_basis[j].is_none()
                        && tab.rows[i][j].abs() > 1e-7
                });
                if let Some(j) = pivot_col {
                    tab.pivot(i, j);
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at 0 and is harmless because its
                // column is banned below.
            }
        }
        for j in 0..total {
            if tab.kind[j] == VarKind::Artificial {
                tab.banned[j] = true;
            }
        }
    }

    // Phase 2: the real objective (in shifted coordinates).
    let mut p2 = vec![0.0; total];
    for (slot, c) in p2.iter_mut().zip(&model.objective) {
        *slot = sign * c;
    }
    tab.set_objective(&p2);
    let status = tab.optimize(max_iters)?;
    if status == LpStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: 0.0,
            values: vec![],
        });
    }

    let values: Vec<f64> = (0..n).map(|j| tab.shifted_value(j) + lower[j]).collect();
    let objective = sign * (tab.zval + obj_const);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn lp(sense: Sense) -> Model {
        Model::new(sense)
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y, x<=4, 2y<=12, 3x+2y<=18 → (2,6), z=36.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        let y = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(3.0, x).plus(5.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 4.0);
        m.add_constraint(LinExpr::new().plus(2.0, y), Cmp::Le, 12.0);
        m.add_constraint(LinExpr::new().plus(3.0, x).plus(2.0, y), Cmp::Le, 18.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y, x+y>=4, x>=0, y>=0 → (4,0), z=8.
        let mut m = lp(Sense::Minimize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        let y = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(2.0, x).plus(3.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Ge, 4.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 8.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // max x + y, x + y == 3, x <= 2, y <= 2 → z = 3.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 2.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Eq, 3.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(
            m.is_feasible(&s.values, 1e-6) || {
                // LP relaxation ignores integrality; check constraints directly.
                (s.values[0] + s.values[1] - 3.0).abs() < 1e-6
            }
        );
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(1.0, x));
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 1.0);
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Ge, 2.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(1.0, x));
        m.add_constraint(LinExpr::new().plus(-1.0, x), Cmp::Le, 1.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // max x + y with x,y in [0,1], x + y <= 5 → z = 2 at (1,1).
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 1.0);
        let y = m.add_continuous(0.0, 1.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 5.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y with x in [2,5], y in [3,9], x + y >= 7 → z = 7.
        let mut m = lp(Sense::Minimize);
        let x = m.add_continuous(2.0, 5.0);
        let y = m.add_continuous(3.0, 9.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Ge, 7.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 7.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn negative_objective_coefficients() {
        // max −x − 2y with x ≥ 1 forced via equality x + y == 2, y ∈ [0,2].
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 2.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective(LinExpr::new().plus(-1.0, x).plus(-2.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Eq, 2.0);
        let s = m.solve_lp().unwrap();
        // Best: x = 2, y = 0 → −2.
        assert!(
            (s.objective + 2.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn fixed_variables() {
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(1.5, 1.5);
        let y = m.add_continuous(0.0, 10.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 4.0);
        let s = m.solve_lp().unwrap();
        assert!((s.values[0] - 1.5).abs() < 1e-9);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Klee–Minty-ish degenerate instance; just verify termination and
        // a correct optimum.
        let mut m = lp(Sense::Maximize);
        let x1 = m.add_continuous(0.0, f64::INFINITY);
        let x2 = m.add_continuous(0.0, f64::INFINITY);
        let x3 = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(100.0, x1).plus(10.0, x2).plus(1.0, x3));
        m.add_constraint(LinExpr::new().plus(1.0, x1), Cmp::Le, 1.0);
        m.add_constraint(LinExpr::new().plus(20.0, x1).plus(1.0, x2), Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::new().plus(200.0, x1).plus(20.0, x2).plus(1.0, x3),
            Cmp::Le,
            10000.0,
        );
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 10000.0).abs() < 1e-4,
            "objective {}",
            s.objective
        );
    }
}
