//! Two-phase primal simplex with bounded variables.
//!
//! The implementation follows the classic bounded-variable tableau method
//! (Chvátal ch. 8) with one simplification that keeps the code close to
//! the textbook unbounded case: a nonbasic variable "at its upper bound"
//! is represented by *substituting* `x = u − t` (negating its column and
//! adjusting the right-hand side), so every nonbasic variable always sits
//! at zero in its current coordinate. Bound flips and pivots then use the
//! ordinary simplex algebra.
//!
//! Scale target: the SOC ILP relaxations have a few hundred rows and
//! columns (§IV.B); a dense tableau is simple, cache-friendly and fast
//! enough, and the branch-and-bound layer re-solves from scratch per node.

use crate::model::{Cmp, LpSolution, LpStatus, Model, Sense, SolveError};

/// Feasibility / reduced-cost tolerance.
const EPS: f64 = 1e-9;
/// Smallest acceptable pivot magnitude.
const PIVOT_TOL: f64 = 1e-9;
/// Iterations of non-improvement before switching to Bland's rule.
const STALL_LIMIT: usize = 200;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum VarKind {
    Structural,
    Slack,
    Artificial,
}

/// Dense bounded-variable simplex state.
struct Tableau {
    /// Rows of the constraint matrix in the current basis.
    rows: Vec<Vec<f64>>,
    /// Current value of the basic variable of each row.
    rhs: Vec<f64>,
    /// Basic variable of each row.
    basis: Vec<usize>,
    /// Reduced-cost row (current coordinates).
    cbar: Vec<f64>,
    /// Current objective value.
    zval: f64,
    /// Range length of each variable in shifted coordinates
    /// (`upper − lower`; may be `f64::INFINITY`).
    range: Vec<f64>,
    /// Whether the variable's column is currently substituted `x = u − t`.
    flipped: Vec<bool>,
    /// Whether the variable is basic, and in which row.
    in_basis: Vec<Option<usize>>,
    /// Kind of each column.
    kind: Vec<VarKind>,
    /// Columns barred from entering (artificials in phase 2).
    banned: Vec<bool>,
    iterations: usize,
    stall: usize,
    /// Basis changes performed (primal + dual + refactorization steps).
    pivots: usize,
    /// Dual-simplex subset of `pivots`.
    dual_pivots: usize,
    /// Variable that left the basis in the most recent pivot; the
    /// upper-bound leaving case needs to flip it right after the pivot.
    basis_prev: usize,
}

enum Step {
    Optimal,
    Unbounded,
    Continue,
}

enum DualStep {
    /// Primal feasibility reached.
    Feasible,
    /// A row proves the LP infeasible under the current bounds.
    Infeasible,
    Continue,
}

impl Tableau {
    fn ncols(&self) -> usize {
        self.cbar.len()
    }

    /// Applies the substitution `x_j := u_j − t_j` (or back): negates the
    /// column, adjusts rhs and objective for the constant `u_j`.
    fn flip(&mut self, j: usize) {
        let u = self.range[j];
        debug_assert!(u.is_finite(), "cannot flip an unbounded column");
        for (row, rhs) in self.rows.iter_mut().zip(self.rhs.iter_mut()) {
            *rhs -= row[j] * u;
            row[j] = -row[j];
        }
        self.zval += self.cbar[j] * u;
        self.cbar[j] = -self.cbar[j];
        self.flipped[j] = !self.flipped[j];
    }

    /// Chooses the entering column: Dantzig rule normally, Bland's rule
    /// when stalled. Returns `None` at optimality.
    fn choose_entering(&self) -> Option<usize> {
        let bland = self.stall >= STALL_LIMIT;
        let mut best: Option<(usize, f64)> = None;
        for j in 0..self.ncols() {
            if self.banned[j] || self.in_basis[j].is_some() || self.range[j] <= EPS {
                continue;
            }
            let d = self.cbar[j];
            if d > EPS {
                if bland {
                    return Some(j);
                }
                if best.is_none_or(|(_, bd)| d > bd) {
                    best = Some((j, d));
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// One simplex iteration (maximization in current coordinates).
    fn step(&mut self) -> Step {
        let Some(e) = self.choose_entering() else {
            return Step::Optimal;
        };
        // Ratio test: how far can t_e increase?
        let mut limit = self.range[e]; // bound-flip cap (may be inf)
        let mut leave: Option<(usize, bool)> = None; // (row, leaves_at_upper)
        let bland = self.stall >= STALL_LIMIT;
        for i in 0..self.rows.len() {
            let a = self.rows[i][e];
            let b = self.basis[i];
            if a > PIVOT_TOL {
                // Basic value decreases; hits its lower bound (0).
                let ratio = (self.rhs[i].max(0.0)) / a;
                let better = ratio < limit - EPS
                    || (ratio < limit + EPS
                        && match leave {
                            None => true,
                            Some((r, _)) => {
                                if bland {
                                    self.basis[i] < self.basis[r]
                                } else {
                                    a.abs() > self.rows[r][e].abs()
                                }
                            }
                        });
                if better {
                    limit = ratio.min(limit);
                    leave = Some((i, false));
                }
            } else if a < -PIVOT_TOL {
                // Basic value increases; hits its upper bound, if finite.
                let ub = self.range[b];
                if ub.is_finite() {
                    let ratio = (ub - self.rhs[i]).max(0.0) / (-a);
                    let better = ratio < limit - EPS
                        || (ratio < limit + EPS
                            && match leave {
                                None => true,
                                Some((r, _)) => {
                                    if bland {
                                        self.basis[i] < self.basis[r]
                                    } else {
                                        a.abs() > self.rows[r][e].abs()
                                    }
                                }
                            });
                    if better {
                        limit = ratio.min(limit);
                        leave = Some((i, true));
                    }
                }
            }
        }

        if limit.is_infinite() {
            return Step::Unbounded;
        }

        let improvement = self.cbar[e] * limit;
        match leave {
            None => {
                // Pure bound flip of the entering variable.
                self.flip(e);
            }
            Some((r, at_upper)) => {
                self.pivot(r, e);
                if at_upper {
                    // The leaving variable sits at its upper bound: restore
                    // the invariant that nonbasics are at zero.
                    let l = self.basis_prev;
                    self.flip(l);
                }
            }
        }
        self.iterations += 1;
        if improvement > EPS {
            self.stall = 0;
        } else {
            self.stall += 1;
        }
        Step::Continue
    }

    fn pivot(&mut self, r: usize, e: usize) {
        let l = self.basis[r];
        let piv = self.rows[r][e];
        debug_assert!(piv.abs() > PIVOT_TOL, "pivot too small");
        let inv = 1.0 / piv;
        for v in self.rows[r].iter_mut() {
            *v *= inv;
        }
        self.rhs[r] *= inv;
        let pivot_row = self.rows[r].clone();
        let pivot_rhs = self.rhs[r];
        for i in 0..self.rows.len() {
            if i == r {
                continue;
            }
            let f = self.rows[i][e];
            if f != 0.0 {
                for (v, p) in self.rows[i].iter_mut().zip(&pivot_row) {
                    *v -= f * p;
                }
                self.rows[i][e] = 0.0; // exact
                self.rhs[i] -= f * pivot_rhs;
            }
        }
        let f = self.cbar[e];
        if f != 0.0 {
            for (v, p) in self.cbar.iter_mut().zip(&pivot_row) {
                *v -= f * p;
            }
            self.cbar[e] = 0.0;
            self.zval += f * pivot_rhs;
        }
        self.basis[r] = e;
        self.in_basis[l] = None;
        self.in_basis[e] = Some(r);
        self.basis_prev = l;
        self.pivots += 1;
    }

    /// One dual-simplex iteration: pick the most primal-infeasible basic
    /// variable to leave, then the entering column by the dual ratio test
    /// `min cbar_j / a_rj` over `a_rj < 0` (which preserves `cbar <= 0`,
    /// i.e. dual feasibility for maximization). A basic variable *above*
    /// its upper bound is first reduced to the below-lower case by
    /// flipping its column (`x = u − t`) and negating its row.
    fn dual_step(&mut self) -> DualStep {
        let bland = self.stall >= STALL_LIMIT;
        // Leaving row: largest violation (Bland: smallest basic index).
        let mut worst: Option<(usize, f64, bool)> = None;
        for i in 0..self.rows.len() {
            let b = self.basis[i];
            let (viol, above) = if self.rhs[i] < -EPS {
                (-self.rhs[i], false)
            } else if self.range[b].is_finite() && self.rhs[i] > self.range[b] + EPS {
                (self.rhs[i] - self.range[b], true)
            } else {
                continue;
            };
            let better = match worst {
                None => true,
                Some((r, w, _)) => {
                    if bland {
                        self.basis[i] < self.basis[r]
                    } else {
                        viol > w
                    }
                }
            };
            if better {
                worst = Some((i, viol, above));
            }
        }
        let Some((r, _, above)) = worst else {
            return DualStep::Feasible;
        };
        if above {
            // Flip the basic column: it is the unit vector of row `r`, so
            // only that row changes (`rhs[r] -= u`, coefficient −1); then
            // negate the row to restore the +1 basic entry. The flipped
            // basic now sits below its lower bound: `rhs[r] = u − old < 0`.
            let b = self.basis[r];
            self.flip(b);
            for v in self.rows[r].iter_mut() {
                *v = -*v;
            }
            self.rhs[r] = -self.rhs[r];
        }
        // Dual ratio test on row r (rhs[r] < 0).
        let mut enter: Option<(usize, f64)> = None;
        for j in 0..self.ncols() {
            if self.banned[j] || self.in_basis[j].is_some() || self.range[j] <= EPS {
                continue;
            }
            let a = self.rows[r][j];
            if a < -PIVOT_TOL {
                let ratio = self.cbar[j] / a;
                let better = match enter {
                    None => true,
                    Some((bj, br)) => {
                        if bland {
                            ratio < br - EPS || (ratio < br + EPS && j < bj)
                        } else {
                            ratio < br - EPS
                                || (ratio < br + EPS && a.abs() > self.rows[r][bj].abs())
                        }
                    }
                };
                if better {
                    enter = Some((j, ratio));
                }
            }
        }
        let Some((e, _)) = enter else {
            // Row r reads `x_B(r) = rhs − Σ a_rj x_j` over movable
            // nonbasics with `a_rj >= 0` and `x_j >= 0`: the basic can
            // never reach its lower bound, so the LP is infeasible.
            return DualStep::Infeasible;
        };
        self.pivot(r, e);
        self.dual_pivots += 1;
        self.iterations += 1;
        DualStep::Continue
    }

    /// Runs dual simplex until primal feasibility (`Optimal`) or a proof
    /// of infeasibility.
    fn dual_optimize(&mut self, max_iters: usize) -> Result<LpStatus, SolveError> {
        loop {
            if self.iterations > max_iters {
                return Err(SolveError::IterationLimit);
            }
            let before = self.zval;
            match self.dual_step() {
                DualStep::Feasible => return Ok(LpStatus::Optimal),
                DualStep::Infeasible => return Ok(LpStatus::Infeasible),
                DualStep::Continue => {
                    if (self.zval - before).abs() > EPS {
                        self.stall = 0;
                    } else {
                        self.stall += 1;
                    }
                }
            }
        }
    }

    /// Runs simplex to optimality on the current objective.
    fn optimize(&mut self, max_iters: usize) -> Result<LpStatus, SolveError> {
        loop {
            if self.iterations > max_iters {
                return Err(SolveError::IterationLimit);
            }
            match self.step() {
                Step::Optimal => return Ok(LpStatus::Optimal),
                Step::Unbounded => return Ok(LpStatus::Unbounded),
                Step::Continue => {}
            }
        }
    }

    /// Resets the objective to `costs` (expressed on original columns) and
    /// re-prices in the current basis / coordinates.
    fn set_objective(&mut self, costs: &[f64]) {
        let n = self.ncols();
        self.zval = 0.0;
        for j in 0..n {
            let c = costs.get(j).copied().unwrap_or(0.0);
            if self.flipped[j] {
                self.cbar[j] = -c;
                self.zval += c * self.range[j];
            } else {
                self.cbar[j] = c;
            }
        }
        // Price out the basic variables.
        for i in 0..self.rows.len() {
            let k = self.basis[i];
            let f = self.cbar[k];
            if f != 0.0 {
                let row = self.rows[i].clone();
                for (v, p) in self.cbar.iter_mut().zip(&row) {
                    *v -= f * p;
                }
                self.cbar[k] = 0.0;
                self.zval += f * self.rhs[i];
            }
        }
        self.stall = 0;
    }

    /// Current value of column `j` in *shifted* coordinates.
    fn shifted_value(&self, j: usize) -> f64 {
        let t = match self.in_basis[j] {
            Some(r) => self.rhs[r],
            None => 0.0,
        };
        if self.flipped[j] {
            self.range[j] - t
        } else {
            t
        }
    }
}

/// Bound overrides used by branch-and-bound to fix binary variables
/// without rebuilding the model.
pub(crate) type BoundOverrides = [(usize, f64, f64)];

/// Solves the LP relaxation of `model`, optionally overriding variable
/// bounds (var index, lower, upper).
pub(crate) fn solve_model(
    model: &Model,
    overrides: Option<&BoundOverrides>,
) -> Result<LpSolution, SolveError> {
    let n = model.num_vars();
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    if let Some(ovr) = overrides {
        for &(j, lo, hi) in ovr {
            lower[j] = lo;
            upper[j] = hi;
            if lo > hi {
                return Ok(LpSolution {
                    status: LpStatus::Infeasible,
                    objective: 0.0,
                    values: vec![],
                });
            }
        }
    }

    // Shift variables so lower bounds are zero; track the objective
    // constant contributed by the shift.
    let sign = match model.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let obj_const: f64 = model
        .objective
        .iter()
        .zip(&lower)
        .map(|(c, lo)| sign * c * lo)
        .sum();

    // Build equality rows over columns [structural | slacks | artificials].
    let m = model.num_constraints();
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(m);
    let mut rhs: Vec<f64> = Vec::with_capacity(m);
    let mut slack_of_row: Vec<Option<Cmp>> = Vec::with_capacity(m);
    for c in &model.constraints {
        let mut dense = vec![0.0; n];
        for &(j, a) in &c.terms {
            dense[j as usize] += a;
        }
        let shift: f64 = dense.iter().enumerate().map(|(j, a)| a * lower[j]).sum();
        let (mut dense, mut b, cmp) = match c.cmp {
            Cmp::Le => (dense, c.rhs - shift, Cmp::Le),
            Cmp::Eq => (dense, c.rhs - shift, Cmp::Eq),
            Cmp::Ge => {
                // Negate into a ≤ row.
                for a in dense.iter_mut() {
                    *a = -*a;
                }
                (dense, -(c.rhs - shift), Cmp::Le)
            }
        };
        // Normalize so rhs >= 0 (slack coefficient recorded separately).
        let negated = b < 0.0;
        if negated {
            for a in dense.iter_mut() {
                *a = -*a;
            }
            b = -b;
        }
        rows.push(dense);
        rhs.push(b);
        slack_of_row.push(match (cmp, negated) {
            (Cmp::Le, false) => Some(Cmp::Le), // +1 slack, can start basic
            (Cmp::Le, true) => Some(Cmp::Ge),  // −1 surplus, needs artificial
            (Cmp::Eq, _) => None,
            (Cmp::Ge, _) => unreachable!(),
        });
    }

    // Column layout.
    let mut range: Vec<f64> = (0..n).map(|j| upper[j] - lower[j]).collect();
    let mut kind = vec![VarKind::Structural; n];
    let mut col_rows: Vec<Vec<f64>> = rows; // will extend with slack/artificial columns

    let mut slack_col: Vec<Option<usize>> = vec![None; m];
    let mut next = n;
    for (i, s) in slack_of_row.iter().enumerate() {
        if s.is_some() {
            slack_col[i] = Some(next);
            next += 1;
            range.push(f64::INFINITY);
            kind.push(VarKind::Slack);
        }
    }
    let mut art_col: Vec<Option<usize>> = vec![None; m];
    for i in 0..m {
        let needs_artificial = !matches!(slack_of_row[i], Some(Cmp::Le));
        if needs_artificial {
            art_col[i] = Some(next);
            next += 1;
            range.push(f64::INFINITY);
            kind.push(VarKind::Artificial);
        }
    }
    let total = next;
    for (i, row) in col_rows.iter_mut().enumerate() {
        row.resize(total, 0.0);
        if let Some(sc) = slack_col[i] {
            row[sc] = match slack_of_row[i] {
                Some(Cmp::Le) => 1.0,
                Some(Cmp::Ge) => -1.0,
                _ => unreachable!(),
            };
        }
        if let Some(ac) = art_col[i] {
            row[ac] = 1.0;
        }
    }

    // Initial basis: slack for plain ≤ rows, artificial otherwise.
    let mut basis = Vec::with_capacity(m);
    let mut in_basis = vec![None; total];
    for i in 0..m {
        let b = art_col[i]
            .or(slack_col[i])
            .expect("every row has a basic column");
        basis.push(b);
        in_basis[b] = Some(i);
    }

    let mut tab = Tableau {
        rows: col_rows,
        rhs,
        basis,
        cbar: vec![0.0; total],
        zval: 0.0,
        range,
        flipped: vec![false; total],
        in_basis,
        kind,
        banned: vec![false; total],
        iterations: 0,
        stall: 0,
        pivots: 0,
        dual_pivots: 0,
        basis_prev: 0,
    };

    let max_iters = 200 * (m + total) + 20_000;
    let has_artificials = art_col.iter().any(Option::is_some);

    if has_artificials {
        // Phase 1: maximize −Σ artificials.
        let p1: Vec<f64> = tab
            .kind
            .iter()
            .map(|k| if *k == VarKind::Artificial { -1.0 } else { 0.0 })
            .collect();
        tab.set_objective(&p1);
        let status = tab.optimize(max_iters)?;
        debug_assert!(status != LpStatus::Unbounded, "phase 1 cannot be unbounded");
        if tab.zval < -1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                values: vec![],
            });
        }
        // Drive any basic artificial (at value 0) out of the basis.
        for i in 0..m {
            let b = tab.basis[i];
            if tab.kind[b] == VarKind::Artificial {
                let pivot_col = (0..total).find(|&j| {
                    tab.kind[j] != VarKind::Artificial
                        && tab.in_basis[j].is_none()
                        && tab.rows[i][j].abs() > 1e-7
                });
                if let Some(j) = pivot_col {
                    tab.pivot(i, j);
                }
                // If no pivot column exists the row is redundant; the
                // artificial stays basic at 0 and is harmless because its
                // column is banned below.
            }
        }
        for j in 0..total {
            if tab.kind[j] == VarKind::Artificial {
                tab.banned[j] = true;
            }
        }
    }

    // Phase 2: the real objective (in shifted coordinates).
    let mut p2 = vec![0.0; total];
    for (slot, c) in p2.iter_mut().zip(&model.objective) {
        *slot = sign * c;
    }
    tab.set_objective(&p2);
    let status = tab.optimize(max_iters)?;
    if status == LpStatus::Unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            objective: 0.0,
            values: vec![],
        });
    }

    let values: Vec<f64> = (0..n).map(|j| tab.shifted_value(j) + lower[j]).collect();
    let objective = sign * (tab.zval + obj_const);
    Ok(LpSolution {
        status: LpStatus::Optimal,
        objective,
        values,
    })
}

/// Compact record of an optimal basis: the basic column of each row plus
/// the set of columns currently substituted `x = u − t` (nonbasic-at-upper
/// bookkeeping). Together with the pristine constraint matrix and a bound
/// vector this is enough to reconstruct the full tableau by Gaussian
/// refactorization — no factor updates, no per-node tableau retention.
#[derive(Clone, Debug)]
pub(crate) struct Snapshot {
    basis: Vec<usize>,
    flipped: Vec<bool>,
}

/// Result of one engine LP solve.
pub(crate) struct EngineLp {
    pub status: LpStatus,
    /// Objective in the original model space (sense sign applied back).
    pub objective: f64,
    /// Structural variable values in the original space.
    pub values: Vec<f64>,
    /// Basis changes this solve (refactorization + primal + dual).
    pub pivots: usize,
    /// Dual-simplex subset of `pivots`.
    pub dual_pivots: usize,
    /// Optimal basis for warm-starting children (`None` unless optimal,
    /// or when an artificial is stuck basic in a redundant row).
    pub snapshot: Option<Snapshot>,
}

impl EngineLp {
    fn infeasible() -> Self {
        Self {
            status: LpStatus::Infeasible,
            objective: 0.0,
            values: vec![],
            pivots: 0,
            dual_pivots: 0,
            snapshot: None,
        }
    }
}

/// Reusable LP engine for branch-and-bound: the canonical form (columns
/// `[structural | slacks | artificials]`, `Ge` rows negated into `Le`,
/// bound shifts *not* baked in) is built once per model, and every node
/// solve reuses the pristine matrix and the tableau allocations.
///
/// Two solve paths:
/// - [`Engine::solve_cold`]: classic two-phase primal simplex under the
///   node's bounds (artificial columns are allocated for the rows that
///   need them at *root* bounds; a node whose shifted rhs turns negative
///   on a row without one is not representable and returns `None`).
/// - [`Engine::solve_warm`]: restores a parent [`Snapshot`] under the
///   child's tightened bounds (flips first — they commute with row
///   operations — then Gauss-Jordan onto the basis columns), runs dual
///   simplex to primal feasibility, then a primal cleanup pass. Any
///   ancestor's optimal basis stays dual feasible for a descendant:
///   fixings only move bounds, and reduced costs depend only on the
///   basis and costs.
pub(crate) struct Engine {
    sign: f64,
    nstruct: usize,
    total: usize,
    /// Pristine rows, m × total, in `Le`/`Eq` orientation, unshifted.
    rows0: Vec<Vec<f64>>,
    rhs0: Vec<f64>,
    eq_row: Vec<bool>,
    slack_col: Vec<Option<usize>>,
    art_col: Vec<Option<usize>>,
    kind: Vec<VarKind>,
    /// `sign * objective`, zero-padded to `total`.
    costs: Vec<f64>,
    base_lower: Vec<f64>,
    base_upper: Vec<f64>,
    max_iters: usize,
    tab: Tableau,
    /// Scratch for refactorization row assignment.
    used_rows: Vec<bool>,
    /// Whether `tab` still holds the optimal tableau of the last solve
    /// (basis, flips, and the bounds below). When a child node's parent
    /// snapshot matches it, [`Engine::solve_warm`] dives: it applies the
    /// bound deltas to the live tableau in O(m) per changed column and
    /// skips the matrix copy and refactorization entirely.
    live: bool,
    live_lower: Vec<f64>,
    live_upper: Vec<f64>,
}

impl Engine {
    pub(crate) fn new(model: &Model) -> Self {
        let n = model.num_vars();
        let m = model.num_constraints();
        let sign = match model.sense {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        };
        let base_lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
        let base_upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();

        let mut rows0: Vec<Vec<f64>> = Vec::with_capacity(m);
        let mut rhs0: Vec<f64> = Vec::with_capacity(m);
        let mut eq_row: Vec<bool> = Vec::with_capacity(m);
        for c in &model.constraints {
            let mut dense = vec![0.0; n];
            for &(j, a) in &c.terms {
                dense[j as usize] += a;
            }
            let (dense, b, eq) = match c.cmp {
                Cmp::Le => (dense, c.rhs, false),
                Cmp::Eq => (dense, c.rhs, true),
                Cmp::Ge => {
                    let mut d = dense;
                    for a in d.iter_mut() {
                        *a = -*a;
                    }
                    (d, -c.rhs, false)
                }
            };
            rows0.push(dense);
            rhs0.push(b);
            eq_row.push(eq);
        }

        // Shifted rhs at root bounds decides which rows get artificials.
        let root_b: Vec<f64> = (0..m)
            .map(|i| {
                rhs0[i]
                    - rows0[i]
                        .iter()
                        .zip(&base_lower)
                        .map(|(a, lo)| a * lo)
                        .sum::<f64>()
            })
            .collect();
        let mut slack_col: Vec<Option<usize>> = vec![None; m];
        let mut next = n;
        let mut kind = vec![VarKind::Structural; n];
        for (i, eq) in eq_row.iter().enumerate() {
            if !eq {
                slack_col[i] = Some(next);
                kind.push(VarKind::Slack);
                next += 1;
            }
        }
        let mut art_col: Vec<Option<usize>> = vec![None; m];
        for i in 0..m {
            if eq_row[i] || root_b[i] < 0.0 {
                art_col[i] = Some(next);
                kind.push(VarKind::Artificial);
                next += 1;
            }
        }
        let total = next;
        for (i, row) in rows0.iter_mut().enumerate() {
            row.resize(total, 0.0);
            if let Some(sc) = slack_col[i] {
                row[sc] = 1.0;
            }
            if let Some(ac) = art_col[i] {
                row[ac] = 1.0;
            }
        }

        let costs: Vec<f64> = (0..total)
            .map(|j| {
                if j < n {
                    sign * model.objective[j]
                } else {
                    0.0
                }
            })
            .collect();
        let tab = Tableau {
            rows: vec![vec![0.0; total]; m],
            rhs: vec![0.0; m],
            basis: vec![0; m],
            cbar: vec![0.0; total],
            zval: 0.0,
            range: vec![0.0; total],
            flipped: vec![false; total],
            in_basis: vec![None; total],
            kind: kind.clone(),
            banned: vec![false; total],
            iterations: 0,
            stall: 0,
            pivots: 0,
            dual_pivots: 0,
            basis_prev: 0,
        };
        Self {
            sign,
            nstruct: n,
            total,
            rows0,
            rhs0,
            eq_row,
            slack_col,
            art_col,
            kind,
            costs,
            base_lower,
            base_upper,
            max_iters: 200 * (m + total) + 20_000,
            tab,
            used_rows: vec![false; m],
            live: false,
            live_lower: vec![0.0; n],
            live_upper: vec![0.0; n],
        }
    }

    /// Node bounds = model bounds + overrides; `None` when some override
    /// crosses (`lo > hi`), i.e. trivially infeasible.
    fn bounds_with(&self, overrides: Option<&BoundOverrides>) -> Option<(Vec<f64>, Vec<f64>)> {
        let mut lower = self.base_lower.clone();
        let mut upper = self.base_upper.clone();
        if let Some(ovr) = overrides {
            for &(j, lo, hi) in ovr {
                lower[j] = lo;
                upper[j] = hi;
                if lo > hi {
                    return None;
                }
            }
        }
        Some((lower, upper))
    }

    /// Resets the scratch tableau to the pristine matrix under `lower`/
    /// `upper`, with artificial ranges set to `art_range` (`INFINITY` for
    /// a cold phase 1, `0.0` to pin them out of a warm solve).
    fn reset_tab(&mut self, lower: &[f64], upper: &[f64], art_range: f64) {
        self.live = false;
        let m = self.rows0.len();
        for i in 0..m {
            self.tab.rows[i].copy_from_slice(&self.rows0[i]);
            let shift: f64 = self.rows0[i][..self.nstruct]
                .iter()
                .zip(lower)
                .map(|(a, lo)| a * lo)
                .sum();
            self.tab.rhs[i] = self.rhs0[i] - shift;
        }
        for j in 0..self.total {
            self.tab.range[j] = match self.kind[j] {
                VarKind::Structural => upper[j] - lower[j],
                VarKind::Slack => f64::INFINITY,
                VarKind::Artificial => art_range,
            };
        }
        self.tab.flipped.fill(false);
        self.tab.in_basis.fill(None);
        self.tab.banned.fill(false);
        self.tab.cbar.fill(0.0);
        self.tab.zval = 0.0;
        self.tab.iterations = 0;
        self.tab.stall = 0;
        self.tab.pivots = 0;
        self.tab.dual_pivots = 0;
    }

    fn extract(&self, lower: &[f64]) -> EngineLp {
        let values: Vec<f64> = (0..self.nstruct)
            .map(|j| self.tab.shifted_value(j) + lower[j])
            .collect();
        let obj_const: f64 = self.costs[..self.nstruct]
            .iter()
            .zip(lower)
            .map(|(c, lo)| c * lo)
            .sum();
        let clean_basis = self
            .tab
            .basis
            .iter()
            .all(|&b| self.kind[b] != VarKind::Artificial);
        EngineLp {
            status: LpStatus::Optimal,
            objective: self.sign * (self.tab.zval + obj_const),
            values,
            pivots: self.tab.pivots,
            dual_pivots: self.tab.dual_pivots,
            snapshot: clean_basis.then(|| Snapshot {
                basis: self.tab.basis.clone(),
                flipped: self.tab.flipped.clone(),
            }),
        }
    }

    /// Extracts an optimal solve and, when it produced a usable
    /// snapshot, marks the tableau live so a child whose parent basis
    /// matches can dive (incremental bound update, no refactorization).
    fn finish_optimal(&mut self, lower: &[f64], upper: &[f64]) -> EngineLp {
        let lp = self.extract(lower);
        if lp.snapshot.is_some() {
            self.live = true;
            self.live_lower.copy_from_slice(lower);
            self.live_upper.copy_from_slice(upper);
        }
        lp
    }

    fn lp_result(&self, status: LpStatus) -> EngineLp {
        EngineLp {
            status,
            objective: 0.0,
            values: vec![],
            pivots: self.tab.pivots,
            dual_pivots: self.tab.dual_pivots,
            snapshot: None,
        }
    }

    /// Two-phase primal simplex under the node bounds, in the fixed
    /// column layout. Returns `None` if a row's shifted rhs is negative
    /// but the layout has no artificial for it (the caller falls back to
    /// the standalone [`solve_model`], which builds its own layout).
    pub(crate) fn solve_cold(
        &mut self,
        overrides: Option<&BoundOverrides>,
    ) -> Option<Result<EngineLp, SolveError>> {
        let Some((lower, upper)) = self.bounds_with(overrides) else {
            return Some(Ok(EngineLp::infeasible()));
        };
        let m = self.rows0.len();
        // Shifted rhs per row; negative rows must host an artificial.
        let mut negated = vec![false; m];
        for (i, flag) in negated.iter_mut().enumerate() {
            let shift: f64 = self.rows0[i][..self.nstruct]
                .iter()
                .zip(&lower)
                .map(|(a, lo)| a * lo)
                .sum();
            let b = self.rhs0[i] - shift;
            if b < 0.0 {
                self.art_col[i]?;
                *flag = true;
            }
        }
        self.reset_tab(&lower, &upper, f64::INFINITY);
        for (i, &neg) in negated.iter().enumerate() {
            if neg {
                for v in self.tab.rows[i].iter_mut() {
                    *v = -*v;
                }
                self.tab.rhs[i] = -self.tab.rhs[i];
                if let Some(ac) = self.art_col[i] {
                    self.tab.rows[i][ac] = 1.0; // negation flipped it to −1
                }
            }
        }
        let mut has_basic_art = false;
        for (i, &neg) in negated.iter().enumerate() {
            let b = if self.eq_row[i] || neg {
                has_basic_art = true;
                self.art_col[i].expect("eq/negated rows always carry an artificial")
            } else {
                self.slack_col[i].expect("inequality rows always carry a slack")
            };
            self.tab.basis[i] = b;
            self.tab.in_basis[b] = Some(i);
        }

        if has_basic_art {
            let p1: Vec<f64> = self
                .kind
                .iter()
                .map(|k| if *k == VarKind::Artificial { -1.0 } else { 0.0 })
                .collect();
            self.tab.set_objective(&p1);
            match self.tab.optimize(self.max_iters) {
                Err(e) => return Some(Err(e)),
                Ok(status) => {
                    debug_assert!(status != LpStatus::Unbounded, "phase 1 cannot be unbounded")
                }
            }
            if self.tab.zval < -1e-7 {
                return Some(Ok(self.lp_result(LpStatus::Infeasible)));
            }
            for i in 0..m {
                let b = self.tab.basis[i];
                if self.kind[b] == VarKind::Artificial {
                    let pivot_col = (0..self.total).find(|&j| {
                        self.kind[j] != VarKind::Artificial
                            && self.tab.in_basis[j].is_none()
                            && self.tab.rows[i][j].abs() > 1e-7
                    });
                    if let Some(j) = pivot_col {
                        self.tab.pivot(i, j);
                    }
                }
            }
        }
        for j in 0..self.total {
            if self.kind[j] == VarKind::Artificial {
                self.tab.banned[j] = true;
            }
        }

        let costs = std::mem::take(&mut self.costs);
        self.tab.set_objective(&costs);
        self.costs = costs;
        match self.tab.optimize(self.max_iters) {
            Err(e) => Some(Err(e)),
            Ok(LpStatus::Unbounded) => Some(Ok(self.lp_result(LpStatus::Unbounded))),
            Ok(_) => Some(Ok(self.finish_optimal(&lower, &upper))),
        }
    }

    /// Warm solve from an ancestor's optimal basis under tightened node
    /// bounds: apply the snapshot's flips to the pristine matrix, Gauss-
    /// Jordan onto its basis columns, then dual simplex (the basis is
    /// dual feasible by inheritance) followed by a primal cleanup pass.
    /// Returns `None` when the snapshot cannot be restored (basic
    /// artificial, singular basis, numerical trouble) — the caller falls
    /// back to a cold solve.
    pub(crate) fn solve_warm(
        &mut self,
        snap: &Snapshot,
        overrides: Option<&BoundOverrides>,
    ) -> Option<Result<EngineLp, SolveError>> {
        if snap
            .basis
            .iter()
            .any(|&b| self.kind[b] == VarKind::Artificial)
        {
            return None;
        }
        let Some((lower, upper)) = self.bounds_with(overrides) else {
            return Some(Ok(EngineLp::infeasible()));
        };
        // Dive fast path: the engine's tableau still holds exactly this
        // snapshot's basis and flips (the common case right after solving
        // the parent), so the child differs only by bound deltas — apply
        // them in place and skip the matrix copy and refactorization.
        if self.live && snap.basis == self.tab.basis && snap.flipped == self.tab.flipped {
            return self.solve_dive(&lower, &upper);
        }
        self.reset_tab(&lower, &upper, 0.0);
        for j in 0..self.total {
            if self.kind[j] == VarKind::Artificial {
                self.tab.banned[j] = true;
            }
        }
        // Flips commute with row operations: apply them on the pristine
        // matrix, then refactorize. A column flipped in the snapshot must
        // still have a finite range under the child bounds (fixings only
        // shrink ranges, so this holds in branch-and-bound).
        for j in 0..self.total {
            if snap.flipped[j] {
                if !self.tab.range[j].is_finite() {
                    return None;
                }
                self.tab.flip(j);
            }
        }
        // Gauss-Jordan onto the snapshot's basis columns with partial
        // pivoting. The basis matrix is nonsingular independent of bounds
        // and flips, but refuse on tiny pivots rather than divide by them.
        self.used_rows.fill(false);
        for &col in &snap.basis {
            let mut best: Option<(usize, f64)> = None;
            for (i, used) in self.used_rows.iter().enumerate() {
                if !used {
                    let a = self.tab.rows[i][col].abs();
                    if best.is_none_or(|(_, b)| a > b) {
                        best = Some((i, a));
                    }
                }
            }
            let (r, piv) = best?;
            if piv < 1e-7 {
                return None;
            }
            self.used_rows[r] = true;
            let inv = 1.0 / self.tab.rows[r][col];
            for v in self.tab.rows[r].iter_mut() {
                *v *= inv;
            }
            self.tab.rhs[r] *= inv;
            let pivot_row = std::mem::take(&mut self.tab.rows[r]);
            let pivot_rhs = self.tab.rhs[r];
            for i in 0..self.rows0.len() {
                if i == r {
                    continue;
                }
                let f = self.tab.rows[i][col];
                if f != 0.0 {
                    for (v, p) in self.tab.rows[i].iter_mut().zip(&pivot_row) {
                        *v -= f * p;
                    }
                    self.tab.rows[i][col] = 0.0;
                    self.tab.rhs[i] -= f * pivot_rhs;
                }
            }
            self.tab.rows[r] = pivot_row;
            self.tab.basis[r] = col;
            self.tab.in_basis[col] = Some(r);
            // Slack basis columns are unit vectors in the pristine matrix
            // and cost nothing; count only real elimination work.
            if self.kind[col] == VarKind::Structural {
                self.tab.pivots += 1;
            }
        }

        let costs = std::mem::take(&mut self.costs);
        self.tab.set_objective(&costs);
        self.costs = costs;
        match self.tab.dual_optimize(self.max_iters) {
            Err(_) => return None, // numerical trouble: retry cold
            Ok(LpStatus::Infeasible) => return Some(Ok(self.lp_result(LpStatus::Infeasible))),
            Ok(_) => {}
        }
        // Cleanup pass: normally zero pivots; repairs any reduced-cost
        // drift so the returned basis is genuinely optimal.
        match self.tab.optimize(self.max_iters) {
            Err(_) | Ok(LpStatus::Unbounded) => None,
            Ok(_) => Some(Ok(self.finish_optimal(&lower, &upper))),
        }
    }

    /// Re-optimizes the live tableau under new bounds without copying or
    /// refactorizing. Shifting column `j`'s offset by `d` (the lower
    /// bound for an unflipped column, minus the upper-bound delta for a
    /// flipped one, since `x = u − t` there) rewrites every row as
    /// `rhs_i -= d · a_ij` with the *current* column entries; reduced
    /// costs depend only on the basis and costs, so `cbar` — and with it
    /// dual feasibility — is untouched. The objective value is then
    /// recomputed from the shifted point and dual simplex restores
    /// primal feasibility.
    fn solve_dive(&mut self, lower: &[f64], upper: &[f64]) -> Option<Result<EngineLp, SolveError>> {
        self.live = false;
        for j in 0..self.nstruct {
            let (lo0, hi0) = (self.live_lower[j], self.live_upper[j]);
            let (lo1, hi1) = (lower[j], upper[j]);
            if lo0 == lo1 && hi0 == hi1 {
                continue;
            }
            let d = if self.tab.flipped[j] {
                -(hi1 - hi0)
            } else {
                lo1 - lo0
            };
            if !d.is_finite() {
                return None; // e.g. an upper bound became infinite
            }
            if d != 0.0 {
                for (row, rhs) in self.tab.rows.iter_mut().zip(self.tab.rhs.iter_mut()) {
                    let a = row[j];
                    if a != 0.0 {
                        *rhs -= d * a;
                    }
                }
            }
            self.tab.range[j] = hi1 - lo1;
        }
        self.tab.zval = (0..self.nstruct)
            .map(|j| self.costs[j] * self.tab.shifted_value(j))
            .sum();
        self.tab.iterations = 0;
        self.tab.stall = 0;
        self.tab.pivots = 0;
        self.tab.dual_pivots = 0;
        match self.tab.dual_optimize(self.max_iters) {
            Err(_) => return None, // numerical trouble: retry cold
            Ok(LpStatus::Infeasible) => return Some(Ok(self.lp_result(LpStatus::Infeasible))),
            Ok(_) => {}
        }
        match self.tab.optimize(self.max_iters) {
            Err(_) | Ok(LpStatus::Unbounded) => None,
            Ok(_) => Some(Ok(self.finish_optimal(lower, upper))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn lp(sense: Sense) -> Model {
        Model::new(sense)
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y, x<=4, 2y<=12, 3x+2y<=18 → (2,6), z=36.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        let y = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(3.0, x).plus(5.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 4.0);
        m.add_constraint(LinExpr::new().plus(2.0, y), Cmp::Le, 12.0);
        m.add_constraint(LinExpr::new().plus(3.0, x).plus(2.0, y), Cmp::Le, 18.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 36.0).abs() < 1e-6);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 6.0).abs() < 1e-6);
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y, x+y>=4, x>=0, y>=0 → (4,0), z=8.
        let mut m = lp(Sense::Minimize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        let y = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(2.0, x).plus(3.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Ge, 4.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 8.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
        assert!((s.values[0] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn equality_constraint() {
        // max x + y, x + y == 3, x <= 2, y <= 2 → z = 3.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 2.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Eq, 3.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(
            m.is_feasible(&s.values, 1e-6) || {
                // LP relaxation ignores integrality; check constraints directly.
                (s.values[0] + s.values[1] - 3.0).abs() < 1e-6
            }
        );
    }

    #[test]
    fn infeasible_detected() {
        // x <= 1 and x >= 2.
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(1.0, x));
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 1.0);
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Ge, 2.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(1.0, x));
        m.add_constraint(LinExpr::new().plus(-1.0, x), Cmp::Le, 1.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_respected() {
        // max x + y with x,y in [0,1], x + y <= 5 → z = 2 at (1,1).
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 1.0);
        let y = m.add_continuous(0.0, 1.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 5.0);
        let s = m.solve_lp().unwrap();
        assert!((s.objective - 2.0).abs() < 1e-6);
        assert!((s.values[0] - 1.0).abs() < 1e-6);
        assert!((s.values[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y with x in [2,5], y in [3,9], x + y >= 7 → z = 7.
        let mut m = lp(Sense::Minimize);
        let x = m.add_continuous(2.0, 5.0);
        let y = m.add_continuous(3.0, 9.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Ge, 7.0);
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 7.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn negative_objective_coefficients() {
        // max −x − 2y with x ≥ 1 forced via equality x + y == 2, y ∈ [0,2].
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(0.0, 2.0);
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective(LinExpr::new().plus(-1.0, x).plus(-2.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Eq, 2.0);
        let s = m.solve_lp().unwrap();
        // Best: x = 2, y = 0 → −2.
        assert!(
            (s.objective + 2.0).abs() < 1e-6,
            "objective {}",
            s.objective
        );
    }

    #[test]
    fn fixed_variables() {
        let mut m = lp(Sense::Maximize);
        let x = m.add_continuous(1.5, 1.5);
        let y = m.add_continuous(0.0, 10.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 4.0);
        let s = m.solve_lp().unwrap();
        assert!((s.values[0] - 1.5).abs() < 1e-9);
        assert!((s.objective - 4.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // Klee–Minty-ish degenerate instance; just verify termination and
        // a correct optimum.
        let mut m = lp(Sense::Maximize);
        let x1 = m.add_continuous(0.0, f64::INFINITY);
        let x2 = m.add_continuous(0.0, f64::INFINITY);
        let x3 = m.add_continuous(0.0, f64::INFINITY);
        m.set_objective(LinExpr::new().plus(100.0, x1).plus(10.0, x2).plus(1.0, x3));
        m.add_constraint(LinExpr::new().plus(1.0, x1), Cmp::Le, 1.0);
        m.add_constraint(LinExpr::new().plus(20.0, x1).plus(1.0, x2), Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::new().plus(200.0, x1).plus(20.0, x2).plus(1.0, x3),
            Cmp::Le,
            10000.0,
        );
        let s = m.solve_lp().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!(
            (s.objective - 10000.0).abs() < 1e-4,
            "objective {}",
            s.objective
        );
    }
}
