//! Model-builder API for linear and 0/1 integer programs.
//!
//! The paper's ILP formulation (§IV.B) is built against this API; the
//! solver layers ([`crate::simplex`], [`crate::branch_bound`]) consume the
//! canonical form it produces.

use std::fmt;

/// Identifies a decision variable within a [`Model`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The variable's position in the model.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Optimization direction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// A linear expression `Σ coef_i · var_i`.
#[derive(Clone, Debug, Default)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms; duplicates are summed on use.
    pub terms: Vec<(VarId, f64)>,
}

impl LinExpr {
    /// The empty expression.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `coef · var` and returns `self` for chaining.
    #[must_use]
    pub fn plus(mut self, coef: f64, var: VarId) -> Self {
        self.terms.push((var, coef));
        self
    }

    /// Builds an expression from `(coef, var)` pairs.
    pub fn from_terms<I: IntoIterator<Item = (f64, VarId)>>(terms: I) -> Self {
        Self {
            terms: terms.into_iter().map(|(c, v)| (v, c)).collect(),
        }
    }

    /// `Σ var_i` over the given variables.
    pub fn sum<I: IntoIterator<Item = VarId>>(vars: I) -> Self {
        Self {
            terms: vars.into_iter().map(|v| (v, 1.0)).collect(),
        }
    }
}

#[derive(Clone, Debug)]
pub(crate) struct VarDef {
    pub lower: f64,
    pub upper: f64,
    pub integer: bool,
    pub name: Option<String>,
}

#[derive(Clone, Debug)]
pub(crate) struct ConstraintDef {
    pub terms: Vec<(u32, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear / 0-1 integer program under construction.
///
/// ```
/// use soc_solver::{Model, Sense, Cmp, LinExpr};
/// let mut m = Model::new(Sense::Maximize);
/// let x = m.add_binary();
/// let y = m.add_binary();
/// m.set_objective(LinExpr::new().plus(3.0, x).plus(2.0, y));
/// m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 1.0);
/// let sol = m.solve_mip(&Default::default()).unwrap();
/// assert_eq!(sol.objective.round() as i64, 3);
/// ```
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<VarDef>,
    pub(crate) constraints: Vec<ConstraintDef>,
    pub(crate) objective: Vec<f64>,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Self {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Adds a continuous variable with bounds `[lower, upper]`
    /// (`upper` may be `f64::INFINITY`).
    ///
    /// # Panics
    /// Panics if `lower > upper`, either bound is NaN, or `lower` is
    /// infinite (shifted-standard-form requires a finite lower bound).
    pub fn add_continuous(&mut self, lower: f64, upper: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "bounds must not be NaN");
        assert!(lower.is_finite(), "lower bound must be finite");
        assert!(lower <= upper, "lower bound exceeds upper bound");
        let id = VarId(u32::try_from(self.vars.len()).expect("model exceeds u32::MAX variables"));
        self.vars.push(VarDef {
            lower,
            upper,
            integer: false,
            name: None,
        });
        self.objective.push(0.0);
        id
    }

    /// Adds a binary (0/1) variable.
    pub fn add_binary(&mut self) -> VarId {
        let id = self.add_continuous(0.0, 1.0);
        self.vars[id.index()].integer = true;
        id
    }

    /// Adds a binary variable fixed to a constant (used to pin `x_j = 0`
    /// for attributes absent from the new tuple, §IV.B).
    pub fn add_binary_fixed(&mut self, value: bool) -> VarId {
        let v = if value { 1.0 } else { 0.0 };
        let id = self.add_continuous(v, v);
        self.vars[id.index()].integer = true;
        id
    }

    /// Names a variable (diagnostics only).
    pub fn set_name(&mut self, var: VarId, name: impl Into<String>) {
        self.vars[var.index()].name = Some(name.into());
    }

    /// Sets the objective `Σ coef · var` (replacing any previous one).
    pub fn set_objective(&mut self, expr: LinExpr) {
        self.objective = vec![0.0; self.vars.len()];
        for (v, c) in expr.terms {
            self.objective[v.index()] += c;
        }
    }

    /// Adds the constraint `expr cmp rhs`.
    pub fn add_constraint(&mut self, expr: LinExpr, cmp: Cmp, rhs: f64) {
        let mut terms: Vec<(u32, f64)> = Vec::with_capacity(expr.terms.len());
        for (v, c) in expr.terms {
            assert!(
                v.index() < self.vars.len(),
                "constraint uses unknown variable"
            );
            terms.push((v.0, c));
        }
        self.constraints.push(ConstraintDef { terms, cmp, rhs });
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Solves the continuous (LP) relaxation of the model.
    pub fn solve_lp(&self) -> Result<LpSolution, SolveError> {
        crate::simplex::solve_model(self, None)
    }

    /// Solves the model as a mixed 0/1 integer program: presolve
    /// reductions first (fixed-variable substitution, singleton bound
    /// tightening, redundant-row elimination), then LP-based
    /// branch-and-bound on the reduced model.
    pub fn solve_mip(&self, opts: &MipOptions) -> Result<MipSolution, SolveError> {
        match crate::presolve::presolve(self) {
            crate::presolve::Presolved::Infeasible => Err(SolveError::Infeasible),
            // Nothing eliminated: the reduced model is this model (same
            // variables, same order), so skip the projection/expansion
            // round-trips and solve in place.
            crate::presolve::Presolved::Reduced { map, .. } if map.is_identity() => {
                crate::branch_bound::solve(self, opts)
            }
            crate::presolve::Presolved::Reduced { reduced, map } => {
                let mut inner_opts = opts.clone();
                inner_opts.initial_solution = opts
                    .initial_solution
                    .as_ref()
                    .filter(|ws| ws.len() == self.num_vars())
                    .map(|ws| map.project(ws));
                let sol = crate::branch_bound::solve(&reduced, &inner_opts)?;
                let values = map.expand(&sol.values);
                let mut stats = sol.stats;
                stats.presolved_vars = map.eliminated();
                Ok(MipSolution {
                    objective: self.objective_value(&values),
                    values,
                    nodes: sol.nodes,
                    proven_optimal: sol.proven_optimal,
                    stats,
                })
            }
        }
    }

    /// Solves by branch-and-bound without presolve reductions (used by
    /// tests and benchmarks isolating the search itself).
    pub fn solve_mip_no_presolve(&self, opts: &MipOptions) -> Result<MipSolution, SolveError> {
        crate::branch_bound::solve(self, opts)
    }

    /// Evaluates the objective at a point (used by tests and heuristics).
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of a point within tolerance `eps`
    /// (bounds, constraints, and integrality of integer variables).
    pub fn is_feasible(&self, x: &[f64], eps: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (def, &v) in self.vars.iter().zip(x) {
            if v < def.lower - eps || v > def.upper + eps {
                return false;
            }
            if def.integer && (v - v.round()).abs() > eps {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(j, a)| a * x[j as usize]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + eps,
                Cmp::Ge => lhs >= c.rhs - eps,
                Cmp::Eq => (lhs - c.rhs).abs() <= eps,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

/// Options controlling the branch-and-bound search.
#[derive(Clone, Debug)]
pub struct MipOptions {
    /// Give up after exploring this many nodes.
    pub max_nodes: usize,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Declare the objective integral-valued, enabling stronger pruning
    /// (`bound <= incumbent` cuts when `floor(bound) <= incumbent`). True
    /// for all SOC models (the objective counts queries).
    pub integral_objective: bool,
    /// Warm-start incumbent: a known feasible point (e.g. from a greedy
    /// heuristic) used to prune from the first node. Ignored if
    /// infeasible or of the wrong arity.
    pub initial_solution: Option<Vec<f64>>,
    /// Wall-clock budget for the search; `None` = unlimited. When it
    /// expires the best incumbent is returned with
    /// `proven_optimal = false`.
    pub time_limit: Option<std::time::Duration>,
    /// Stop once `(best bound − incumbent) <= rel_gap · max(1, |incumbent|)`
    /// (in maximization space). `0.0` proves optimality.
    pub rel_gap: f64,
    /// Worker threads for node exploration. `1` (the default) is the
    /// deterministic sequential search and the differential oracle;
    /// larger values explore nodes concurrently on a work pool (same
    /// objective, possibly a different optimal point and node count).
    pub threads: usize,
    /// Re-optimize each node's LP from its parent's basis with dual
    /// simplex instead of a cold two-phase solve. On by default; off is
    /// the cold baseline used for differential testing and benchmarks.
    pub warm_lp: bool,
}

impl Default for MipOptions {
    fn default() -> Self {
        Self {
            max_nodes: 1_000_000,
            int_tol: 1e-6,
            integral_objective: false,
            initial_solution: None,
            time_limit: None,
            rel_gap: 0.0,
            threads: 1,
            warm_lp: true,
        }
    }
}

/// Counters describing a branch-and-bound run (warm-start efficacy and
/// LP effort), reported through [`MipSolution::stats`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SolveStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes: usize,
    /// Total simplex basis changes, including warm-restore
    /// refactorization steps and primal/dual pivots.
    pub lp_pivots: usize,
    /// Dual-simplex pivots (subset of `lp_pivots`).
    pub dual_pivots: usize,
    /// Node LPs re-optimized from a parent basis snapshot.
    pub warm_solves: usize,
    /// Node LPs solved by a cold two-phase simplex (root + fallbacks).
    pub cold_solves: usize,
    /// Warm restores that failed and fell back to a cold solve.
    pub warm_failures: usize,
    /// Children discarded by the combinatorial pre-bound before any
    /// pivoting.
    pub pre_bound_pruned: usize,
    /// Variables eliminated by presolve before the search.
    pub presolved_vars: usize,
    /// Worker threads used.
    pub threads: usize,
}

impl SolveStats {
    /// Fraction of node LPs served from a parent basis.
    pub fn warm_hit_rate(&self) -> f64 {
        let solved = self.warm_solves + self.cold_solves;
        if solved == 0 {
            0.0
        } else {
            self.warm_solves as f64 / solved as f64
        }
    }

    /// Mean LP pivots per explored node.
    pub fn pivots_per_node(&self) -> f64 {
        if self.nodes == 0 {
            0.0
        } else {
            self.lp_pivots as f64 / self.nodes as f64
        }
    }
}

/// Result status of an LP solve.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LpStatus {
    /// An optimal vertex was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded over the feasible region.
    Unbounded,
}

/// Solution of an LP relaxation.
#[derive(Clone, Debug)]
pub struct LpSolution {
    /// Termination status.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Variable values (meaningful only when `status == Optimal`).
    pub values: Vec<f64>,
}

/// Solution of a 0/1 integer program.
#[derive(Clone, Debug)]
pub struct MipSolution {
    /// Objective value of the best integral solution.
    pub objective: f64,
    /// Variable values of the best integral solution.
    pub values: Vec<f64>,
    /// Nodes explored by branch-and-bound.
    pub nodes: usize,
    /// True if the search completed (false = stopped at a node/time/gap
    /// limit; the solution is the best incumbent but not proven optimal).
    pub proven_optimal: bool,
    /// Solver counters (warm-start hit rate, LP pivots, pruning).
    pub stats: SolveStats,
}

/// Errors reported by the solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveError {
    /// The model has no feasible point.
    Infeasible,
    /// The model is unbounded.
    Unbounded,
    /// Branch-and-bound hit `max_nodes` before finding any integral
    /// feasible solution.
    NodeLimitWithoutIncumbent,
    /// The simplex iterated past its safety limit (numerical trouble).
    IterationLimit,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Infeasible => write!(f, "model is infeasible"),
            SolveError::Unbounded => write!(f, "model is unbounded"),
            SolveError::NodeLimitWithoutIncumbent => {
                write!(
                    f,
                    "node limit reached before any integral solution was found"
                )
            }
            SolveError::IterationLimit => write!(f, "simplex iteration limit reached"),
        }
    }
}

impl std::error::Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary();
        let y = m.add_continuous(0.0, 2.0);
        m.set_objective(LinExpr::new().plus(1.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::sum([x, y]), Cmp::Le, 2.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert!((m.objective_value(&[1.0, 0.5]) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary();
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 0.5);
        assert!(m.is_feasible(&[0.0], 1e-9));
        assert!(!m.is_feasible(&[1.0], 1e-9)); // violates constraint
        assert!(!m.is_feasible(&[0.5], 1e-9)); // violates integrality
        assert!(!m.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn fixed_binary() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_fixed(false);
        assert!(!m.is_feasible(&[1.0], 1e-9));
        assert!(m.is_feasible(&[0.0], 1e-9));
        let _ = x;
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn bad_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.add_continuous(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn foreign_variable_panics() {
        let mut a = Model::new(Sense::Maximize);
        let mut b = Model::new(Sense::Maximize);
        let x = a.add_binary();
        let _ = x;
        // b has no variables; using x (index 0) must panic.
        b.add_constraint(LinExpr::new().plus(1.0, VarId(0)), Cmp::Le, 1.0);
    }
}
