//! Presolve: cheap model reductions applied before the simplex runs.
//!
//! The SOC ILP models are full of structure a presolver can exploit —
//! pinned `x_j = 0` variables for attributes the tuple lacks, and
//! `y ≤ x` rows that become singletons once a side is fixed. Reductions
//! implemented:
//!
//! 1. **Fixed-variable substitution** — variables with `lower == upper`
//!    are folded into constraint right-hand sides and removed.
//! 2. **Singleton-row bound tightening** — a one-variable constraint is
//!    absorbed into the variable's bounds (rounded inward for integer
//!    variables); contradictory bounds prove infeasibility.
//! 3. **Empty-row elimination** — rows with no surviving terms either
//!    hold trivially or prove infeasibility.
//! 4. **Redundant-row elimination** — a `≤` row whose worst-case
//!    left-hand side (every variable at its most adverse finite bound)
//!    still satisfies the right-hand side can never bind.
//!
//! The reductions iterate to a fixed point (substitution creates new
//! singletons), and a [`PresolveMap`] restores full-length solutions.

use crate::model::{Cmp, Model};

/// Feasibility tolerance shared with the simplex.
const EPS: f64 = 1e-9;

/// Outcome of presolving a model.
pub enum Presolved {
    /// The model was reduced; solve `reduced` and map solutions back.
    Reduced {
        /// The smaller model.
        reduced: Model,
        /// Restores original-space solutions.
        map: PresolveMap,
    },
    /// Presolve proved the model infeasible.
    Infeasible,
}

/// Restores a reduced-space solution to the original variable space.
pub struct PresolveMap {
    /// For each original variable: either its fixed value or its index in
    /// the reduced model.
    states: Vec<VarState>,
}

enum VarState {
    Fixed(f64),
    Kept(usize),
}

impl PresolveMap {
    /// Expands a reduced-model solution vector to the original arity.
    pub fn expand(&self, reduced_values: &[f64]) -> Vec<f64> {
        self.states
            .iter()
            .map(|s| match s {
                VarState::Fixed(v) => *v,
                VarState::Kept(i) => reduced_values[*i],
            })
            .collect()
    }

    /// Projects an original-space point onto the reduced variables
    /// (used to carry warm-start incumbents through presolve).
    pub fn project(&self, original_values: &[f64]) -> Vec<f64> {
        let mut out = Vec::new();
        for (j, s) in self.states.iter().enumerate() {
            if let VarState::Kept(_) = s {
                out.push(original_values[j]);
            }
        }
        out
    }

    /// Number of original variables eliminated.
    pub fn eliminated(&self) -> usize {
        self.states
            .iter()
            .filter(|s| matches!(s, VarState::Fixed(_)))
            .count()
    }

    /// True when presolve eliminated nothing, i.e. the reduced model has
    /// the same variables in the same order and [`expand`]/[`project`]
    /// are identity maps that callers can skip.
    ///
    /// [`expand`]: PresolveMap::expand
    /// [`project`]: PresolveMap::project
    pub fn is_identity(&self) -> bool {
        self.eliminated() == 0
    }
}

/// Runs the reduction loop on `model`.
pub fn presolve(model: &Model) -> Presolved {
    // Working copies of bounds; constraints are re-filtered each round.
    let mut lower: Vec<f64> = model.vars.iter().map(|v| v.lower).collect();
    let mut upper: Vec<f64> = model.vars.iter().map(|v| v.upper).collect();
    let integer: Vec<bool> = model.vars.iter().map(|v| v.integer).collect();

    // Round integer bounds inward up front.
    for j in 0..lower.len() {
        if integer[j] {
            lower[j] = lower[j].ceil();
            upper[j] = upper[j].floor();
            if lower[j] > upper[j] + EPS {
                return Presolved::Infeasible;
            }
        }
    }

    let mut live_rows: Vec<bool> = vec![true; model.constraints.len()];
    loop {
        let mut changed = false;
        let fixed = |j: usize, lo: &[f64], up: &[f64]| up[j] - lo[j] <= EPS;

        for (ri, row) in model.constraints.iter().enumerate() {
            if !live_rows[ri] {
                continue;
            }
            // Partition into fixed (constant) and free terms.
            let mut constant = 0.0;
            let mut free: Vec<(usize, f64)> = Vec::new();
            for &(j, a) in &row.terms {
                let j = j as usize;
                if fixed(j, &lower, &upper) {
                    constant += a * lower[j];
                } else if a != 0.0 {
                    free.push((j, a));
                }
            }
            let rhs = row.rhs - constant;

            match free.len() {
                0 => {
                    let ok = match row.cmp {
                        Cmp::Le => 0.0 <= rhs + EPS,
                        Cmp::Ge => 0.0 >= rhs - EPS,
                        Cmp::Eq => rhs.abs() <= EPS,
                    };
                    if !ok {
                        return Presolved::Infeasible;
                    }
                    live_rows[ri] = false;
                    changed = true;
                }
                1 => {
                    // Singleton: fold into bounds.
                    let (j, a) = free[0];
                    let bound = rhs / a;
                    let tighten_upper = match row.cmp {
                        Cmp::Le => a > 0.0,
                        Cmp::Ge => a < 0.0,
                        Cmp::Eq => true,
                    };
                    let tighten_lower = match row.cmp {
                        Cmp::Le => a < 0.0,
                        Cmp::Ge => a > 0.0,
                        Cmp::Eq => true,
                    };
                    if tighten_upper && bound < upper[j] - EPS {
                        upper[j] = if integer[j] {
                            (bound + EPS).floor()
                        } else {
                            bound
                        };
                        changed = true;
                    }
                    if tighten_lower && bound > lower[j] + EPS {
                        lower[j] = if integer[j] {
                            (bound - EPS).ceil()
                        } else {
                            bound
                        };
                        changed = true;
                    }
                    if lower[j] > upper[j] + EPS {
                        return Presolved::Infeasible;
                    }
                    live_rows[ri] = false;
                }
                _ => {
                    // Redundancy: worst-case LHS still within the rhs?
                    if row.cmp == Cmp::Le {
                        let mut worst = 0.0;
                        let mut unbounded = false;
                        for &(j, a) in &free {
                            let extreme = if a > 0.0 { upper[j] } else { lower[j] };
                            if extreme.is_infinite() {
                                unbounded = true;
                                break;
                            }
                            worst += a * extreme;
                        }
                        if !unbounded && worst <= rhs + EPS {
                            live_rows[ri] = false;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced model.
    let mut states = Vec::with_capacity(model.vars.len());
    let mut reduced = Model::new(model.sense);
    for j in 0..model.vars.len() {
        if upper[j] - lower[j] <= EPS {
            states.push(VarState::Fixed(lower[j]));
        } else {
            let id = reduced.add_continuous(lower[j], upper[j]);
            if integer[j] {
                reduced.vars[id.index()].integer = true;
            }
            states.push(VarState::Kept(id.index()));
        }
    }

    // Objective: drop fixed columns (the constant offset does not change
    // the argmax; callers evaluate objectives in original space).
    let mut objective = vec![0.0; reduced.num_vars()];
    for (j, s) in states.iter().enumerate() {
        if let VarState::Kept(i) = s {
            objective[*i] = model.objective[j];
        }
    }
    reduced.objective = objective;

    for (ri, row) in model.constraints.iter().enumerate() {
        if !live_rows[ri] {
            continue;
        }
        let mut constant = 0.0;
        let mut terms: Vec<(u32, f64)> = Vec::new();
        for &(j, a) in &row.terms {
            match &states[j as usize] {
                VarState::Fixed(v) => constant += a * v,
                // Checked, not `as`: a kept-variable index past u32::MAX
                // must abort, not silently alias a low column.
                VarState::Kept(i) => terms.push((
                    u32::try_from(*i).expect("kept-variable index exceeds u32::MAX"),
                    a,
                )),
            }
        }
        reduced.constraints.push(crate::model::ConstraintDef {
            terms,
            cmp: row.cmp,
            rhs: row.rhs - constant,
        });
    }

    Presolved::Reduced {
        reduced,
        map: PresolveMap { states },
    }
}

/// Presolve statistics: `(variables eliminated, rows eliminated)`, or
/// `(usize::MAX, usize::MAX)` when presolve proves infeasibility.
pub fn presolve_stats(model: &Model) -> (usize, usize) {
    match presolve(model) {
        Presolved::Reduced { reduced, map } => (
            map.eliminated(),
            model.num_constraints() - reduced.num_constraints(),
        ),
        Presolved::Infeasible => (usize::MAX, usize::MAX),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, MipOptions, Sense};

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_fixed(true);
        let y = m.add_binary();
        m.set_objective(LinExpr::new().plus(2.0, x).plus(1.0, y));
        m.add_constraint(LinExpr::new().plus(1.0, x).plus(1.0, y), Cmp::Le, 1.0);
        match presolve(&m) {
            Presolved::Reduced { reduced, map } => {
                // x = 1 turns the row into the singleton y ≤ 0, which
                // fixes y as well: the whole model presolves away.
                assert_eq!(reduced.num_vars(), 0);
                assert_eq!(map.eliminated(), 2);
                assert_eq!(reduced.num_constraints(), 0);
                let expanded = map.expand(&[]);
                assert_eq!(expanded, vec![1.0, 0.0]);
            }
            Presolved::Infeasible => panic!("feasible model"),
        }
    }

    #[test]
    fn contradictory_singletons_prove_infeasibility() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous(0.0, 10.0);
        m.set_objective(LinExpr::new().plus(1.0, x));
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Ge, 8.0);
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 3.0);
        assert!(matches!(presolve(&m), Presolved::Infeasible));
    }

    #[test]
    fn integer_bounds_round_inward() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary();
        m.set_objective(LinExpr::new().plus(1.0, x));
        // x ≤ 0.4 → integer x ≤ 0 → fixed at 0.
        m.add_constraint(LinExpr::new().plus(1.0, x), Cmp::Le, 0.4);
        match presolve(&m) {
            Presolved::Reduced { reduced, map } => {
                assert_eq!(reduced.num_vars(), 0);
                assert_eq!(map.expand(&[]), vec![0.0]);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn redundant_rows_are_dropped() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary();
        let y = m.add_binary();
        m.set_objective(LinExpr::sum([x, y]));
        // x + y ≤ 5 can never bind for binaries.
        m.add_constraint(LinExpr::sum([x, y]), Cmp::Le, 5.0);
        // x + y ≤ 1 binds.
        m.add_constraint(LinExpr::sum([x, y]), Cmp::Le, 1.0);
        match presolve(&m) {
            Presolved::Reduced { reduced, .. } => {
                assert_eq!(reduced.num_constraints(), 1);
                assert_eq!(reduced.num_vars(), 2);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn projection_carries_warm_starts() {
        let mut m = Model::new(Sense::Maximize);
        let _fixed = m.add_binary_fixed(false);
        let y = m.add_binary();
        let z = m.add_binary();
        m.set_objective(LinExpr::sum([y, z]));
        m.add_constraint(LinExpr::sum([y, z]), Cmp::Le, 1.0);
        match presolve(&m) {
            Presolved::Reduced { map, .. } => {
                let projected = map.project(&[0.0, 1.0, 0.0]);
                assert_eq!(projected, vec![1.0, 0.0]);
                assert_eq!(map.expand(&projected), vec![0.0, 1.0, 0.0]);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }

    #[test]
    fn soc_shaped_model_shrinks_dramatically() {
        // 6 attributes, 3 pinned off; 4 queries, 2 referencing pinned
        // attributes (their y is forced to 0 by singleton tightening).
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..6)
            .map(|j| {
                if j < 3 {
                    m.add_binary()
                } else {
                    m.add_binary_fixed(false)
                }
            })
            .collect();
        let queries: &[&[usize]] = &[&[0, 1], &[1, 2], &[3, 4], &[0, 5]];
        let mut obj = LinExpr::new();
        for q in queries {
            let y = m.add_binary();
            obj = obj.plus(1.0, y);
            for &j in *q {
                m.add_constraint(LinExpr::new().plus(1.0, y).plus(-1.0, xs[j]), Cmp::Le, 0.0);
            }
        }
        m.set_objective(obj);
        m.add_constraint(LinExpr::sum(xs.iter().copied()), Cmp::Le, 2.0);

        let before_vars = m.num_vars();
        match presolve(&m) {
            Presolved::Reduced { reduced, map } => {
                // 3 pinned x's and the 2 dead y's must disappear.
                assert!(map.eliminated() >= 5, "eliminated {}", map.eliminated());
                assert!(reduced.num_vars() <= before_vars - 5);
                // Optimum must be preserved end-to-end.
                let opts = MipOptions {
                    integral_objective: true,
                    ..Default::default()
                };
                let full = m.solve_mip(&opts).unwrap();
                let red = reduced.solve_mip(&opts).unwrap();
                let expanded = map.expand(&red.values);
                assert!((m.objective_value(&expanded) - full.objective).abs() < 1e-6);
            }
            Presolved::Infeasible => panic!("feasible"),
        }
    }
}
