//! Micro-benchmarks for the LP/MIP solver: dense simplex solves at
//! growing sizes, knapsack-style branch-and-bound, and the effect of a
//! warm-start incumbent.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use soc_solver::{Cmp, LinExpr, MipOptions, Model, Sense};
use std::hint::black_box;

/// Deterministic pseudo-random stream (avoids pulling rand into benches).
struct Lcg(u64);

impl Lcg {
    fn next_f64(&mut self) -> f64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A random dense LP: maximize c·x subject to Ax ≤ b, 0 ≤ x ≤ 1.
fn random_lp(nvars: usize, nrows: usize, seed: u64) -> Model {
    let mut rng = Lcg(seed);
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..nvars).map(|_| m.add_continuous(0.0, 1.0)).collect();
    m.set_objective(LinExpr::from_terms(
        xs.iter().map(|&x| (rng.next_f64() * 10.0, x)),
    ));
    for _ in 0..nrows {
        let expr = LinExpr::from_terms(xs.iter().map(|&x| (rng.next_f64() * 4.0, x)));
        m.add_constraint(expr, Cmp::Le, nvars as f64 * 0.8);
    }
    m
}

/// A correlated 0/1 knapsack with side constraints.
fn knapsack(nvars: usize, seed: u64) -> Model {
    let mut rng = Lcg(seed);
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..nvars).map(|_| m.add_binary()).collect();
    let weights: Vec<f64> = (0..nvars).map(|_| 1.0 + rng.next_f64() * 9.0).collect();
    m.set_objective(LinExpr::from_terms(
        xs.iter()
            .zip(&weights)
            .map(|(&x, &w)| (w + rng.next_f64() * 2.0, x)),
    ));
    m.add_constraint(
        LinExpr::from_terms(xs.iter().zip(&weights).map(|(&x, &w)| (w, x))),
        Cmp::Le,
        weights.iter().sum::<f64>() * 0.4,
    );
    m.add_constraint(
        LinExpr::sum(xs.iter().copied()),
        Cmp::Le,
        (nvars / 2) as f64,
    );
    m
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_lp");
    for (nvars, nrows) in [(20, 20), (60, 60), (120, 120), (240, 240)] {
        let model = random_lp(nvars, nrows, 7);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nvars}x{nrows}")),
            &model,
            |b, m| b.iter(|| black_box(m.solve_lp().unwrap())),
        );
    }
    group.finish();
}

fn bench_mip(c: &mut Criterion) {
    let mut group = c.benchmark_group("branch_and_bound");
    group.sample_size(20);
    for nvars in [10usize, 20, 30] {
        let model = knapsack(nvars, 3);
        let opts = MipOptions::default();
        group.bench_with_input(BenchmarkId::new("cold", nvars), &model, |b, m| {
            b.iter(|| black_box(m.solve_mip(&opts).unwrap()))
        });
        // Warm start from the previously-found optimum: pruning is maximal.
        let incumbent = model.solve_mip(&opts).unwrap().values;
        let warm = MipOptions {
            initial_solution: Some(incumbent),
            ..Default::default()
        };
        group.bench_with_input(BenchmarkId::new("warm", nvars), &model, |b, m| {
            b.iter(|| black_box(m.solve_mip(&warm).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_mip);
criterion_main!(benches);
