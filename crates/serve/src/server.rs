//! The TCP server: accept loop, admission control, per-connection
//! protocol state machine, and graceful shutdown.
//!
//! Threading model: one OS thread per admitted connection (bounded by
//! `max_conns`) plus a shared [`soc_pool::Service`] of solver workers.
//! Connection threads never solve; they parse frames, validate, and
//! submit jobs, so a slow solve cannot stall another client's protocol
//! handling beyond worker availability.
//!
//! Shutdown ordering (any of: a `shutdown` frame, [`ServerHandle::
//! shutdown`], accept-loop error):
//!
//! 1. the shutdown flag flips and a self-connection pokes `accept()`;
//! 2. the accept loop stops admitting and turns new arrivals away;
//! 3. connection threads notice the flag at their next poll tick, send
//!    a final `shutting_down` error frame, and exit — but only after
//!    finishing the request in flight (solves already dispatched still
//!    stream their results);
//! 4. the accept loop joins every connection thread;
//! 5. the solver service drains (queue runs dry, workers join).
//!
//! Step 5 after step 4 means no connection thread can be blocked on a
//! solve the pool will never run.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

use soc_core::{SocAlgorithm, SocInstance};
use soc_data::{QueryLog, Tuple};
use soc_obs::{counter, MetricValue};
use soc_pool::Service;

use crate::json::{self, Json};
use crate::proto::{
    error_frame, parse_frame, reply_frame, ErrorCode, ProtoError, Request, SolveParams,
    PROTOCOL_VERSION,
};
use crate::sessions::SessionStore;

/// How often a blocked connection read wakes up to check the shutdown
/// flag and the idle clock.
const POLL_TICK: Duration = Duration::from_millis(100);

/// Server tunables. `Default` suits tests: ephemeral port, loopback.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind host.
    pub host: String,
    /// Bind port; 0 picks an ephemeral port.
    pub port: u16,
    /// Solver worker threads. Defaults to the host's available
    /// parallelism; set explicitly (or pass `--threads` to `soc serve`)
    /// to override.
    pub threads: usize,
    /// Connections served concurrently; arrivals beyond this get a
    /// `busy` error frame and are closed.
    pub max_conns: usize,
    /// Close connections idle longer than this.
    pub idle_timeout: Duration,
    /// Abort a write blocked longer than this (stalled client).
    pub write_timeout: Duration,
    /// Longest accepted request line, in bytes.
    pub max_line_bytes: usize,
    /// Most sessions the tenant table admits.
    pub max_sessions: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            host: "127.0.0.1".to_string(),
            port: 0,
            threads: std::thread::available_parallelism().map_or(2, std::num::NonZero::get),
            max_conns: 32,
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(10),
            max_line_bytes: 4 << 20,
            max_sessions: 64,
        }
    }
}

/// Counters reported when [`Server::serve`] returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeReport {
    /// Connections admitted and served.
    pub conns_accepted: u64,
    /// Connections turned away at the admission limit.
    pub conns_rejected: u64,
    /// Frames processed (including ones answered with errors).
    pub requests: u64,
}

/// State shared between the accept loop, connection threads, and
/// [`ServerHandle`]s.
struct Shared {
    shutdown: AtomicBool,
    addr: SocketAddr,
    sessions: SessionStore,
    active_conns: AtomicUsize,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    requests: AtomicU64,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Flips the flag and pokes the (blocking) accept call with a
    /// throwaway self-connection so the loop observes it promptly.
    fn begin_shutdown(&self) {
        if !self.shutdown.swap(true, Ordering::SeqCst) {
            let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        }
    }
}

/// A cloneable remote control for a bound server; lets another thread
/// (or a signal handler) stop [`Server::serve`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// Begins graceful shutdown; idempotent.
    pub fn shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Whether shutdown has begun.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down()
    }
}

/// A bound, not-yet-serving server.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and initializes observability. No connection
    /// is accepted until [`Server::serve`] runs.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind((cfg.host.as_str(), cfg.port))?;
        let addr = listener.local_addr()?;
        soc_obs::enable_all();
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            addr,
            sessions: SessionStore::new(cfg.max_sessions),
            active_conns: AtomicUsize::new(0),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            requests: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            cfg,
            shared,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// A remote control usable from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until shutdown, then drains and joins
    /// everything (see the module docs for the ordering).
    pub fn serve(self) -> io::Result<ServeReport> {
        let service = Arc::new(Service::new(self.cfg.threads));
        let mut conn_threads: Vec<JoinHandle<()>> = Vec::new();

        for incoming in self.listener.incoming() {
            if self.shared.shutting_down() {
                break;
            }
            let stream = match incoming {
                Ok(s) => s,
                // Transient per-connection failures (e.g. the peer reset
                // between accept and here) should not kill the server.
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.shared.begin_shutdown();
                    let _ = e;
                    break;
                }
            };
            conn_threads.retain(|h| !h.is_finished());

            if self.shared.active_conns.load(Ordering::SeqCst) >= self.cfg.max_conns {
                self.shared.conns_rejected.fetch_add(1, Ordering::Relaxed);
                counter!("serve.conns_rejected").inc();
                reject_over_capacity(stream, self.cfg.write_timeout);
                continue;
            }

            self.shared.active_conns.fetch_add(1, Ordering::SeqCst);
            self.shared.conns_accepted.fetch_add(1, Ordering::Relaxed);
            counter!("serve.conns_accepted").inc();
            let shared = Arc::clone(&self.shared);
            let service = Arc::clone(&service);
            let cfg = self.cfg.clone();
            let handle = std::thread::Builder::new()
                .name("soc-serve-conn".to_string())
                .spawn(move || {
                    let _guard = ConnGuard(&shared.active_conns);
                    let conn = Connection {
                        shared: &shared,
                        service: &service,
                        cfg: &cfg,
                    };
                    conn.run(stream);
                })
                .expect("spawn connection thread");
            conn_threads.push(handle);
        }

        // Shutdown: no new work can arrive. Join connections first —
        // the pool is still alive, so their in-flight solves finish.
        for handle in conn_threads {
            let _ = handle.join();
        }
        // All submitters are gone; drain the (now static) queue.
        match Arc::try_unwrap(service) {
            Ok(service) => service.shutdown_drain(),
            // Unreachable in practice (every clone lived in a joined
            // thread), but the abort path in Drop is a safe fallback.
            Err(service) => drop(service),
        }

        Ok(ServeReport {
            conns_accepted: self.shared.conns_accepted.load(Ordering::Relaxed),
            conns_rejected: self.shared.conns_rejected.load(Ordering::Relaxed),
            requests: self.shared.requests.load(Ordering::Relaxed),
        })
    }
}

/// Decrements the live-connection count when a connection thread exits,
/// however it exits.
struct ConnGuard<'a>(&'a AtomicUsize);

impl Drop for ConnGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

fn reject_over_capacity(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let err = ProtoError::new(ErrorCode::Busy, "connection limit reached, try again later");
    let _ = stream.write_all(error_frame(None, &err).as_bytes());
}

/// What `poll_line` observed.
enum ReadEvent {
    /// A complete line (without the trailing newline).
    Line(Vec<u8>),
    /// The read timed out — caller should check shutdown/idle clocks.
    Tick,
    /// Peer closed the connection.
    Eof,
    /// The line limit was exceeded before a newline arrived.
    TooLong,
}

/// Incremental newline-delimited framing over a read-timeout socket.
struct LineReader {
    stream: TcpStream,
    buf: Vec<u8>,
    max_line: usize,
}

impl LineReader {
    fn new(stream: TcpStream, max_line: usize) -> Self {
        Self {
            stream,
            buf: Vec::new(),
            max_line,
        }
    }

    fn poll_line(&mut self) -> io::Result<ReadEvent> {
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let mut line: Vec<u8> = self.buf.drain(..=nl).collect();
                line.pop(); // the newline
                if line.last() == Some(&b'\r') {
                    line.pop(); // tolerate CRLF (telnet-style clients)
                }
                return Ok(ReadEvent::Line(line));
            }
            if self.buf.len() > self.max_line {
                return Ok(ReadEvent::TooLong);
            }
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(ReadEvent::Eof),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(ReadEvent::Tick),
                Err(e) if e.kind() == io::ErrorKind::TimedOut => return Ok(ReadEvent::Tick),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }
}

/// Whether the connection loop continues after a frame.
enum Flow {
    Continue,
    Close,
}

/// One worker-solved instance: index, retained bitstring, objective.
/// `None` payload marks a solve skipped due to cancellation.
type SolveOutcome = (usize, Option<(String, usize)>);

struct Connection<'a> {
    shared: &'a Shared,
    service: &'a Service,
    cfg: &'a ServerConfig,
}

impl Connection<'_> {
    fn run(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(POLL_TICK));
        let _ = stream.set_write_timeout(Some(self.cfg.write_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        let mut reader = LineReader::new(read_half, self.cfg.max_line_bytes);
        let mut writer = stream;
        let mut idle = Duration::ZERO;
        let mut hello_done = false;

        loop {
            match reader.poll_line() {
                Ok(ReadEvent::Line(line)) => {
                    idle = Duration::ZERO;
                    self.shared.requests.fetch_add(1, Ordering::Relaxed);
                    counter!("serve.frames_in").inc();
                    match self.handle_line(&line, &mut writer, &mut hello_done) {
                        Ok(Flow::Continue) => {}
                        Ok(Flow::Close) | Err(_) => break,
                    }
                }
                Ok(ReadEvent::Tick) => {
                    if self.shared.shutting_down() {
                        let err =
                            ProtoError::new(ErrorCode::ShuttingDown, "server is shutting down");
                        let _ = send(&mut writer, &error_frame(None, &err));
                        break;
                    }
                    idle += POLL_TICK;
                    if idle >= self.cfg.idle_timeout {
                        let err = ProtoError::new(ErrorCode::IdleTimeout, "connection idle");
                        let _ = send(&mut writer, &error_frame(None, &err));
                        break;
                    }
                }
                Ok(ReadEvent::Eof) => break,
                Ok(ReadEvent::TooLong) => {
                    // Framing is lost; one last typed error, then close.
                    let err = ProtoError::new(
                        ErrorCode::LineTooLong,
                        format!("request line exceeds {} bytes", self.cfg.max_line_bytes),
                    );
                    let _ = send(&mut writer, &error_frame(None, &err));
                    break;
                }
                Err(_) => break,
            }
        }
    }

    fn handle_line(
        &self,
        line: &[u8],
        writer: &mut TcpStream,
        hello_done: &mut bool,
    ) -> io::Result<Flow> {
        let Ok(text) = std::str::from_utf8(line) else {
            let err = ProtoError::new(ErrorCode::Parse, "request line is not valid UTF-8");
            send(writer, &error_frame(None, &err))?;
            return Ok(Flow::Continue);
        };
        let frame = parse_frame(text);
        let id = frame.id;
        let request = match frame.body {
            Ok(r) => r,
            Err(e) => {
                counter!("serve.errors").inc();
                send(writer, &error_frame(id.as_ref(), &e))?;
                return Ok(Flow::Continue);
            }
        };

        // Everything except hello/ping requires a completed handshake.
        if !*hello_done && !matches!(request, Request::Hello { .. } | Request::Ping) {
            let err = ProtoError::new(ErrorCode::NeedHello, "send hello before other requests");
            counter!("serve.errors").inc();
            send(writer, &error_frame(id.as_ref(), &err))?;
            return Ok(Flow::Continue);
        }

        match request {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    let err = ProtoError::new(
                        ErrorCode::UnsupportedVersion,
                        format!(
                            "server speaks version {PROTOCOL_VERSION}, client asked for {version}"
                        ),
                    );
                    counter!("serve.errors").inc();
                    send(writer, &error_frame(id.as_ref(), &err))?;
                    return Ok(Flow::Continue);
                }
                *hello_done = true;
                send(
                    writer,
                    &reply_frame(
                        "hello_ok",
                        id.as_ref(),
                        vec![
                            ("version", json::nu(PROTOCOL_VERSION)),
                            ("server", json::s("soc-serve")),
                        ],
                    ),
                )?;
            }
            Request::Ping => {
                send(writer, &reply_frame("pong", id.as_ref(), vec![]))?;
            }
            Request::Load { session, data } => {
                self.reply_mutation(writer, id.as_ref(), "load_ok", &session, || {
                    self.shared.sessions.load(&session, &data)
                })?;
            }
            Request::Ingest { session, data } => {
                self.reply_mutation(writer, id.as_ref(), "ingest_ok", &session, || {
                    self.shared.sessions.ingest(&session, &data)
                })?;
            }
            Request::Solve { params, tuple } => {
                self.handle_solve(writer, id.as_ref(), params, tuple)?;
            }
            Request::SolveBatch { params, tuples } => {
                self.handle_solve_batch(writer, id.as_ref(), params, tuples)?;
            }
            Request::Stats => {
                send(writer, &stats_frame(self.shared, id.as_ref()))?;
            }
            Request::Shutdown => {
                send(writer, &reply_frame("shutdown_ok", id.as_ref(), vec![]))?;
                self.shared.begin_shutdown();
                return Ok(Flow::Close);
            }
        }
        Ok(Flow::Continue)
    }

    fn reply_mutation(
        &self,
        writer: &mut TcpStream,
        id: Option<&Json>,
        ok_type: &str,
        session: &str,
        op: impl FnOnce() -> Result<crate::sessions::SessionInfo, ProtoError>,
    ) -> io::Result<()> {
        match op() {
            Ok(info) => send(
                writer,
                &reply_frame(
                    ok_type,
                    id,
                    vec![
                        ("session", json::s(session)),
                        ("queries", json::nu(info.queries as u64)),
                        ("total_weight", json::nu(info.total_weight as u64)),
                        ("attrs", json::nu(info.attrs as u64)),
                    ],
                ),
            ),
            Err(e) => {
                counter!("serve.errors").inc();
                send(writer, &error_frame(id, &e))
            }
        }
    }

    /// Validates a solve request and pins the session log; shared by the
    /// single and batch paths.
    fn prepare(
        &self,
        params: &SolveParams,
        bits: &str,
    ) -> Result<(Arc<QueryLog>, Tuple), ProtoError> {
        let log = self.shared.sessions.get(&params.session)?;
        let tuple = Tuple::from_bitstring(bits).ok_or_else(|| {
            ProtoError::new(ErrorCode::BadField, format!("invalid tuple {bits:?}"))
        })?;
        if tuple.universe() != log.num_attrs() {
            return Err(ProtoError::new(
                ErrorCode::BadField,
                format!(
                    "tuple width {} does not match session width {}",
                    tuple.universe(),
                    log.num_attrs()
                ),
            ));
        }
        Ok((log, tuple))
    }

    fn handle_solve(
        &self,
        writer: &mut TcpStream,
        id: Option<&Json>,
        params: SolveParams,
        tuple: String,
    ) -> io::Result<()> {
        let (log, tuple) = match self.prepare(&params, &tuple) {
            Ok(p) => p,
            Err(e) => {
                counter!("serve.errors").inc();
                return send(writer, &error_frame(id, &e));
            }
        };
        let (tx, rx) = mpsc::channel::<SolveOutcome>();
        let algo = params.algo;
        let m = params.m;
        let project = params.project;
        let job = move || {
            let outcome = run_solve(&log, &tuple, m, algo, project);
            let _ = tx.send((0, Some(outcome)));
        };
        if self.service.submit(job).is_err() {
            let err = ProtoError::new(ErrorCode::ShuttingDown, "solver pool is shutting down");
            counter!("serve.errors").inc();
            return send(writer, &error_frame(id, &err));
        }
        // The pool stays alive for as long as this thread does, so this
        // recv can only fail if the job panicked (sender dropped unsent).
        match rx.recv() {
            Ok((_, Some((retained, satisfied)))) => {
                counter!("serve.solves").inc();
                send(
                    writer,
                    &reply_frame(
                        "solve_ok",
                        id,
                        vec![
                            ("retained", json::s(retained)),
                            ("satisfied", json::nu(satisfied as u64)),
                            ("algo", json::s(algo.as_str())),
                        ],
                    ),
                )
            }
            Ok((_, None)) | Err(_) => {
                let err = ProtoError::new(ErrorCode::Internal, "solver failed on this instance");
                counter!("serve.errors").inc();
                send(writer, &error_frame(id, &err))
            }
        }
    }

    fn handle_solve_batch(
        &self,
        writer: &mut TcpStream,
        id: Option<&Json>,
        params: SolveParams,
        tuples: Vec<String>,
    ) -> io::Result<()> {
        // Validate every tuple before dispatching any work: a batch
        // either starts whole or not at all.
        let mut prepared = Vec::with_capacity(tuples.len());
        for (i, bits) in tuples.iter().enumerate() {
            match self.prepare(&params, bits) {
                Ok(p) => prepared.push(p),
                Err(mut e) => {
                    e.message = format!("tuples[{i}]: {}", e.message);
                    counter!("serve.errors").inc();
                    return send(writer, &error_frame(id, &e));
                }
            }
        }

        let cancelled = Arc::new(AtomicBool::new(false));
        let (tx, rx) = mpsc::channel::<SolveOutcome>();
        let total = prepared.len();
        let mut dispatched = 0usize;
        for (i, (log, tuple)) in prepared.into_iter().enumerate() {
            let tx = tx.clone();
            let cancelled = Arc::clone(&cancelled);
            let algo = params.algo;
            let m = params.m;
            let project = params.project;
            let job = move || {
                if cancelled.load(Ordering::Relaxed) {
                    let _ = tx.send((i, None));
                    return;
                }
                let outcome = run_solve(&log, &tuple, m, algo, project);
                let _ = tx.send((i, Some(outcome)));
            };
            if self.service.submit(job).is_err() {
                break; // pool shutting down; report the shortfall below
            }
            dispatched += 1;
        }
        drop(tx);

        // Stream results in completion order. A dead client cancels the
        // not-yet-started remainder but we still drain the channel so
        // worker sends never block (they cannot anyway — unbounded
        // channel — but draining keeps the accounting exact).
        let mut delivered = 0usize;
        let mut client_gone = false;
        for _ in 0..dispatched {
            let Ok((index, outcome)) = rx.recv() else {
                break; // a job panicked and dropped its sender
            };
            let Some((retained, satisfied)) = outcome else {
                continue; // cancelled after client_gone; nothing to report
            };
            counter!("serve.solves").inc();
            if client_gone {
                continue;
            }
            let frame = reply_frame(
                "solve_result",
                id,
                vec![
                    ("index", json::nu(index as u64)),
                    ("retained", json::s(retained)),
                    ("satisfied", json::nu(satisfied as u64)),
                ],
            );
            if send(writer, &frame).is_err() {
                client_gone = true;
                cancelled.store(true, Ordering::Relaxed);
                counter!("serve.batch_client_disconnects").inc();
            } else {
                delivered += 1;
            }
        }

        if client_gone {
            // Surface the half-written batch as an I/O error so the
            // connection loop closes; the results channel is drained.
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "client disconnected mid-batch",
            ));
        }
        if dispatched < total {
            let err = ProtoError::new(
                ErrorCode::ShuttingDown,
                format!(
                    "pool rejected {} of {} instances",
                    total - dispatched,
                    total
                ),
            );
            counter!("serve.errors").inc();
            return send(writer, &error_frame(id, &err));
        }
        send(
            writer,
            &reply_frame(
                "solve_batch_done",
                id,
                vec![
                    ("count", json::nu(total as u64)),
                    ("delivered", json::nu(delivered as u64)),
                ],
            ),
        )
    }
}

/// Runs one solve; executes on a pool worker.
fn run_solve(
    log: &QueryLog,
    tuple: &Tuple,
    m: usize,
    algo: crate::proto::Algo,
    project: bool,
) -> (String, usize) {
    let instance = SocInstance::new(log, tuple, m);
    let boxed = algo.build();
    let algo_ref: &dyn SocAlgorithm = &*boxed;
    let solution = if project {
        soc_core::Projected(algo_ref).solve(&instance)
    } else {
        algo_ref.solve(&instance)
    };
    (solution.retained.to_bitstring(), solution.satisfied)
}

fn send(writer: &mut TcpStream, frame: &str) -> io::Result<()> {
    counter!("serve.frames_out").inc();
    writer.write_all(frame.as_bytes())
}

/// Renders the `stats_ok` frame: live registry snapshot, recent spans,
/// and server-level gauges.
fn stats_frame(shared: &Shared, id: Option<&Json>) -> String {
    let snapshot = soc_obs::registry().snapshot();
    let metrics: Vec<(String, Json)> = snapshot
        .rows
        .iter()
        .map(|row| {
            let value = match &row.value {
                MetricValue::Counter(v) => json::nu(*v),
                MetricValue::Gauge(v) => Json::Num(*v as f64),
                MetricValue::Float(v) => Json::Num(*v),
                MetricValue::Histogram(h) => json::obj([
                    ("count", json::nu(h.count)),
                    ("sum", json::nu(h.sum)),
                    ("max", json::nu(h.max)),
                    ("mean", Json::Num(h.mean())),
                    ("p50_le", json::nu(h.quantile_upper(0.5))),
                    ("p99_le", json::nu(h.quantile_upper(0.99))),
                ]),
            };
            (row.name.clone(), value)
        })
        .collect();

    // Most recent spans only: the drain is destructive and a busy server
    // accumulates spans quickly, so cap the reply.
    const MAX_SPANS: usize = 64;
    let mut spans = soc_obs::drain_spans();
    if spans.len() > MAX_SPANS {
        spans.drain(..spans.len() - MAX_SPANS);
    }
    let spans: Vec<Json> = spans
        .iter()
        .map(|r| {
            json::obj([
                ("name", json::s(r.name)),
                ("thread", json::nu(r.thread)),
                ("start_ns", json::nu(r.start_ns)),
                ("dur_ns", json::nu(r.dur_ns)),
            ])
        })
        .collect();

    reply_frame(
        "stats_ok",
        id,
        vec![
            ("metrics", Json::Obj(metrics)),
            ("spans", Json::Arr(spans)),
            ("sessions", json::nu(shared.sessions.len() as u64)),
            (
                "active_conns",
                json::nu(shared.active_conns.load(Ordering::SeqCst) as u64),
            ),
        ],
    )
}
