//! The versioned JSON-lines protocol: typed requests, error codes, and
//! frame parsing. See `PROTOCOL.md` at the repository root for the wire
//! grammar; this module is its executable counterpart.
//!
//! Every frame is one `\n`-terminated line holding one JSON object. The
//! contract the server hardening tests pin down: **any** byte sequence a
//! client sends yields either a typed request or a typed
//! [`ProtoError`] — never a panic, and never a silently dropped
//! connection (except when framing itself is unrecoverable, e.g. an
//! over-long line, where the server sends a final error frame and then
//! closes).

use crate::json::{self, Json};

/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// Machine-readable error codes carried in `error` frames.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The line is not valid JSON or not a JSON object.
    Parse,
    /// First request on a connection must be `hello`.
    NeedHello,
    /// The client requested a protocol version this server cannot speak.
    UnsupportedVersion,
    /// Unknown `type` value.
    UnknownType,
    /// A required field is absent.
    MissingField,
    /// A field is present but has the wrong type or an invalid value.
    BadField,
    /// The named session does not exist.
    NoSuchSession,
    /// Query-log data failed to parse or is inconsistent with the session.
    BadData,
    /// The request line exceeded the server's size limit (fatal: the
    /// server closes the connection after sending this, as framing is
    /// lost).
    LineTooLong,
    /// The connection was admitted over capacity and is being closed.
    Busy,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
    /// The connection sat idle past the server's idle timeout.
    IdleTimeout,
    /// The per-tenant session table is full.
    TooManySessions,
    /// The request was valid but the server failed internally.
    Internal,
}

impl ErrorCode {
    /// The wire name of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Parse => "parse",
            ErrorCode::NeedHello => "need_hello",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::UnknownType => "unknown_type",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::BadField => "bad_field",
            ErrorCode::NoSuchSession => "no_such_session",
            ErrorCode::BadData => "bad_data",
            ErrorCode::LineTooLong => "line_too_long",
            ErrorCode::Busy => "busy",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::IdleTimeout => "idle_timeout",
            ErrorCode::TooManySessions => "too_many_sessions",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed protocol failure, rendered to the client as an `error` frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Creates an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }
}

/// Which algorithm a solve request runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Algo {
    /// Exhaustive enumeration.
    Brute,
    /// Branch-and-bound ILP.
    Ilp,
    /// Maximal-frequent-itemset solver (the default).
    #[default]
    Mfi,
    /// Deterministic MFI mining.
    MfiDet,
    /// ConsumeAttr greedy.
    Attr,
    /// ConsumeAttrCumul greedy.
    Cumul,
    /// ConsumeQueries greedy.
    Queries,
    /// Local search.
    Local,
}

impl Algo {
    /// Parses the wire name.
    pub fn parse(name: &str) -> Option<Algo> {
        Some(match name {
            "brute" => Algo::Brute,
            "ilp" => Algo::Ilp,
            "mfi" => Algo::Mfi,
            "mfi-det" => Algo::MfiDet,
            "attr" => Algo::Attr,
            "cumul" => Algo::Cumul,
            "queries" => Algo::Queries,
            "local" => Algo::Local,
            _ => return None,
        })
    }

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Algo::Brute => "brute",
            Algo::Ilp => "ilp",
            Algo::Mfi => "mfi",
            Algo::MfiDet => "mfi-det",
            Algo::Attr => "attr",
            Algo::Cumul => "cumul",
            Algo::Queries => "queries",
            Algo::Local => "local",
        }
    }

    /// Instantiates the algorithm. Called inside worker jobs so the
    /// boxed trait object never crosses a thread boundary.
    pub fn build(self) -> Box<dyn soc_core::SocAlgorithm> {
        use soc_core::*;
        match self {
            Algo::Brute => Box::new(BruteForce),
            Algo::Ilp => Box::new(IlpSolver::default()),
            Algo::Mfi => Box::new(MfiSolver::default()),
            Algo::MfiDet => Box::new(MfiSolver::deterministic()),
            Algo::Attr => Box::new(ConsumeAttr),
            Algo::Cumul => Box::new(ConsumeAttrCumul),
            Algo::Queries => Box::new(ConsumeQueries),
            Algo::Local => Box::new(LocalSearch::default()),
        }
    }
}

/// Common solve parameters shared by `solve` and `solve_batch`.
#[derive(Clone, Debug, PartialEq)]
pub struct SolveParams {
    /// Tenant session holding the query log.
    pub session: String,
    /// Attribute budget `m`.
    pub m: usize,
    /// Algorithm to run.
    pub algo: Algo,
    /// Solve on the tuple-projected instance.
    pub project: bool,
}

/// A parsed request body.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Version negotiation; must be the first frame on a connection.
    Hello {
        /// Requested protocol version.
        version: u64,
    },
    /// Replace (or create) a session's query log from inline text data.
    Load {
        /// Tenant session name.
        session: String,
        /// Query log in the `soc_data::io` text format.
        data: String,
    },
    /// Append rows to an existing session's query log.
    Ingest {
        /// Tenant session name.
        session: String,
        /// Additional rows in the same text format.
        data: String,
    },
    /// Solve one tuple.
    Solve {
        /// Shared parameters.
        params: SolveParams,
        /// The tuple as a 0/1 bitstring.
        tuple: String,
    },
    /// Solve many tuples; results stream back as they finish.
    SolveBatch {
        /// Shared parameters.
        params: SolveParams,
        /// The tuples as 0/1 bitstrings.
        tuples: Vec<String>,
    },
    /// Live metric registry + recent trace spans.
    Stats,
    /// Liveness probe.
    Ping,
    /// Ask the server to shut down gracefully.
    Shutdown,
}

/// One parsed frame: the echoed request id (if the client sent one and
/// the line parsed far enough to extract it) plus the typed body or a
/// typed error.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Client-chosen correlation id (string or number), echoed in every
    /// reply to this request.
    pub id: Option<Json>,
    /// The request, or why it could not be one.
    pub body: Result<Request, ProtoError>,
}

/// Parses one line into a [`Frame`]. Total: every input produces a
/// frame; malformed input produces an `Err` body, never a panic.
pub fn parse_frame(line: &str) -> Frame {
    let value = match json::parse(line) {
        Ok(v) => v,
        Err(e) => {
            return Frame {
                id: None,
                body: Err(ProtoError::new(ErrorCode::Parse, e.to_string())),
            }
        }
    };
    if !matches!(value, Json::Obj(_)) {
        return Frame {
            id: None,
            body: Err(ProtoError::new(
                ErrorCode::Parse,
                "frame must be a JSON object",
            )),
        };
    }
    // The id is echoed even on field errors, so pipelined clients can
    // correlate failures. Only strings and numbers are legal ids.
    let id = match value.get("id") {
        None => None,
        Some(v @ (Json::Str(_) | Json::Num(_))) => Some(v.clone()),
        Some(_) => {
            return Frame {
                id: None,
                body: Err(ProtoError::new(
                    ErrorCode::BadField,
                    "id must be a string or number",
                )),
            }
        }
    };
    Frame {
        id,
        body: parse_body(&value),
    }
}

fn parse_body(value: &Json) -> Result<Request, ProtoError> {
    let ty = req_str(value, "type")?;
    match ty {
        "hello" => Ok(Request::Hello {
            version: req_u64(value, "version")?,
        }),
        "load" => Ok(Request::Load {
            session: req_session(value)?,
            data: req_str(value, "data")?.to_string(),
        }),
        "ingest" => Ok(Request::Ingest {
            session: req_session(value)?,
            data: req_str(value, "data")?.to_string(),
        }),
        "solve" => Ok(Request::Solve {
            params: solve_params(value)?,
            tuple: req_str(value, "tuple")?.to_string(),
        }),
        "solve_batch" => {
            let items = value
                .get("tuples")
                .ok_or_else(|| ProtoError::new(ErrorCode::MissingField, "missing field tuples"))?
                .as_array()
                .ok_or_else(|| ProtoError::new(ErrorCode::BadField, "tuples must be an array"))?;
            let tuples = items
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| {
                        ProtoError::new(ErrorCode::BadField, "tuples entries must be strings")
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::SolveBatch {
                params: solve_params(value)?,
                tuples,
            })
        }
        "stats" => Ok(Request::Stats),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ProtoError::new(
            ErrorCode::UnknownType,
            format!("unknown request type {other:?}"),
        )),
    }
}

fn solve_params(value: &Json) -> Result<SolveParams, ProtoError> {
    let m = req_u64(value, "m")?;
    let m = usize::try_from(m)
        .map_err(|_| ProtoError::new(ErrorCode::BadField, "m does not fit usize"))?;
    let algo = match value.get("algo") {
        None => Algo::default(),
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| ProtoError::new(ErrorCode::BadField, "algo must be a string"))?;
            Algo::parse(name).ok_or_else(|| {
                ProtoError::new(ErrorCode::BadField, format!("unknown algorithm {name:?}"))
            })?
        }
    };
    let project = match value.get("project") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| ProtoError::new(ErrorCode::BadField, "project must be a boolean"))?,
    };
    Ok(SolveParams {
        session: req_session(value)?,
        m,
        algo,
        project,
    })
}

/// Session names are bounded, non-empty printable identifiers — they
/// are map keys, so a hostile tenant must not intern unbounded junk.
fn req_session(value: &Json) -> Result<String, ProtoError> {
    let name = req_str(value, "session")?;
    if name.is_empty() || name.len() > 128 {
        return Err(ProtoError::new(
            ErrorCode::BadField,
            "session must be 1..=128 bytes",
        ));
    }
    if name.chars().any(|c| c.is_control()) {
        return Err(ProtoError::new(
            ErrorCode::BadField,
            "session must not contain control characters",
        ));
    }
    Ok(name.to_string())
}

fn req_str<'a>(value: &'a Json, field: &str) -> Result<&'a str, ProtoError> {
    value
        .get(field)
        .ok_or_else(|| ProtoError::new(ErrorCode::MissingField, format!("missing field {field}")))?
        .as_str()
        .ok_or_else(|| ProtoError::new(ErrorCode::BadField, format!("{field} must be a string")))
}

fn req_u64(value: &Json, field: &str) -> Result<u64, ProtoError> {
    value
        .get(field)
        .ok_or_else(|| ProtoError::new(ErrorCode::MissingField, format!("missing field {field}")))?
        .as_u64()
        .ok_or_else(|| {
            ProtoError::new(
                ErrorCode::BadField,
                format!("{field} must be a non-negative integer"),
            )
        })
}

/// Renders an `error` reply frame.
pub fn error_frame(id: Option<&Json>, err: &ProtoError) -> String {
    let mut fields = vec![
        ("type".to_string(), json::s("error")),
        ("code".to_string(), json::s(err.code.as_str())),
        ("message".to_string(), json::s(&err.message)),
    ];
    if let Some(id) = id {
        fields.push(("id".to_string(), id.clone()));
    }
    let mut line = Json::Obj(fields).render();
    line.push('\n');
    line
}

/// Renders a success reply frame of type `ty` with extra fields.
pub fn reply_frame(ty: &str, id: Option<&Json>, fields: Vec<(&'static str, Json)>) -> String {
    let mut all = vec![("type".to_string(), json::s(ty))];
    for (k, v) in fields {
        all.push((k.to_string(), v));
    }
    if let Some(id) = id {
        all.push(("id".to_string(), id.clone()));
    }
    let mut line = Json::Obj(all).render();
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_request_surface() {
        let f = parse_frame(r#"{"type":"hello","version":1}"#);
        assert_eq!(f.body.unwrap(), Request::Hello { version: 1 });

        let f = parse_frame(r#"{"type":"load","session":"t1","data":"110\n011\n","id":7}"#);
        assert_eq!(f.id, Some(Json::Num(7.0)));
        assert!(matches!(f.body.unwrap(), Request::Load { session, .. } if session == "t1"));

        let f = parse_frame(
            r#"{"type":"solve","session":"t1","tuple":"110","m":2,"algo":"brute","project":true}"#,
        );
        match f.body.unwrap() {
            Request::Solve { params, tuple } => {
                assert_eq!(tuple, "110");
                assert_eq!(params.m, 2);
                assert_eq!(params.algo, Algo::Brute);
                assert!(params.project);
            }
            other => panic!("{other:?}"),
        }

        let f =
            parse_frame(r#"{"type":"solve_batch","session":"t1","tuples":["110","011"],"m":1}"#);
        match f.body.unwrap() {
            Request::SolveBatch { params, tuples } => {
                assert_eq!(tuples, vec!["110", "011"]);
                assert_eq!(params.algo, Algo::Mfi); // default
            }
            other => panic!("{other:?}"),
        }

        for (line, want) in [
            (r#"{"type":"stats"}"#, Request::Stats),
            (r#"{"type":"ping"}"#, Request::Ping),
            (r#"{"type":"shutdown"}"#, Request::Shutdown),
        ] {
            assert_eq!(parse_frame(line).body.unwrap(), want);
        }
    }

    #[test]
    fn every_algo_name_roundtrips() {
        for name in [
            "brute", "ilp", "mfi", "mfi-det", "attr", "cumul", "queries", "local",
        ] {
            assert_eq!(Algo::parse(name).unwrap().as_str(), name);
        }
        assert_eq!(Algo::parse("quantum"), None);
    }

    #[test]
    fn id_is_echoed_even_on_field_errors() {
        let f = parse_frame(r#"{"type":"solve","id":"req-9"}"#);
        assert_eq!(f.id, Some(Json::Str("req-9".into())));
        assert_eq!(f.body.unwrap_err().code, ErrorCode::MissingField);
    }

    #[test]
    fn error_frames_render_with_and_without_id() {
        let err = ProtoError::new(ErrorCode::Parse, "broken \"quote\"");
        let line = error_frame(None, &err);
        assert!(line.ends_with('\n'));
        let v = json::parse(line.trim_end()).unwrap();
        assert_eq!(v.get("type").and_then(Json::as_str), Some("error"));
        assert_eq!(v.get("code").and_then(Json::as_str), Some("parse"));
        assert_eq!(
            v.get("message").and_then(Json::as_str),
            Some("broken \"quote\"")
        );

        let id = Json::Num(3.0);
        let v = json::parse(error_frame(Some(&id), &err).trim_end()).unwrap();
        assert_eq!(v.get("id").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn session_name_hardening() {
        let f = parse_frame(r#"{"type":"load","session":"","data":""}"#);
        assert_eq!(f.body.unwrap_err().code, ErrorCode::BadField);
        let long = "x".repeat(129);
        let f = parse_frame(&format!(
            r#"{{"type":"load","session":"{long}","data":""}}"#
        ));
        assert_eq!(f.body.unwrap_err().code, ErrorCode::BadField);
        let f = parse_frame(r#"{"type":"load","session":"a\u0001b","data":""}"#);
        assert_eq!(f.body.unwrap_err().code, ErrorCode::BadField);
        // Unicode names are fine.
        let f = parse_frame(r#"{"type":"load","session":"カタログ","data":""}"#);
        assert!(f.body.is_ok());
    }
}
