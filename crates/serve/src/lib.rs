//! # soc-serve
//!
//! A long-running TCP service for SOC-CB-QL solving: newline-delimited
//! JSON frames over `std::net` sockets, with zero external
//! dependencies. See `PROTOCOL.md` at the repository root for the wire
//! grammar and `DESIGN.md` for the admission-control and shutdown
//! design.
//!
//! The protocol (version 1) in one glance:
//!
//! ```text
//! → {"type":"hello","version":1}
//! ← {"type":"hello_ok","version":1,"server":"soc-serve"}
//! → {"type":"load","session":"cars","data":"110000\n100100\n"}
//! ← {"type":"load_ok","session":"cars","queries":2,"total_weight":2,"attrs":6}
//! → {"type":"solve","session":"cars","tuple":"110111","m":3,"id":1}
//! ← {"type":"solve_ok","retained":"110100","satisfied":2,"algo":"mfi","id":1}
//! → {"type":"shutdown"}
//! ← {"type":"shutdown_ok"}
//! ```
//!
//! Every malformed input yields a typed `error` frame (`code`,
//! `message`, echoed `id`), never a dropped connection or a panic.
//! Batch solves stream `solve_result` frames in completion order off
//! the shared [`soc_pool::Service`] workers, ending with
//! `solve_batch_done`.
//!
//! ```no_run
//! use soc_serve::{Server, ServerConfig};
//!
//! let server = Server::bind(ServerConfig::default()).unwrap();
//! println!("listening on {}", server.local_addr());
//! let handle = server.handle(); // stops the server from another thread
//! let report = server.serve().unwrap();
//! println!("served {} connections", report.conns_accepted);
//! # let _ = handle;
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod json;
pub mod proto;
mod server;
mod sessions;

pub use proto::{Algo, ErrorCode, Frame, ProtoError, Request, SolveParams, PROTOCOL_VERSION};
pub use server::{ServeReport, Server, ServerConfig, ServerHandle};
pub use sessions::{SessionInfo, SessionStore};
